// Append-only run ledger (DESIGN.md §3.7): every backend::run stamps one
// JSONL record — what ran (IR hash, model name), how (backend requested /
// used, fallback reason, seed, fault-plan hash, thread count) and how fast
// (wall time, dispatched events, events/s, metrics snapshot) — so design
// iterations can be compared quantitatively after the fact instead of
// re-measured. The file format is one JSON object per line with a
// `schema_version` field; records are self-contained and the file is only
// ever appended to, so ledgers from different runs/machines concatenate
// trivially.
//
// Destination: the ECSIM_LEDGER environment variable names the JSONL file to
// append to (created on first record). Without it the ledger is in-memory
// only — a bounded ring of recent records, still inspectable in-process —
// so hot sweeps pay a mutex + a few string appends per run, never I/O.
//
// `diff_latest_against_bench` compares the newest comparable record against
// a committed BENCH_*.json events/s figure and flags regressions beyond a
// threshold; `ecsim_flow ledger show|diff` wraps it on the CLI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ecsim::obs {

/// Bump when LedgerRecord fields change shape; readers skip lines whose
/// schema_version they do not understand. Older versions this build still
/// parses are listed in kLedgerOldestReadableVersion.
///
/// v2 (PR 8): adds `trials_per_s` — Monte Carlo throughput for batched
/// trial runs. v1 lines parse fine (the field defaults to 0).
///
/// v3 (PR 9): adds `served_from_cache` — whether a sweep-service request was
/// answered entirely out of the daemon's result cache. The field is
/// tri-state and only WRITTEN when it applies (daemon-stamped records);
/// v1/v2 lines and non-service v3 lines parse with it absent (-1).
inline constexpr int kLedgerSchemaVersion = 3;
inline constexpr int kLedgerOldestReadableVersion = 1;

struct LedgerRecord {
  int schema_version = kLedgerSchemaVersion;
  /// Canonical IR hash ("0x…", ir::hash_hex) of the model that ran; empty
  /// when the run never lowered to IR (plain interpreter requests).
  std::string ir_hash;
  /// Model/loop label supplied by the caller ("" when unlabelled).
  std::string model;
  std::string backend_requested;  // "interp" | "native"
  std::string backend_used;
  /// Empty when the requested backend ran; "<category>: <detail>" otherwise.
  std::string fallback_reason;
  std::uint64_t seed = 0;
  /// fault::hash of the active FaultPlan; 0 when fault-free.
  std::uint64_t fault_plan_hash = 0;
  /// Batch fan-out the run was part of (1 for standalone runs).
  unsigned threads = 1;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  /// Monte Carlo throughput (completed trials per second) for batched trial
  /// runs; 0 for single runs. Schema v2.
  double trials_per_s = 0.0;
  /// Schema v3, sweep-service records only: 1 when every work unit of the
  /// request came out of the daemon's result cache, 0 when at least one was
  /// computed. -1 = not applicable (non-service run / older schema); the
  /// JSON field is omitted in that case.
  int served_from_cache = -1;
  /// Single-line JSON snapshot of the attached sim MetricsRegistry
  /// ("{}" when none was attached).
  std::string metrics_json = "{}";
};

/// One-line JSON rendering (no trailing newline).
std::string to_json_line(const LedgerRecord& r);

/// Parse one ledger line. Returns false (leaving `out` untouched) on blank
/// lines, malformed JSON or an unknown schema_version.
bool parse_json_line(const std::string& line, LedgerRecord& out);

class Ledger {
 public:
  /// `path` empty → in-memory only. `capacity` bounds the in-memory tail
  /// (oldest records are dropped); the file, when configured, always gets
  /// every record.
  explicit Ledger(std::string path = {}, std::size_t capacity = 1024);

  /// Thread-safe: serialize, retain in the in-memory tail, and append to the
  /// configured file (best-effort: an unwritable path degrades to in-memory
  /// rather than failing the run being recorded).
  void append(const LedgerRecord& r);

  /// Chronological copy of the retained in-memory tail.
  std::vector<LedgerRecord> records() const;
  std::size_t size() const;
  const std::string& path() const { return path_; }

  /// The process-wide ledger backend::run stamps into; its file destination
  /// is read from ECSIM_LEDGER once, at first use.
  static Ledger& global();

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::size_t capacity_;
  std::vector<LedgerRecord> tail_;  // ring; head_ marks the oldest slot
  std::size_t head_ = 0;
  bool wrapped_ = false;
};

/// Read every parseable record of a ledger JSONL file (missing file → empty).
std::vector<LedgerRecord> read_ledger_file(const std::string& path);

/// Aggregate of the served_from_cache column over a record set — the
/// `ecsim_flow ledger show --cache` summary. Records where the field is
/// absent (v1/v2 lines, non-service runs) count as `untagged` and stay out
/// of the hit-rate denominator.
struct CacheSummary {
  std::size_t served = 0;    // served_from_cache == 1
  std::size_t computed = 0;  // served_from_cache == 0
  std::size_t untagged = 0;  // field absent (-1)
  /// served / (served + computed); 0 when no tagged records exist.
  double hit_rate() const {
    const std::size_t tagged = served + computed;
    return tagged == 0 ? 0.0
                       : static_cast<double>(served) /
                             static_cast<double>(tagged);
  }
};

CacheSummary summarize_cache(const std::vector<LedgerRecord>& records);

/// Outcome of comparing the latest comparable ledger record against a
/// committed benchmark figure.
struct LedgerDiff {
  /// False when no committed figure or no record with the matching IR hash
  /// exists — nothing to compare, not a regression.
  bool comparable = false;
  bool regression = false;
  std::string scenario;
  std::string ir_hash;              // committed model_ir_hash_<scenario>
  double committed_events_per_s = 0.0;
  double latest_events_per_s = 0.0;
  /// Monte Carlo throughput gate: populated when the bench report commits a
  /// `mc_best_trials_per_s` figure for the scenario (0 otherwise).
  double committed_trials_per_s = 0.0;
  double latest_trials_per_s = 0.0;
  double threshold_pct = 10.0;
  std::string message;  // human-readable verdict
};

/// Find the committed `model_ir_hash_<scenario>` and the scenario's
/// `native_best_events_per_s` and/or `mc_best_trials_per_s` in `bench_json`
/// (a BENCH_*.json text), locate the newest records in `records` whose
/// ir_hash matches (events/s for single runs, trials/s for Monte Carlo
/// batches), and flag a regression when either figure is more than
/// `threshold_pct` percent below its committed counterpart.
LedgerDiff diff_latest_against_bench(const std::vector<LedgerRecord>& records,
                                     const std::string& bench_json,
                                     const std::string& scenario = "chains_200",
                                     double threshold_pct = 10.0);

}  // namespace ecsim::obs
