file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sequencing.dir/bench_fig4_sequencing.cpp.o"
  "CMakeFiles/bench_fig4_sequencing.dir/bench_fig4_sequencing.cpp.o.d"
  "bench_fig4_sequencing"
  "bench_fig4_sequencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sequencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
