#include "blocks/event_blocks.hpp"

#include <gtest/gtest.h>

#include "blocks/discrete.hpp"
#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::Model;
using sim::SimOptions;
using sim::Simulator;

TEST(DurationSamplers, Validation) {
  EXPECT_THROW(constant_duration(-1.0), std::invalid_argument);
  EXPECT_THROW(uniform_duration(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(uniform_duration(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(truncated_normal_duration(1.0, 0.1, 2.0, 1.0),
               std::invalid_argument);
}

TEST(DurationSamplers, UniformWithinBounds) {
  math::Rng rng(3);
  const auto spec = uniform_duration(0.5, 1.5);
  for (int i = 0; i < 1000; ++i) {
    const double d = sample_duration(spec, rng);
    EXPECT_GE(d, 0.5);
    EXPECT_LE(d, 1.5);
  }
}

TEST(DurationSamplers, TruncatedNormalStaysInBoundsWithSaneMean) {
  math::Rng rng(77);
  const auto spec = truncated_normal_duration(1.0, 0.3, 0.5, 1.5);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double d = sample_duration(spec, rng);
    EXPECT_GE(d, 0.5);
    EXPECT_LE(d, 1.5);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(EventDelay, ConstantDelayShiftsEvents) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& d = m.add<EventDelay>("d", 0.25);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, d, d.event_in());
  m.connect_event(d, d.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 0.25, 1e-12);
  EXPECT_NEAR(times[1], 1.25, 1e-12);
}

TEST(EventDelay, BusyQueueingSerializesOverlappingWork) {
  // Duration 0.7 with period 0.5: the second activation must queue and the
  // output spacing equals the duration, not the input period.
  Model m;
  auto& clk = m.add<Clock>("clk", 0.5);
  auto& d = m.add<EventDelay>("d", 0.7);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, d, d.event_in());
  m.connect_event(d, d.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 3.0});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_GE(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.7, 1e-12);
  EXPECT_NEAR(times[1], 1.4, 1e-12);
  EXPECT_NEAR(times[2], 2.1, 1e-12);
  EXPECT_GT(d.busy_hits(), 0u);
}

TEST(EventDelay, ZeroDurationPassesThroughSameInstant) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& d = m.add<EventDelay>("d", 0.0);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, d, d.event_in());
  m.connect_event(d, d.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 0.0});
  s.run();
  EXPECT_EQ(n.count(), 1u);
}

TEST(EventDelay, StochasticDurationsAreSeedStable) {
  auto run = [](std::uint64_t seed) {
    Model m;
    auto& clk = m.add<Clock>("clk", 1.0);
    auto& d = m.add<EventDelay>("d", uniform_duration(0.1, 0.4));
    auto& n = m.add<EventCounter>("n");
    m.connect_event(clk, 0, d, d.event_in());
    m.connect_event(d, d.event_out(), n, 0);
    Simulator s(m, SimOptions{.end_time = 5.0, .seed = seed});
    s.run();
    return s.trace().activation_times_by_name("n");
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

TEST(EventSelect, RoutesByConditionValue) {
  Model m;
  auto& cond = m.add<Sine>("cond", 1.0, 0.25);  // positive first half period
  auto& clk = m.add<Clock>("clk", 1.0, 0.5);
  auto& sel = m.add_block(EventSelect::make_threshold("sel", 0.0));
  auto& n0 = m.add<EventCounter>("n0");
  auto& n1 = m.add<EventCounter>("n1");
  m.connect(cond, 0, sel, 0);
  m.connect_event(clk, 0, sel, 0);
  m.connect_event(sel, 0, n0, 0);
  m.connect_event(sel, 1, n1, 0);
  Simulator s(m, SimOptions{.end_time = 3.9});
  s.run();
  // Ticks at 0.5 (sin>0 -> ch1), 1.5 (sin<0 -> ch0), 2.5 (ch1), 3.5 (ch0).
  EXPECT_EQ(n1.count(), 2u);
  EXPECT_EQ(n0.count(), 2u);
}

TEST(EventSelect, OutOfRangeMappingThrows) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sel = m.add<EventSelect>(
      "sel", 2, 1, [](std::span<const double>) { return std::size_t{5}; });
  m.connect_event(clk, 0, sel, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(EventSelect, Validation) {
  EXPECT_THROW(
      EventSelect("s", 0, 1, [](std::span<const double>) { return 0u; }),
      std::invalid_argument);
  EXPECT_THROW(EventSelect("s", 2, 1, nullptr), std::invalid_argument);
}

TEST(TdmaGate, SnapsEventsToGrid) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.7e-3);  // off-grid ticks
  auto& gate = m.add<TdmaGate>("gate", 1e-3);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, gate, gate.event_in());
  m.connect_event(gate, gate.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 3.0e-3});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_GE(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.0, 1e-12);      // tick at 0 passes through
  EXPECT_NEAR(times[1], 1.0e-3, 1e-12);   // 0.7 ms -> 1 ms
  EXPECT_NEAR(times[2], 2.0e-3, 1e-12);   // 1.4 ms -> 2 ms
  EXPECT_THROW(TdmaGate("x", 0.0), std::invalid_argument);
}

TEST(EventDivider, ForwardsEveryNth) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& div = m.add<EventDivider>("div", 3);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, div, div.event_in());
  m.connect_event(div, div.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 8.0});
  s.run();
  // Ticks at 0..8 (9 ticks); forwarded: 0, 3, 6.
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[1], 3.0, 1e-12);
}

TEST(EventDivider, PhaseShiftsSelection) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& div = m.add<EventDivider>("div", 4, 2);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, div, div.event_in());
  m.connect_event(div, div.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 9.0});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 2.0, 1e-12);
  EXPECT_NEAR(times[1], 6.0, 1e-12);
  EXPECT_THROW(EventDivider("x", 0), std::invalid_argument);
  EXPECT_THROW(EventDivider("x", 2, 2), std::invalid_argument);
}

TEST(EventDivider, CounterResetsBetweenRuns) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& div = m.add<EventDivider>("div", 2, 1);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, div, div.event_in());
  m.connect_event(div, div.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 4.0});
  s.run();
  const std::size_t first = n.count();
  s.run();
  EXPECT_EQ(n.count(), first);
}

TEST(EventFault, DropsAndDefersPerDecider) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  // Drop every even activation, defer every odd one by 0.25 s.
  auto& gate = m.add<EventFault>("gate", [](std::size_t k, double) {
    return k % 2 == 0 ? FaultAction{true, 0.0} : FaultAction{false, 0.25};
  });
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, gate, gate.event_in());
  m.connect_event(gate, gate.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 4.0});
  s.run();
  // Ticks 0..4: 0,2,4 dropped; 1,3 forwarded at 1.25 and 3.25.
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.25, 1e-12);
  EXPECT_NEAR(times[1], 3.25, 1e-12);
  EXPECT_EQ(gate.drops(), 3u);
  EXPECT_EQ(gate.defers(), 2u);
}

TEST(EventFault, PassThroughIsTransparentAndCountersReset) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& gate = m.add<EventFault>(
      "gate", [](std::size_t, double) { return FaultAction{}; });
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, gate, gate.event_in());
  m.connect_event(gate, gate.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 3.0});
  s.run();
  EXPECT_EQ(n.count(), 4u);  // 0, 1, 2, 3 — nothing dropped or moved
  EXPECT_EQ(gate.drops(), 0u);
  EXPECT_EQ(gate.defers(), 0u);
  s.run();  // counters are per-run state
  EXPECT_EQ(gate.drops(), 0u);
  EXPECT_EQ(n.count(), 4u);
}

TEST(EventFault, NegativeDeferThrows) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& gate = m.add<EventFault>(
      "gate", [](std::size_t, double) { return FaultAction{false, -1.0}; });
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, gate, gate.event_in());
  m.connect_event(gate, gate.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 1.0});
  EXPECT_THROW(s.run(), std::exception);
}

TEST(EventMerge, ForwardsAllInputs) {
  Model m;
  auto& c1 = m.add<Clock>("c1", 1.0);
  auto& c2 = m.add<Clock>("c2", 1.0, 0.5);
  auto& merge = m.add<EventMerge>("merge", 2);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(c1, 0, merge, 0);
  m.connect_event(c2, 0, merge, 1);
  m.connect_event(merge, 0, n, 0);
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  EXPECT_EQ(n.count(), 5u);  // 0, .5, 1, 1.5, 2
}

}  // namespace
}  // namespace ecsim::blocks
