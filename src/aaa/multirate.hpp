// Multirate (multiperiodic) workloads — SynDEx's repetition feature: each
// operation runs every `rate_divisor`-th base period. The expansion
// instantiates one hyperperiod (base period x lcm of divisors) as a flat
// AlgorithmGraph: instance k of an operation with divisor d releases at
// k * d * base_period, and a consumer instance reads the most recent
// producer instance released at or before its own release (the
// sample-and-hold semantics of multirate control loops). The flat graph
// feeds the unchanged adequation / codegen / VM / graph-of-delays pipeline.
#pragma once

#include <vector>

#include "aaa/algorithm_graph.hpp"

namespace ecsim::aaa {

struct MultirateOp {
  std::string name;
  OpKind kind = OpKind::kCompute;
  std::map<std::string, Time> wcet;
  /// Runs every `rate_divisor`-th base period (1 = every period).
  std::size_t rate_divisor = 1;
  std::optional<std::string> bound_processor;
};

struct MultirateDep {
  std::size_t from = 0;  // indices into MultirateSpec::ops
  std::size_t to = 0;
  double size = 1.0;
};

struct MultirateSpec {
  std::string name = "multirate";
  Time base_period = 0.0;
  std::vector<MultirateOp> ops;
  std::vector<MultirateDep> deps;

  std::size_t add_op(MultirateOp op);
  void add_dep(std::size_t from, std::size_t to, double size = 1.0);

  /// lcm of all rate divisors — the hyperperiod is base_period * this.
  std::size_t hyperperiod_factor() const;
};

/// Instance naming: "<op>@<k>" for divisor > 1 or multiple instances;
/// operations that run every period keep instance suffixes too, so lookups
/// are uniform: instance_name("ctrl", 3) == "ctrl@3".
std::string instance_name(const std::string& op, std::size_t k);

/// Expand one hyperperiod into a flat AlgorithmGraph (period = hyperperiod).
/// Throws std::invalid_argument on empty spec, zero divisors or zero base
/// period.
AlgorithmGraph expand_hyperperiod(const MultirateSpec& spec);

}  // namespace ecsim::aaa
