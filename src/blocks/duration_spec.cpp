#include "blocks/duration_spec.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace ecsim::blocks {

double sample_duration(const DurationSpec& spec, math::Rng& rng) {
  switch (spec.kind) {
    case DurationSpec::Kind::kConstant:
      return spec.value;
    case DurationSpec::Kind::kUniform:
      return rng.uniform(spec.bcet, spec.wcet);
    case DurationSpec::Kind::kTruncatedNormal:
      return rng.truncated_normal(spec.mean, spec.stddev, spec.bcet,
                                  spec.wcet);
    case DurationSpec::Kind::kShiftedUniform:
      return std::max(
          0.0, spec.base + rng.uniform(-spec.jitter / 2.0, spec.jitter / 2.0));
    case DurationSpec::Kind::kBranches: {
      const std::size_t b =
          spec.random_branch
              ? static_cast<std::size_t>(rng.uniform_int(
                    0,
                    static_cast<std::int64_t>(spec.branch_wcets.size()) - 1))
              : 0;
      const double wcet = spec.branch_wcets[b];
      return spec.bcet_fraction >= 1.0
                 ? wcet
                 : rng.uniform(spec.bcet_fraction * wcet, wcet);
    }
    case DurationSpec::Kind::kCustom:
      return spec.sampler(rng);
  }
  throw std::logic_error("sample_duration: corrupt kind");
}

DurationSpec constant_duration(double d) {
  if (d < 0.0) throw std::invalid_argument("constant_duration: negative");
  DurationSpec s;
  s.kind = DurationSpec::Kind::kConstant;
  s.value = d;
  return s;
}

DurationSpec uniform_duration(double bcet, double wcet) {
  if (bcet < 0.0 || wcet < bcet) {
    throw std::invalid_argument("uniform_duration: need 0 <= bcet <= wcet");
  }
  DurationSpec s;
  s.kind = DurationSpec::Kind::kUniform;
  s.bcet = bcet;
  s.wcet = wcet;
  return s;
}

DurationSpec truncated_normal_duration(double mean, double stddev, double bcet,
                                       double wcet) {
  if (bcet < 0.0 || wcet < bcet) {
    throw std::invalid_argument("truncated_normal_duration: bad bounds");
  }
  DurationSpec s;
  s.kind = DurationSpec::Kind::kTruncatedNormal;
  s.mean = mean;
  s.stddev = stddev;
  s.bcet = bcet;
  s.wcet = wcet;
  return s;
}

DurationSpec shifted_uniform_duration(double base, double jitter) {
  if (jitter < 0.0) {
    throw std::invalid_argument("shifted_uniform_duration: negative jitter");
  }
  DurationSpec s;
  s.kind = DurationSpec::Kind::kShiftedUniform;
  s.base = base;
  s.jitter = jitter;
  return s;
}

DurationSpec branch_duration(std::vector<double> branch_wcets,
                             double bcet_fraction, bool random_branch) {
  if (branch_wcets.empty()) {
    throw std::invalid_argument("branch_duration: no branches");
  }
  for (double w : branch_wcets) {
    if (w < 0.0) throw std::invalid_argument("branch_duration: negative WCET");
  }
  if (bcet_fraction < 0.0 || bcet_fraction > 1.0) {
    throw std::invalid_argument(
        "branch_duration: bcet_fraction must be in [0,1]");
  }
  DurationSpec s;
  s.kind = DurationSpec::Kind::kBranches;
  s.branch_wcets = std::move(branch_wcets);
  s.bcet_fraction = bcet_fraction;
  s.random_branch = random_branch;
  return s;
}

DurationSpec custom_duration(DurationSampler sampler) {
  if (!sampler) throw std::invalid_argument("custom_duration: null sampler");
  DurationSpec s;
  s.kind = DurationSpec::Kind::kCustom;
  s.sampler = std::move(sampler);
  return s;
}

}  // namespace ecsim::blocks
