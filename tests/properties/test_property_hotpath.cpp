// Properties of the PR-4 hot path (DESIGN.md §3.4).
//
// 1. The flat 4-ary EventQueue is a drop-in replacement for the original
//    std::priority_queue: under random interleaved push/pop sequences it
//    must yield the exact same (time, seq) order — in particular the FIFO
//    tie-break among simultaneous events — in both the quaternary and the
//    legacy-binary heap mode.
// 2. The allocation-free steady state (workspace integrator + batched
//    queue) is purely an implementation change: for random hybrid block
//    diagrams the traces must be bit-identical to the legacy allocating
//    paths (SimOptions::legacy_integrator_alloc / legacy_event_queue).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "mathlib/rng.hpp"
#include "random_graphs.hpp"
#include "sim/compiled_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace ecsim::sim {
namespace {

/// Reference semantics: the pre-PR-4 implementation, a std::priority_queue
/// over (time, seq) with seq breaking ties first-in-first-out.
class OracleQueue {
 public:
  void push(Time time, std::size_t block, std::size_t event_in) {
    pq_.push(ScheduledEvent{time, next_seq_++, block, event_in});
  }
  bool empty() const { return pq_.empty(); }
  ScheduledEvent pop() {
    ScheduledEvent e = pq_.top();
    pq_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>, Later> pq_;
  std::uint64_t next_seq_ = 0;
};

bool same_event(const ScheduledEvent& a, const ScheduledEvent& b) {
  return a.time == b.time && a.seq == b.seq && a.block == b.block &&
         a.event_in == b.event_in;
}

class HotPathProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HotPathProperty, HeapMatchesPriorityQueueOracleUnderRandomTraffic) {
  for (const EventQueue::Impl impl :
       {EventQueue::Impl::kQuad, EventQueue::Impl::kLegacyBinary}) {
    math::Rng rng(GetParam());
    EventQueue q;
    q.set_impl(impl);
    OracleQueue oracle;
    // Random interleaving, biased toward pushes so the heaps grow deep, with
    // a coarse time grid so simultaneous events (the FIFO-sensitive case)
    // are common.
    for (int op = 0; op < 20'000; ++op) {
      const bool do_push = q.empty() || rng.uniform() < 0.55;
      if (do_push) {
        const Time t = static_cast<Time>(rng.uniform_int(0, 63)) * 0.125;
        const std::size_t block = static_cast<std::size_t>(rng.uniform_int(0, 9));
        const std::size_t port = static_cast<std::size_t>(rng.uniform_int(0, 2));
        q.push(t, block, port);
        oracle.push(t, block, port);
      } else {
        ASSERT_FALSE(oracle.empty());
        const ScheduledEvent got = q.pop();
        const ScheduledEvent want = oracle.pop();
        ASSERT_TRUE(same_event(got, want))
            << "op " << op << ": heap gave (t=" << got.time
            << ", seq=" << got.seq << ", block=" << got.block
            << ") oracle wanted (t=" << want.time << ", seq=" << want.seq
            << ", block=" << want.block << ")";
      }
    }
    // Drain: the tails must agree element for element too.
    while (!oracle.empty()) {
      ASSERT_FALSE(q.empty());
      ASSERT_TRUE(same_event(q.pop(), oracle.pop()));
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST_P(HotPathProperty, BatchedPopMatchesOneAtATimePopping) {
  // pop_simultaneous must be observationally identical to popping until the
  // head time changes.
  math::Rng rng(GetParam() * 3 + 1);
  EventQueue batched;
  EventQueue single;
  for (int i = 0; i < 5'000; ++i) {
    const Time t = static_cast<Time>(rng.uniform_int(0, 31)) * 0.25;
    const std::size_t block = static_cast<std::size_t>(rng.uniform_int(0, 7));
    batched.push(t, block, 0);
    single.push(t, block, 0);
  }
  std::vector<ScheduledEvent> batch;
  while (!batched.empty()) {
    batch.clear();
    batched.pop_simultaneous(batch);
    ASSERT_FALSE(batch.empty());
    for (const ScheduledEvent& e : batch) {
      ASSERT_FALSE(single.empty());
      ASSERT_TRUE(same_event(e, single.pop()));
    }
    if (!single.empty() && !batch.empty()) {
      EXPECT_NE(single.next_time(), batch.front().time);
    }
  }
  EXPECT_TRUE(single.empty());
}

Trace run_variant(const CompiledModel& compiled, SimOptions opts,
                  bool legacy_integrator, bool legacy_queue) {
  opts.legacy_integrator_alloc = legacy_integrator;
  opts.legacy_event_queue = legacy_queue;
  Simulator s(compiled, opts);
  return s.run();
}

TEST_P(HotPathProperty, HotPathTraceBitIdenticalToLegacyAllocatingPaths) {
  // Same oracle harness as the PR-1 cone-refresh equivalence suite: random
  // hybrid diagrams, both integrators, traces compared with operator== (ulp
  // exact). The hot path may not change a single bit of observable output.
  math::Rng rng(GetParam() * 17 + 5);
  for (int trial = 0; trial < 3; ++trial) {
    Model m = ecsim::testing::random_block_model(rng);
    const CompiledModel compiled(m);

    SimOptions opts;
    opts.end_time = 0.8;
    opts.seed = GetParam() * 131 + static_cast<std::uint64_t>(trial);
    if (trial == 1) {
      opts.integrator.kind = IntegratorKind::kRkf45;
      opts.integrator.max_step = 5e-3;
    }

    const Trace hot = run_variant(compiled, opts, false, false);
    ASSERT_FALSE(hot.events().empty());
    const Trace legacy_integ = run_variant(compiled, opts, true, false);
    const Trace legacy_queue = run_variant(compiled, opts, false, true);
    const Trace legacy_both = run_variant(compiled, opts, true, true);

    EXPECT_TRUE(hot == legacy_integ)
        << "legacy_integrator_alloc diverged (seed " << GetParam()
        << ", trial " << trial << ")";
    EXPECT_TRUE(hot == legacy_queue)
        << "legacy_event_queue diverged (seed " << GetParam() << ", trial "
        << trial << ")";
    EXPECT_TRUE(hot == legacy_both)
        << "combined legacy paths diverged (seed " << GetParam() << ", trial "
        << trial << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HotPathProperty,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u, 46u));

}  // namespace
}  // namespace ecsim::sim
