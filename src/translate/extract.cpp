#include "translate/extract.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ecsim::translate {

namespace {

aaa::Operation make_operation(const std::string& name, aaa::OpKind kind,
                              const TimingAnnotations& annot) {
  aaa::Operation op;
  op.name = name;
  op.kind = kind;
  if (const auto it = annot.wcet.find(name); it != annot.wcet.end()) {
    op.wcet = it->second;
  } else {
    op.wcet["cpu"] = TimingAnnotations::kDefaultWcet;
  }
  if (const auto it = annot.binding.find(name); it != annot.binding.end()) {
    op.bound_processor = it->second;
  }
  return op;
}

}  // namespace

aaa::AlgorithmGraph extract_algorithm(const sim::Model& model,
                                      const std::vector<std::string>& samplers,
                                      const std::vector<std::string>& computes,
                                      const std::vector<std::string>& actuators,
                                      const TimingAnnotations& annotations,
                                      aaa::Time period) {
  aaa::AlgorithmGraph alg("extracted", period);

  // Map model block index -> op id for extracted blocks.
  std::map<std::size_t, aaa::OpId> op_of_block;
  auto add_all = [&](const std::vector<std::string>& names, aaa::OpKind kind) {
    for (const std::string& name : names) {
      const std::size_t bi = model.index_by_name(name);
      if (op_of_block.count(bi)) {
        throw std::invalid_argument("extract_algorithm: block '" + name +
                                    "' listed twice");
      }
      op_of_block[bi] = alg.add_operation(make_operation(name, kind, annotations));
    }
  };
  add_all(samplers, aaa::OpKind::kSensor);
  add_all(computes, aaa::OpKind::kCompute);
  add_all(actuators, aaa::OpKind::kActuator);

  // Successor blocks per block over data wires.
  std::vector<std::vector<std::size_t>> succ(model.num_blocks());
  for (const sim::DataWire& w : model.data_wires()) {
    succ[w.from.block].push_back(w.to.block);
  }

  // For each extracted block, BFS downstream through *unextracted* blocks to
  // find the extracted consumers of its data. Actuators are sinks of the
  // algorithm: their data reaches the physical plant, and the path back from
  // the plant to the samplers is the *physical* feedback loop, not a data
  // dependency of the software iteration.
  std::set<std::pair<aaa::OpId, aaa::OpId>> edges;
  for (const auto& [src_block, src_op] : op_of_block) {
    if (alg.op(src_op).kind == aaa::OpKind::kActuator) continue;
    std::vector<std::size_t> frontier = succ[src_block];
    std::set<std::size_t> visited(frontier.begin(), frontier.end());
    while (!frontier.empty()) {
      const std::size_t b = frontier.back();
      frontier.pop_back();
      if (const auto it = op_of_block.find(b); it != op_of_block.end()) {
        if (it->second != src_op) edges.insert({src_op, it->second});
        continue;  // stop at extracted blocks: they forward via their own op
      }
      for (std::size_t nb : succ[b]) {
        if (visited.insert(nb).second) frontier.push_back(nb);
      }
    }
  }
  for (const auto& [from, to] : edges) {
    double size = 1.0;
    const std::string& producer = alg.op(from).name;
    if (const auto it = annotations.out_size.find(producer);
        it != annotations.out_size.end()) {
      size = it->second;
    }
    alg.add_dependency(from, to, size);
  }
  return alg;
}

}  // namespace ecsim::translate
