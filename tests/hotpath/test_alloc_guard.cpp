// Zero-allocation steady-state guard (DESIGN.md §3.4, EXP-P4).
//
// Strategy: run each scenario once to warm every capacity to its high-water
// mark (integrator workspace, event-queue heap, trace streams and the signal
// value pool, block scratch), then assert that an entire *second* run —
// thousands of steady-state events — performs zero heap allocations. That is
// strictly stronger than sampling N events mid-run and needs no hooks into
// the simulation loop.
//
// These tests only assert under -DECSIM_ALLOC_GUARD=ON (the counting
// operator new/delete build); otherwise they GTEST_SKIP, so the tier-1
// suite is unaffected.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "sim/simulator.hpp"
#include "support/alloc_counter.hpp"

namespace {

using namespace ecsim;
namespace et = ecsim::testing;

/// Sampled-data servo loop (the cosim Fig. 2 shape): continuous 2nd-order
/// plant, S/H sense, discrete PI controller, S/H actuate, clocked at ts,
/// with a periodic probe recording y. Exercises integration (RK4 between
/// events), zero-delay event chains, trace signal recording.
sim::Model servo_loop_model() {
  sim::Model m;
  auto& plant = m.add<blocks::StateSpaceCont>(
      "plant", math::Matrix{{0.0, 1.0}, {-4.0, -1.2}},
      math::Matrix{{0.0}, {4.0}}, math::Matrix{{1.0, 0.0}},
      math::Matrix{{0.0}});
  auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
  auto& sense = m.add<blocks::SampleHold>("sense", 1);
  m.connect(plant, 0, sense, 0);
  auto& err = m.add<blocks::Sum>("err", std::vector<double>{1.0, -1.0}, 1);
  m.connect(ref, 0, err, 0);
  m.connect(sense, 0, err, 1);
  // Discrete PI as a one-state LTI: x+ = x + ki*ts*e, u = x + kp*e.
  auto& ctrl = m.add<blocks::StateSpaceDisc>(
      "ctrl", math::Matrix{{1.0}}, math::Matrix{{0.02}}, math::Matrix{{1.0}},
      math::Matrix{{1.8}});
  m.connect(err, 0, ctrl, 0);
  auto& act = m.add<blocks::SampleHold>("act", 1);
  m.connect(ctrl, 0, act, 0);
  m.connect(act, 0, plant, 0);
  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, 1e-3);
  m.connect(plant, 0, probe_y, 0);

  auto& clock = m.add<blocks::Clock>("clock", 1e-3);
  m.connect_event(clock, clock.event_out(), sense, sense.event_in());
  m.connect_event(sense, sense.done_event_out(), ctrl, ctrl.event_in());
  m.connect_event(ctrl, ctrl.done_event_out(), act, act.event_in());
  return m;
}

/// 200 parallel delay chains off one clock (the bench_p1/bench_p4 event-rate
/// scenario): pure event traffic with large simultaneous batches.
sim::Model chains_model(std::size_t n_chains) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t i = 0; i < n_chains; ++i) {
    const std::string tag = std::to_string(i);
    auto& d1 = m.add<blocks::EventDelay>("d1_" + tag, 1e-4);
    auto& d2 = m.add<blocks::EventDelay>("d2_" + tag, 2e-4);
    auto& cnt = m.add<blocks::EventCounter>("cnt_" + tag);
    m.connect_event(clk, clk.event_out(), d1, d1.event_in());
    m.connect_event(d1, d1.event_out(), d2, d2.event_in());
    m.connect_event(d2, d2.event_out(), cnt, 0);
  }
  return m;
}

void expect_second_run_allocation_free(sim::Model& model,
                                       const sim::SimOptions& opts,
                                       std::size_t min_events) {
  if (!et::alloc_guard_enabled()) {
    GTEST_SKIP() << "build with -DECSIM_ALLOC_GUARD=ON to count allocations";
  }
  sim::Simulator simulator(model, opts);
  simulator.run();  // warm-up: grows every buffer to its high-water mark
  const std::size_t events = simulator.events_dispatched();
  ASSERT_GE(events, min_events) << "scenario dispatches too few events to be "
                                   "a meaningful steady-state guard";

  et::AllocProbe probe;
  simulator.run();
  EXPECT_EQ(probe.allocations(), 0u)
      << "steady-state re-run performed heap allocations (" << events
      << " events)";
  EXPECT_EQ(simulator.events_dispatched(), events);
}

TEST(AllocGuard, ServoLoopSteadyStateIsAllocationFree) {
  sim::Model m = servo_loop_model();
  sim::SimOptions opts;
  opts.end_time = 0.5;
  opts.integrator.kind = sim::IntegratorKind::kRk4;
  opts.integrator.max_step = 2e-4;
  expect_second_run_allocation_free(m, opts, 1500);
}

TEST(AllocGuard, ServoLoopRkf45SteadyStateIsAllocationFree) {
  sim::Model m = servo_loop_model();
  sim::SimOptions opts;
  opts.end_time = 0.5;
  opts.integrator.kind = sim::IntegratorKind::kRkf45;
  opts.integrator.max_step = 5e-4;
  expect_second_run_allocation_free(m, opts, 1500);
}

TEST(AllocGuard, TwoHundredBlockChainSteadyStateIsAllocationFree) {
  sim::Model m = chains_model(200);
  sim::SimOptions opts;
  opts.end_time = 0.25;  // ~150k events: plenty of steady state
  expect_second_run_allocation_free(m, opts, 100'000);
}

TEST(AllocGuard, CounterSeesOrdinaryAllocations) {
  if (!et::alloc_guard_enabled()) {
    GTEST_SKIP() << "build with -DECSIM_ALLOC_GUARD=ON to count allocations";
  }
  et::AllocProbe probe;
  std::vector<double>* v = new std::vector<double>(1024);
  EXPECT_GE(probe.allocations(), 1u);
  delete v;
  EXPECT_GE(probe.deallocations(), 1u);
}

}  // namespace
