file(REMOVE_RECURSE
  "CMakeFiles/ecsim_control.dir/control/c2d.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/c2d.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/delay_compensation.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/delay_compensation.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/kalman.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/kalman.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/lqr.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/lqr.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/metrics.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/metrics.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/pid.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/pid.cpp.o.d"
  "CMakeFiles/ecsim_control.dir/control/state_space.cpp.o"
  "CMakeFiles/ecsim_control.dir/control/state_space.cpp.o.d"
  "libecsim_control.a"
  "libecsim_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
