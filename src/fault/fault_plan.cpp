#include "fault/fault_plan.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "fault/comm_gate.hpp"
#include "mathlib/rng.hpp"

namespace ecsim::fault {

namespace {

/// splitmix64 finalizer: the seed-scrambling primitive math::Rng itself uses.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const char* kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kMessageLoss: return "message-loss";
    case FaultKind::kMessageDelay: return "message-delay";
    case FaultKind::kMessageDuplicate: return "message-duplicate";
    case FaultKind::kOpOverrun: return "op-overrun";
    case FaultKind::kNodeStop: return "node-stop";
  }
  return "?";
}

}  // namespace

FaultPlan& FaultPlan::message_loss(std::string medium, double p) {
  FaultSpec f;
  f.kind = FaultKind::kMessageLoss;
  f.target = std::move(medium);
  f.probability = p;
  faults.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::message_delay(std::string medium, double p, Time delay) {
  FaultSpec f;
  f.kind = FaultKind::kMessageDelay;
  f.target = std::move(medium);
  f.probability = p;
  f.delay = delay;
  faults.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::message_duplicate(std::string medium, double p,
                                        std::size_t extra_copies) {
  FaultSpec f;
  f.kind = FaultKind::kMessageDuplicate;
  f.target = std::move(medium);
  f.probability = p;
  f.extra_copies = extra_copies;
  faults.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::op_overrun(std::string op, double p, double factor) {
  FaultSpec f;
  f.kind = FaultKind::kOpOverrun;
  f.target = std::move(op);
  f.probability = p;
  f.overrun_factor = factor;
  faults.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::node_stop(std::string proc, Time t_start, Time t_stop) {
  FaultSpec f;
  f.kind = FaultKind::kNodeStop;
  f.target = std::move(proc);
  f.t_start = t_start;
  f.t_stop = t_stop;
  faults.push_back(std::move(f));
  return *this;
}

FaultPlan& FaultPlan::window(Time t_start, Time t_stop) {
  if (faults.empty()) {
    throw std::logic_error("FaultPlan::window: no fault to restrict");
  }
  faults.back().t_start = t_start;
  faults.back().t_stop = t_stop;
  return *this;
}

ArmedFaultPlan::ArmedFaultPlan(const FaultPlan& plan,
                               const aaa::AlgorithmGraph& alg,
                               const aaa::ArchitectureGraph& arch,
                               const aaa::Schedule& sched)
    : seed_(plan.seed), faults_(plan.faults) {
  period_ = alg.period() > 0.0 ? alg.period() : sched.makespan();
  comm_faults_.resize(sched.comms().size());
  op_faults_.resize(alg.num_operations());
  node_faults_.resize(arch.num_processors());

  for (std::size_t fi = 0; fi < faults_.size(); ++fi) {
    const FaultSpec& f = faults_[fi];
    if (f.probability < 0.0 || f.probability > 1.0) {
      throw std::invalid_argument("FaultPlan: probability outside [0,1]");
    }
    if (f.delay < 0.0) {
      throw std::invalid_argument("FaultPlan: negative delay");
    }
    if (f.overrun_factor < 1.0) {
      throw std::invalid_argument("FaultPlan: overrun_factor < 1");
    }
    if (!(f.t_stop > f.t_start)) {
      throw std::invalid_argument("FaultPlan: empty window (t_stop <= t_start)");
    }
    switch (f.kind) {
      case FaultKind::kMessageLoss:
      case FaultKind::kMessageDelay:
      case FaultKind::kMessageDuplicate: {
        if (f.kind == FaultKind::kMessageDuplicate && f.extra_copies == 0) {
          throw std::invalid_argument("FaultPlan: extra_copies == 0");
        }
        // Resolve against the media actually carrying scheduled transfers.
        // find_medium throws on an unknown name — typos fail loudly.
        const aaa::MediumId target =
            f.target.empty() ? aaa::kNone : arch.find_medium(f.target);
        bool matched = f.target.empty();
        for (std::size_t ci = 0; ci < sched.comms().size(); ++ci) {
          const aaa::MediumId m = sched.comms()[ci].hop.medium;
          if (f.target.empty() || m == target) {
            comm_faults_[ci].push_back(fi);
            matched = true;
          }
        }
        (void)matched;  // a medium without scheduled traffic is legal
        break;
      }
      case FaultKind::kOpOverrun: {
        if (f.target.empty()) {
          for (auto& list : op_faults_) list.push_back(fi);
        } else {
          op_faults_.at(alg.find(f.target)).push_back(fi);
        }
        break;
      }
      case FaultKind::kNodeStop: {
        if (f.target.empty()) {
          for (auto& list : node_faults_) list.push_back(fi);
        } else {
          node_faults_.at(arch.find_processor(f.target)).push_back(fi);
        }
        break;
      }
    }
  }
}

double ArmedFaultPlan::decision(std::size_t fault, std::size_t entity,
                                std::size_t iteration) const {
  // One fresh stream per (fault, entity, iteration): the injection decision
  // depends only on these coordinates and the plan seed, never on how many
  // draws other faults or entities have made (see file comment).
  math::Rng rng(mix(seed_ ^ mix(0x6661756c74ULL + fault) ^
                    mix(0x656e74ULL + entity) ^ mix(iteration)));
  return rng.uniform();
}

bool ArmedFaultPlan::in_window(const FaultSpec& f,
                               std::size_t iteration) const {
  const Time nominal = static_cast<Time>(iteration) * period_;
  return nominal >= f.t_start && nominal < f.t_stop;
}

ArmedFaultPlan::CommEffect ArmedFaultPlan::comm_effect(
    std::size_t comm_index, std::size_t iteration) const {
  CommEffect e;
  if (comm_index >= comm_faults_.size()) return e;
  for (const std::size_t fi : comm_faults_[comm_index]) {
    const FaultSpec& f = faults_[fi];
    if (!in_window(f, iteration)) continue;
    if (decision(fi, comm_index, iteration) >= f.probability) continue;
    switch (f.kind) {
      case FaultKind::kMessageLoss:
        if (!e.lost) {
          e.lost = true;
          e.loss_fault = fi;
        }
        break;
      case FaultKind::kMessageDelay:
        e.extra_delay += f.delay;
        if (e.delay_fault == kNone) e.delay_fault = fi;
        break;
      case FaultKind::kMessageDuplicate:
        e.extra_copies += f.extra_copies;
        if (e.dup_fault == kNone) e.dup_fault = fi;
        break;
      default:
        break;
    }
  }
  return e;
}

CommGate ArmedFaultPlan::comm_gate(std::size_t comm_index,
                                   Time transfer_duration) const {
  CommGate gate;
  gate.seed = seed_;
  gate.period = period_;
  gate.comm_index = comm_index;
  gate.transfer_duration = transfer_duration;
  if (comm_index >= comm_faults_.size()) return gate;
  for (const std::size_t fi : comm_faults_[comm_index]) {
    const FaultSpec& f = faults_[fi];
    CommGateEntry e;
    e.fault = fi;
    switch (f.kind) {
      case FaultKind::kMessageLoss:
        e.kind = CommGateEntry::Kind::kLoss;
        break;
      case FaultKind::kMessageDelay:
        e.kind = CommGateEntry::Kind::kDelay;
        break;
      case FaultKind::kMessageDuplicate:
        e.kind = CommGateEntry::Kind::kDuplicate;
        break;
      default:
        continue;  // comm_faults_ only holds message kinds
    }
    e.probability = f.probability;
    e.delay = f.delay;
    e.extra_copies = f.extra_copies;
    e.t_start = f.t_start;
    e.t_stop = f.t_stop;
    gate.entries.push_back(e);
  }
  return gate;
}

double ArmedFaultPlan::op_factor(OpId op, std::size_t iteration,
                                 std::size_t* fault_out) const {
  if (fault_out != nullptr) *fault_out = kNone;
  if (op >= op_faults_.size()) return 1.0;
  double factor = 1.0;
  for (const std::size_t fi : op_faults_[op]) {
    const FaultSpec& f = faults_[fi];
    if (!in_window(f, iteration)) continue;
    if (decision(fi, op, iteration) >= f.probability) continue;
    factor *= f.overrun_factor;
    if (fault_out != nullptr && *fault_out == kNone) *fault_out = fi;
  }
  return factor;
}

bool ArmedFaultPlan::node_has_outages(ProcId proc) const {
  return proc < node_faults_.size() && !node_faults_[proc].empty();
}

Time ArmedFaultPlan::node_release(ProcId proc, Time t) const {
  if (proc >= node_faults_.size()) return t;
  // Windows may abut or nest; iterate to a fixed point (bounded by the
  // number of outage faults on this processor).
  bool moved = true;
  while (moved) {
    moved = false;
    for (const std::size_t fi : node_faults_[proc]) {
      const FaultSpec& f = faults_[fi];
      if (t >= f.t_start && t < f.t_stop) {
        t = f.t_stop;
        moved = true;
      }
    }
  }
  return t;
}

std::string to_string(const FaultPlan& plan) {
  std::string out =
      "fault plan (seed " + std::to_string(plan.seed) + "):\n";
  if (plan.faults.empty()) return out + "  (empty — fault-free)\n";
  char buf[160];
  for (const FaultSpec& f : plan.faults) {
    const std::string target = f.target.empty() ? "*" : f.target;
    std::snprintf(buf, sizeof buf, "  %-17s %-10s p=%.3g", kind_name(f.kind),
                  target.c_str(), f.probability);
    out += buf;
    if (f.kind == FaultKind::kMessageDelay) {
      std::snprintf(buf, sizeof buf, " delay=%.3gs", f.delay);
      out += buf;
    }
    if (f.kind == FaultKind::kMessageDuplicate) {
      std::snprintf(buf, sizeof buf, " copies=+%zu", f.extra_copies);
      out += buf;
    }
    if (f.kind == FaultKind::kOpOverrun) {
      std::snprintf(buf, sizeof buf, " x%.3g", f.overrun_factor);
      out += buf;
    }
    if (std::isfinite(f.t_stop) || f.t_start > 0.0) {
      std::snprintf(buf, sizeof buf, " window=[%.3g,%.3g)", f.t_start,
                    f.t_stop);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::uint64_t hash(const FaultPlan& plan) {
  if (plan.empty()) return 0;
  // FNV-1a over a canonical serialization (hexfloat doubles are exact), the
  // same construction ir::hash uses: equal plans hash equal on any host.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ULL;
  };
  const auto mix_f = [&](double v) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    mix(buf);
  };
  mix(std::to_string(plan.seed));
  for (const FaultSpec& f : plan.faults) {
    mix(std::to_string(static_cast<int>(f.kind)));
    mix(f.target);
    mix_f(f.probability);
    mix_f(f.delay);
    mix(std::to_string(f.extra_copies));
    mix_f(f.overrun_factor);
    mix_f(f.t_start);
    mix_f(f.t_stop);
  }
  return h;
}

}  // namespace ecsim::fault
