#include "sim/compiled_model.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/build_ir.hpp"

namespace ecsim::sim {

CompiledModel::CompiledModel(Model& model)
    : model_(model),
      ir_(std::make_shared<const ir::Model>(build_ir(model))),
      num_blocks_(model.num_blocks()) {
  adopt();
}

CompiledModel::CompiledModel(Model& model, ir::Model irm)
    : model_(model), num_blocks_(model.num_blocks()) {
  if (irm.blocks.size() != num_blocks_) {
    throw std::invalid_argument(
        "CompiledModel: IR block count does not match model");
  }
  if (irm.layout.eval_order.size() != num_blocks_) {
    // Defensive: reject un-finalized IR instead of adopting empty tables.
    ir::finalize(irm);
  }
  ir_ = std::make_shared<const ir::Model>(std::move(irm));
  adopt();
}

void CompiledModel::bounds_check(std::size_t index, std::size_t count,
                                 const char* what) {
  if (index >= count) throw std::out_of_range(what);
}

void CompiledModel::adopt() {
  const ir::LayoutIr& l = ir_->layout;

  block_names_.clear();
  block_names_.reserve(num_blocks_);
  for (const ir::BlockIr& b : ir_->blocks) block_names_.push_back(b.name);

  arena_size_ = l.arena_size;
  out_base_ = l.out_base;
  out_slices_.resize(l.out_slices.size());
  for (std::size_t i = 0; i < l.out_slices.size(); ++i) {
    out_slices_[i] = ArenaSlice{l.out_slices[i].offset, l.out_slices[i].width};
  }
  in_base_ = l.in_base;
  in_slices_.resize(l.in_slices.size());
  for (std::size_t i = 0; i < l.in_slices.size(); ++i) {
    in_slices_[i] = ArenaSlice{l.in_slices[i].offset, l.in_slices[i].width};
  }

  state_offset_ = l.state_offset;
  total_state_ = l.total_state;
  stateful_blocks_ = l.stateful_blocks;

  eval_order_ = l.eval_order;
  topo_pos_ = l.topo_pos;
  cone_base_ = l.cone_base;
  cone_blocks_ = l.cone_blocks;
  dynamic_cone_ = l.dynamic_cone;

  sink_base_ = l.sink_base;
  sink_ptr_ = l.sink_ptr;
  event_sinks_.resize(l.event_sinks.size());
  for (std::size_t i = 0; i < l.event_sinks.size(); ++i) {
    event_sinks_[i] = PortRef{l.event_sinks[i].block, l.event_sinks[i].port};
  }
}

}  // namespace ecsim::sim
