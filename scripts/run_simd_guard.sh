#!/usr/bin/env bash
# CI simd job (DESIGN.md §3.8): the batched SIMD Monte Carlo engine must
#   1. hold every lane's trace bit-identical to the scalar Simulator under
#      the native ISA build (-DECSIM_SIMD=avx2, or sse2 when the host lacks
#      AVX2) — pack kernels, BatchedSim suites, lane-RNG and MC invariance
#      properties;
#   2. hold the EXP-P8 perf guard (batched >= 2x scalar trials/s on
#      chains_200, digests identical), run via `ctest -C bench` on the ISA
#      build — BENCH_p8.json lands in the build dir;
#   3. pass the same identity suites on the portable scalar build (the
#      intrinsics and the fallback must agree bit for bit);
#   4. pass them again under ASan+UBSan on the scalar build (the masked
#      queue, arena and spill paths are pointer-heavy).
#
# Usage: scripts/run_simd_guard.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
isa_dir="${repo_root}/build-simd-isa"
scalar_dir="${repo_root}/build-simd-scalar"
asan_dir="${repo_root}/build-simd-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Individual gtest cases are registered with ctest under their suite names.
lane_suites='^(PackTest|BatchedSimTest|SimdLaneProperty|Rng|SimMonteCarlo)\.'
targets=(test_simd test_properties test_par test_mathlib)

isa=avx2
if ! grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
  isa=sse2
  echo "run_simd_guard: host has no AVX2, falling back to ECSIM_SIMD=sse2"
fi

# 1. Native-ISA build: lane identity suites.
cmake -S "${repo_root}" -B "${isa_dir}" -DCMAKE_BUILD_TYPE=Release \
  -DECSIM_SIMD="${isa}"
cmake --build "${isa_dir}" -j "${JOBS}" \
  --target "${targets[@]}" bench_p8_simd_mc
ctest --test-dir "${isa_dir}" --output-on-failure -R "${lane_suites}"

# 2. EXP-P8 perf guard on the ISA build (writes BENCH_p8.json there).
ctest --test-dir "${isa_dir}" -C bench -R bench_p8_simd_mc_guard \
  --output-on-failure

# 3. Portable scalar build: the fallback must produce the same bits.
cmake -S "${repo_root}" -B "${scalar_dir}" -DCMAKE_BUILD_TYPE=Release \
  -DECSIM_SIMD=scalar
cmake --build "${scalar_dir}" -j "${JOBS}" --target "${targets[@]}"
ctest --test-dir "${scalar_dir}" --output-on-failure -R "${lane_suites}"

# 4. Scalar build under ASan+UBSan.
cmake -S "${repo_root}" -B "${asan_dir}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_SIMD=scalar -DECSIM_SANITIZE=ON
cmake --build "${asan_dir}" -j "${JOBS}" --target "${targets[@]}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "${asan_dir}" --output-on-failure -R "${lane_suites}"

echo "run_simd_guard: OK (isa=${isa})"
