#include "sim/event_queue.hpp"

namespace ecsim::sim {

// The per-event quad-heap operations (push/pop/pop_simultaneous and the
// sifts) live inline in the header; this file holds the cold control-plane
// entry points plus the legacy-binary operations, which stay out-of-line on
// purpose: the former std::priority_queue implementation was an opaque call
// per event, and the bench A/B baseline reproduces that cost model.

void EventQueue::push_legacy(Time t, std::size_t block, std::size_t event_in) {
  heap_.push_back(ScheduledEvent{t, next_seq_++, block, event_in});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

ScheduledEvent EventQueue::pop_legacy() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  ScheduledEvent ev = heap_.back();
  heap_.pop_back();
  return ev;
}

Time EventQueue::next_time_legacy() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().time;
}

void EventQueue::clear() {
  // O(1)-amortized: drop the elements, keep the capacity. The previous
  // implementation popped one-by-one through the heap (O(n log n)) — a
  // regression test clears a 1e6-event queue and checks it is near-instant.
  heap_.clear();
  next_seq_ = 0;
}

void EventQueue::set_impl(Impl impl) {
  if (impl == impl_) return;
  if (!heap_.empty())
    throw std::logic_error("EventQueue::set_impl: queue not empty");
  impl_ = impl;
}

}  // namespace ecsim::sim
