// Combinational (direct-feedthrough) signal-processing blocks.
#pragma once

#include <vector>

#include "mathlib/matrix.hpp"
#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;

/// y = K * u with a matrix gain; input width = K.cols, output = K.rows.
class Gain : public Block {
 public:
  Gain(std::string name, math::Matrix k);
  Gain(std::string name, double k)
      : Gain(std::move(name), math::Matrix{{k}}) {}

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  math::Matrix k_;
};

/// y = sum_i signs[i] * u_i over n equally wide inputs.
class Sum : public Block {
 public:
  Sum(std::string name, std::vector<double> signs, std::size_t width = 1);

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<double> signs_;
  std::size_t width_;
};

/// Elementwise clamp to [lo, hi] — actuator limits.
class Saturation : public Block {
 public:
  Saturation(std::string name, double lo, double hi, std::size_t width = 1);

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  double lo_, hi_;
};

/// Mid-tread quantizer with step q — models ADC/DAC resolution.
class Quantizer : public Block {
 public:
  Quantizer(std::string name, double step, std::size_t width = 1);

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  double step_;
};

/// Concatenates n inputs of given widths into one output.
class Mux : public Block {
 public:
  Mux(std::string name, std::vector<std::size_t> widths);

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<std::size_t> widths_;
};

/// Splits one input into n outputs of given widths.
class Demux : public Block {
 public:
  Demux(std::string name, std::vector<std::size_t> widths);

  void compute_outputs(Context& ctx) override;
  bool input_feedthrough(std::size_t) const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<std::size_t> widths_;
};

}  // namespace ecsim::blocks
