// Design-space sweeps over the co-simulation driver (DESIGN.md §3.3): the
// latency × jitter grids of EXP-C1 and the bus-bandwidth × WCET grids of
// EXP-F3, evaluated concurrently on a par::BatchRunner with serial-identical
// results. Each grid cell assembles its own loop model and simulator, so the
// cells are embarrassingly parallel; the cell order in the returned vector
// is row-major over the grid axes regardless of thread count.
#pragma once

#include <string>
#include <vector>

#include "par/batch_runner.hpp"
#include "translate/cosim.hpp"

namespace ecsim::sweep {

/// One evaluated point of the design space. Grid coordinates the sweep did
/// not vary stay 0.
struct SweepCell {
  double la_frac = 0.0;      // constant actuation latency / Ts
  double jitter_frac = 0.0;  // actuation jitter peak-to-peak / Ts
  double bus_bandwidth = 0.0;  // architecture axis: bus data units per s
  double wcet_scale = 0.0;     // architecture axis: controller WCET multiplier
  double iae = 0.0;
  double ise = 0.0;
  double itae = 0.0;
  double cost = 0.0;  // time-averaged quadratic cost
  double overshoot_pct = 0.0;
  double act_latency_mean = 0.0;  // measured La mean (eq. 2)
  double act_jitter = 0.0;        // measured La peak-to-peak
  bool stable = true;             // closed loop did not diverge
};

/// EXP-C1 shape: constant-latency × jitter grid via run_latency_loop.
/// Every cell simulates with loop.seed (same contract as the serial
/// benches: cells differ by their grid point, not by their noise draw).
struct TimingGrid {
  translate::LoopSpec loop;
  std::vector<double> latency_fracs;  // La/Ts values (rows)
  std::vector<double> jitter_fracs;   // jitter p2p/Ts values (columns)
};

/// EXP-F3 shape: bus-bandwidth × controller-WCET grid through the full AAA
/// flow (adequation -> graph of delays -> co-simulation).
struct ArchitectureGrid {
  translate::LoopSpec loop;
  translate::DistributedSpec dist;  // base; arch/wcet replaced per cell
  std::size_t processors = 2;
  std::vector<double> bus_bandwidths;  // data units per s (rows)
  std::vector<double> wcet_scales;     // multiplies dist.wcet_ctrl (columns)
};

class SweepRunner {
 public:
  explicit SweepRunner(par::BatchOptions opts = {});

  std::size_t threads() const { return threads_; }

  /// Row-major over latency_fracs × jitter_fracs, bit-identical for any
  /// thread count.
  std::vector<SweepCell> run(const TimingGrid& grid) const;
  /// Row-major over bus_bandwidths × wcet_scales.
  std::vector<SweepCell> run(const ArchitectureGrid& grid) const;

 private:
  par::BatchOptions opts_;
  std::size_t threads_ = 1;
};

/// Machine-readable dump, one row per cell, header included.
std::string to_csv(const std::vector<SweepCell>& cells);

/// Text heatmap of one metric over a 2-D grid: `cells` must be row-major
/// rows × cols. Diverged cells print "unstable".
std::string heatmap(const std::vector<SweepCell>& cells,
                    const std::vector<double>& rows,
                    const std::vector<double>& cols, const char* row_label,
                    const char* col_label, double SweepCell::*metric,
                    const char* title);

/// Standard sweep workload: LQR state feedback on the Cervin DC servo
/// G(s) = 1000/(s(s+1)) at Ts = 10 ms, unit position step (the loop every
/// experiment in EXPERIMENTS.md is measured against).
translate::LoopSpec servo_loop(double ts = 0.01, double t_end = 1.0);

}  // namespace ecsim::sweep
