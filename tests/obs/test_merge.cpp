// Shard recombination for parallel batches: MetricsRegistry::merge folds
// counters/gauges/histograms across per-task registries, Tracer::append
// re-interns names/tracks and appends records in stable order. Both must be
// order-stable so a batch merged in task-index order snapshots identically
// regardless of thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ecsim::obs {
namespace {

TEST(MetricsMerge, CountersAdd) {
  MetricsRegistry a, b;
  a.counter("shared").add(10);
  b.counter("shared").add(32);
  b.counter("only_b").add(5);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 42u);
  EXPECT_EQ(a.counter("only_b").value(), 5u);
  // b is untouched.
  EXPECT_EQ(b.counter("shared").value(), 32u);
}

TEST(MetricsMerge, GaugesRatchetToMax) {
  MetricsRegistry a, b;
  a.gauge("hwm").set(7.0);
  b.gauge("hwm").set(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge("hwm").value(), 7.0);
  b.gauge("hwm").set(11.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.gauge("hwm").value(), 11.0);
}

TEST(MetricsMerge, HistogramsCombineCountsSumsMinMaxBuckets) {
  MetricsRegistry a, b;
  a.histogram("h").observe(1.0);
  a.histogram("h").observe(4.0);
  b.histogram("h").observe(0.5);
  b.histogram("h").observe(100.0);
  a.merge(b);
  const Histogram& h = a.histogram("h");
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 105.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(h.bucket(0), 2u);  // 1.0 and 0.5
  EXPECT_EQ(h.bucket(2), 1u);  // 4.0
  EXPECT_EQ(h.bucket(7), 1u);  // 100.0 in (64, 128]
}

TEST(MetricsMerge, MergeIntoEmptyHistogramPreservesMinMax) {
  MetricsRegistry a, b;
  b.histogram("h").observe(3.0);
  b.histogram("h").observe(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.histogram("h").min(), 3.0);
  EXPECT_DOUBLE_EQ(a.histogram("h").max(), 9.0);
  EXPECT_EQ(a.histogram("h").count(), 2u);
}

TEST(MetricsMerge, ShardMergeSnapshotIsOrderStable) {
  // Simulate three task shards and merge in task-index order twice; the
  // JSON snapshot must be identical — this is the determinism contract the
  // parallel batch runner relies on.
  auto fill_shard = [](MetricsRegistry& r, int i) {
    r.counter("sim.events").add(static_cast<std::uint64_t>(10 * (i + 1)));
    r.gauge("queue.hwm").set(static_cast<double>(i));
    r.histogram("cone").observe(static_cast<double>(i + 1));
  };
  std::string first, second;
  for (int round = 0; round < 2; ++round) {
    MetricsRegistry merged;
    for (int i = 0; i < 3; ++i) {
      MetricsRegistry shard;
      fill_shard(shard, i);
      merged.merge(shard);
    }
    (round == 0 ? first : second) = merged.to_json();
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"sim.events\": 60"), std::string::npos);
}

TEST(TracerAppend, RemapsNamesAndTracksAcrossShards) {
  Tracer shard1(64), shard2(64), merged(256);
  shard1.set_enabled(true);
  shard2.set_enabled(true);
  // Interning order differs between the shards on purpose: the ids must be
  // remapped, not copied.
  const std::uint32_t s1_ev = shard1.intern("ev/a");
  const std::uint32_t s1_trk = shard1.track("task0", Domain::kSim);
  shard1.instant(s1_ev, s1_trk, 1.0);
  const std::uint32_t s2_other = shard2.intern("ev/b");
  const std::uint32_t s2_ev = shard2.intern("ev/a");
  const std::uint32_t s2_trk = shard2.track("task1", Domain::kSim);
  shard2.instant(s2_other, s2_trk, 2.0);
  shard2.instant(s2_ev, s2_trk, 3.0);

  merged.append(shard1);
  merged.append(shard2);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(merged.name(events[0].name), "ev/a");
  EXPECT_EQ(merged.track_name(events[0].track), "task0");
  EXPECT_EQ(merged.name(events[1].name), "ev/b");
  EXPECT_EQ(merged.name(events[2].name), "ev/a");
  EXPECT_EQ(merged.track_name(events[2].track), "task1");
  EXPECT_EQ(merged.track_domain(events[2].track), Domain::kSim);
  // Same semantic name interned once in the destination.
  EXPECT_EQ(events[0].name, events[2].name);
}

TEST(TracerAppend, WorksIntoDisabledTracerAndKeepsOrder) {
  // The merge destination is typically a cold aggregator that never records
  // live; append must not be gated on enabled().
  Tracer shard(64), merged(64);
  shard.set_enabled(true);
  const std::uint32_t ev = shard.intern("e");
  const std::uint32_t trk = shard.track("t", Domain::kWall);
  for (int i = 0; i < 5; ++i) shard.instant(ev, trk, static_cast<double>(i));
  ASSERT_FALSE(merged.enabled());
  merged.append(shard);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].ts,
                     static_cast<double>(i));
  }
}

TEST(TracerAppend, PreservesArgNamesAndValues) {
  Tracer shard(16), merged(16);
  shard.set_enabled(true);
  const std::uint32_t ev = shard.intern("span");
  const std::uint32_t arg = shard.intern("cone_size");
  const std::uint32_t trk = shard.track("t", Domain::kWall);
  shard.span(ev, trk, 1.0, 5.0, arg, 17.0);
  merged.append(shard);
  const auto events = merged.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(merged.name(events[0].arg_name), "cone_size");
  EXPECT_DOUBLE_EQ(events[0].arg, 17.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 4.0);
}

}  // namespace
}  // namespace ecsim::obs
