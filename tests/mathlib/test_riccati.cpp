#include "mathlib/riccati.hpp"

#include <gtest/gtest.h>

#include "mathlib/linalg.hpp"

namespace ecsim::math {
namespace {

// Residual of the DARE at P.
double dare_residual(const Matrix& a, const Matrix& b, const Matrix& q,
                     const Matrix& r, const Matrix& p) {
  const Matrix at = a.transpose();
  const Matrix bt = b.transpose();
  const Matrix gain = solve(r + bt * p * b, bt * p * a);
  const Matrix rhs = at * p * a - (at * p * b) * gain + q;
  return (rhs - p).max_abs();
}

TEST(Dare, ScalarClosedForm) {
  // a=1, b=1, q=1, r=1: P = (1+sqrt(5))/2 * ... solve p = p - p^2/(1+p) + 1
  // => p^2 - p - 1 = 0 => p = (1+sqrt(5))/2.
  Matrix a{{1.0}}, b{{1.0}}, q{{1.0}}, r{{1.0}};
  const Matrix p = solve_dare(a, b, q, r);
  EXPECT_NEAR(p(0, 0), (1.0 + std::sqrt(5.0)) / 2.0, 1e-9);
}

TEST(Dare, ResidualSmallForSecondOrderSystem) {
  Matrix a{{1.0, 0.1}, {0.0, 1.0}};
  Matrix b{{0.0}, {0.1}};
  Matrix q = Matrix::identity(2);
  Matrix r{{0.1}};
  const Matrix p = solve_dare(a, b, q, r);
  EXPECT_LT(dare_residual(a, b, q, r, p), 1e-8);
  // P must be symmetric positive semidefinite: check symmetry and x'Px >= 0
  // on a few vectors.
  EXPECT_TRUE(approx_equal(p, p.transpose(), 1e-9));
  EXPECT_GE(quad_form(p, {1.0, 0.0}), 0.0);
  EXPECT_GE(quad_form(p, {0.3, -0.7}), 0.0);
}

TEST(Dare, StabilizesUnstablePlant) {
  Matrix a{{1.2, 0.0}, {0.1, 0.8}};
  Matrix b{{1.0}, {0.0}};
  Matrix q = Matrix::identity(2);
  Matrix r{{1.0}};
  const Matrix p = solve_dare(a, b, q, r);
  const Matrix k = solve(r + b.transpose() * p * b, b.transpose() * p * a);
  EXPECT_LT(spectral_radius(a - b * k), 1.0);
}

TEST(Dare, DimensionMismatchThrows) {
  EXPECT_THROW(
      solve_dare(Matrix(2, 2), Matrix(3, 1), Matrix(2, 2), Matrix(1, 1)),
      std::invalid_argument);
}

TEST(Dare, UnstabilizablePairFails) {
  // Unreachable unstable mode: a = diag(2, .5), b only drives the stable one.
  Matrix a{{2.0, 0.0}, {0.0, 0.5}};
  Matrix b{{0.0}, {1.0}};
  RiccatiOptions opts;
  opts.max_iterations = 2000;
  EXPECT_THROW(solve_dare(a, b, Matrix::identity(2), Matrix{{1.0}}, opts),
               std::runtime_error);
}

TEST(Dlyap, SolvesFixedPoint) {
  Matrix a{{0.5, 0.1}, {0.0, 0.3}};
  Matrix q = Matrix::identity(2);
  const Matrix x = solve_dlyap(a, q);
  EXPECT_TRUE(approx_equal(a * x * a.transpose() + q, x, 1e-9));
}

TEST(Dlyap, UnstableAThrows) {
  Matrix a{{1.5}};
  EXPECT_THROW(solve_dlyap(a, Matrix{{1.0}}), std::runtime_error);
}

}  // namespace
}  // namespace ecsim::math
