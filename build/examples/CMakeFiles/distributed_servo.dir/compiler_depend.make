# Empty compiler generated dependencies file for distributed_servo.
# This may be replaced when dependencies are built.
