// CompiledModel: the flat compile artifact — arena layout, input resolution,
// feedthrough cones, event CSR — independent of any Simulator run.
#include "sim/compiled_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"
#include "sim/model.hpp"
#include "sim/simulator.hpp"

namespace ecsim::sim {
namespace {

bool contains(std::span<const std::size_t> xs, std::size_t v) {
  return std::find(xs.begin(), xs.end(), v) != xs.end();
}

TEST(CompiledModel, ArenaSlicesAreDisjointAndCoverAllOutputs) {
  Model m;
  auto& c = m.add<blocks::Constant>("c", std::vector<double>{1.0, 2.0, 3.0});
  auto& g = m.add<blocks::Gain>("g", math::Matrix{{1.0, 0.0, 0.0}});
  auto& i = m.add<blocks::Integrator>("i", std::vector<double>{0.0, 0.0});
  m.connect(c, 0, g, 0);
  const CompiledModel cm(m);

  const ArenaSlice sc = cm.output_slice(m.index_of(c), 0);
  const ArenaSlice sg = cm.output_slice(m.index_of(g), 0);
  const ArenaSlice si = cm.output_slice(m.index_of(i), 0);
  EXPECT_EQ(sc.width, 3u);
  EXPECT_EQ(sg.width, 1u);
  EXPECT_EQ(si.width, 2u);

  // The zero prefix (≥ widest input) comes first; slices never overlap.
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (const ArenaSlice& s : {sc, sg, si}) {
    EXPECT_GE(s.offset, 3u);  // zero prefix must fit g's width-3 input
    spans.emplace_back(s.offset, s.offset + s.width);
  }
  std::sort(spans.begin(), spans.end());
  for (std::size_t k = 1; k < spans.size(); ++k) {
    EXPECT_LE(spans[k - 1].second, spans[k].first);
  }
  EXPECT_LE(spans.back().second, cm.arena_size());
}

TEST(CompiledModel, ConnectedInputAliasesProducerSlice) {
  Model m;
  auto& c = m.add<blocks::Constant>("c", 2.5);
  auto& g = m.add<blocks::Gain>("g", 3.0);
  m.connect(c, 0, g, 0);
  const CompiledModel cm(m);

  const ArenaSlice producer = cm.output_slice(m.index_of(c), 0);
  const ArenaSlice consumer = cm.input_slice(m.index_of(g), 0);
  EXPECT_EQ(consumer.offset, producer.offset);
  EXPECT_EQ(consumer.width, producer.width);
}

TEST(CompiledModel, UnconnectedInputReadsZeroPrefix) {
  Model m;
  auto& g = m.add<blocks::Gain>("g", math::Matrix{{1.0, 1.0}});
  const CompiledModel cm(m);
  const ArenaSlice in = cm.input_slice(m.index_of(g), 0);
  EXPECT_EQ(in.offset, 0u);
  EXPECT_EQ(in.width, 2u);

  // And the simulator actually treats it as zero.
  Simulator s(m, SimOptions{.end_time = 0.01});
  s.run();
  EXPECT_EQ(s.output_value(g, 0), 0.0);
}

TEST(CompiledModel, ConeIsDownstreamFeedthroughClosureInTopoOrder) {
  // c -> g1 -> g2, plus an unrelated branch c2 -> g3.
  Model m;
  auto& c = m.add<blocks::Constant>("c", 1.0);
  auto& g1 = m.add<blocks::Gain>("g1", 2.0);
  auto& g2 = m.add<blocks::Gain>("g2", 2.0);
  auto& c2 = m.add<blocks::Constant>("c2", 1.0);
  auto& g3 = m.add<blocks::Gain>("g3", 2.0);
  m.connect(c, 0, g1, 0);
  m.connect(g1, 0, g2, 0);
  m.connect(c2, 0, g3, 0);
  const CompiledModel cm(m);

  const auto cone = cm.cone(m.index_of(g1));
  EXPECT_EQ(cone.size(), 2u);
  EXPECT_TRUE(contains(cone, m.index_of(g1)));
  EXPECT_TRUE(contains(cone, m.index_of(g2)));
  EXPECT_FALSE(contains(cone, m.index_of(g3)));
  // Topological: g1 strictly before g2.
  EXPECT_EQ(cone.front(), m.index_of(g1));

  // The head of the chain sees everything downstream of it.
  const auto head = cm.cone(m.index_of(c));
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(head.front(), m.index_of(c));
}

TEST(CompiledModel, ConeStopsAtNonFeedthroughBoundary) {
  // g -> integrator -> g2: the integrator's *input* side consumes g, but its
  // output changes only via state, so g's cone must not cross into g2.
  Model m;
  auto& src = m.add<blocks::Constant>("src", 1.0);
  auto& g = m.add<blocks::Gain>("g", 2.0);
  auto& x = m.add<blocks::Integrator>("x", 0.0);
  auto& g2 = m.add<blocks::Gain>("g2", 2.0);
  m.connect(src, 0, g, 0);
  m.connect(g, 0, x, 0);
  m.connect(x, 0, g2, 0);
  const CompiledModel cm(m);

  const auto cone = cm.cone(m.index_of(g));
  EXPECT_TRUE(contains(cone, m.index_of(g)));
  EXPECT_FALSE(contains(cone, m.index_of(x)))
      << "integrator output is state-driven, not feedthrough";
  EXPECT_FALSE(contains(cone, m.index_of(g2)));

  // The integrator's own cone covers its feedthrough downstream.
  const auto xc = cm.cone(m.index_of(x));
  EXPECT_TRUE(contains(xc, m.index_of(x)));
  EXPECT_TRUE(contains(xc, m.index_of(g2)));
}

TEST(CompiledModel, PureEventBlockConeIsSelf) {
  Model m;
  auto& clk = m.add<blocks::Clock>("clk", 0.1);
  auto& d = m.add<blocks::EventDelay>("d", 0.01);
  auto& n = m.add<blocks::EventCounter>("n");
  m.connect_event(clk, 0, d, d.event_in());
  m.connect_event(d, d.event_out(), n, 0);
  const CompiledModel cm(m);

  // Event wires carry no data: each block's cone is just itself.
  EXPECT_EQ(cm.cone(m.index_of(d)).size(), 1u);
  EXPECT_EQ(cm.cone(m.index_of(d)).front(), m.index_of(d));
}

TEST(CompiledModel, DynamicConeContainsTimeSourcesAndStatefulButNotStatic) {
  Model m;
  auto& sine = m.add<blocks::Sine>("sine", 1.0, 1.0);
  auto& gs = m.add<blocks::Gain>("gs", 2.0);     // downstream of sine
  auto& x = m.add<blocks::Integrator>("x", 0.0);
  auto& cst = m.add<blocks::Constant>("cst", 1.0);
  auto& gc = m.add<blocks::Gain>("gc", 2.0);     // downstream of constant only
  m.connect(sine, 0, gs, 0);
  m.connect(sine, 0, x, 0);
  m.connect(cst, 0, gc, 0);
  const CompiledModel cm(m);

  const auto& dyn = cm.dynamic_cone();
  EXPECT_TRUE(contains(dyn, m.index_of(sine)));
  EXPECT_TRUE(contains(dyn, m.index_of(gs)));
  EXPECT_TRUE(contains(dyn, m.index_of(x)));
  EXPECT_FALSE(contains(dyn, m.index_of(cst)))
      << "static subgraphs stay fresh from initialization";
  EXPECT_FALSE(contains(dyn, m.index_of(gc)));
}

TEST(CompiledModel, EventSinksMatchWiring) {
  Model m;
  auto& clk = m.add<blocks::Clock>("clk", 0.1);
  auto& d1 = m.add<blocks::EventDelay>("d1", 0.01);
  auto& d2 = m.add<blocks::EventDelay>("d2", 0.01);
  m.connect_event(clk, 0, d1, d1.event_in());
  m.connect_event(clk, 0, d2, d2.event_in());
  const CompiledModel cm(m);

  const auto sinks = cm.event_sinks(m.index_of(clk), 0);
  ASSERT_EQ(sinks.size(), 2u);
  EXPECT_EQ(sinks[0], (PortRef{m.index_of(d1), d1.event_in()}));
  EXPECT_EQ(sinks[1], (PortRef{m.index_of(d2), d2.event_in()}));
  EXPECT_TRUE(cm.event_sinks(m.index_of(d1), d1.event_out()).empty());
}

TEST(CompiledModel, AlgebraicLoopThrows) {
  Model m;
  auto& g1 = m.add<blocks::Gain>("g1", 0.5);
  auto& g2 = m.add<blocks::Gain>("g2", 0.5);
  m.connect(g1, 0, g2, 0);
  m.connect(g2, 0, g1, 0);
  EXPECT_THROW(CompiledModel cm(m), std::runtime_error);
}

TEST(CompiledModel, StatePackingIsContiguous) {
  Model m;
  auto& x1 = m.add<blocks::Integrator>("x1", std::vector<double>{0.0, 0.0});
  auto& c = m.add<blocks::Constant>("c", std::vector<double>{1.0, 1.0});
  auto& x2 = m.add<blocks::Integrator>("x2", 0.0);
  m.connect(c, 0, x1, 0);
  const CompiledModel cm(m);

  EXPECT_EQ(cm.total_state(), 3u);
  EXPECT_EQ(cm.state_offset(m.index_of(x1)), 0u);
  EXPECT_EQ(cm.state_offset(m.index_of(x2)), 2u);
  const std::vector<std::size_t> expect = {m.index_of(x1), m.index_of(x2)};
  EXPECT_EQ(cm.stateful_blocks(), expect);
}

TEST(CompiledModel, OneCompileBacksManyRunners) {
  Model m;
  auto& c = m.add<blocks::Constant>("c", 2.0);
  auto& g = m.add<blocks::Gain>("g", 3.0);
  m.connect(c, 0, g, 0);
  CompiledModel compiled(m);

  Simulator a(compiled, SimOptions{.end_time = 0.01});
  Simulator b(std::move(compiled), SimOptions{.end_time = 0.01});
  a.run();
  b.run();
  EXPECT_EQ(a.output_value(g, 0), 6.0);
  EXPECT_EQ(b.output_value(g, 0), 6.0);
}

}  // namespace
}  // namespace ecsim::sim
