#include "translate/schedule_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"

namespace ecsim::translate {
namespace {

struct DistributedChain {
  aaa::AlgorithmGraph alg{"chain", 0.01};
  aaa::ArchitectureGraph arch{
      aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  aaa::Schedule sched{0, 0};

  DistributedChain() {
    const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
    const aaa::OpId c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
    const aaa::OpId a = alg.add_simple("act", aaa::OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = aaa::adequate(alg, arch);
  }
};

const obs::TimelineSlice* find_slice(const std::vector<obs::TimelineSlice>& v,
                                     const std::string& name) {
  const auto it = std::find_if(v.begin(), v.end(), [&](const auto& s) {
    return s.name == name;
  });
  return it == v.end() ? nullptr : &*it;
}

TEST(ScheduleExport, ScheduleSlicesMirrorTheGantt) {
  DistributedChain f;
  const auto slices = schedule_to_timeline(f.alg, f.arch, f.sched);
  // Three ops + two cross-processor communications.
  EXPECT_EQ(slices.size(), f.sched.ops().size() + f.sched.comms().size());

  const obs::TimelineSlice* ctrl = find_slice(slices, "ctrl");
  ASSERT_NE(ctrl, nullptr);
  EXPECT_EQ(ctrl->track, "proc/P1");
  const aaa::ScheduledOp& so = f.sched.of_op(f.alg.find("ctrl"));
  EXPECT_DOUBLE_EQ(ctrl->start, so.start);
  EXPECT_DOUBLE_EQ(ctrl->end, so.end);
  ASSERT_FALSE(ctrl->args.empty());
  EXPECT_EQ(ctrl->args[0].first, "op");

  // Communication slices carry the producer->consumer label on the medium
  // track with hop/size args.
  const obs::TimelineSlice* comm = find_slice(slices, "sense->ctrl");
  ASSERT_NE(comm, nullptr);
  EXPECT_EQ(comm->track.rfind("medium/", 0), 0u);
  EXPECT_LT(comm->start, comm->end);
  EXPECT_EQ(comm->args.size(), 2u);
  EXPECT_EQ(comm->args[0].first, "hop");
  EXPECT_EQ(comm->args[1].first, "size");
  EXPECT_DOUBLE_EQ(comm->args[1].second, 8.0);
}

TEST(ScheduleExport, VmSlicesCarryIterationsAndPrefix) {
  DistributedChain f;
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.alg, f.arch, f.sched);
  exec::VmOptions opts;
  opts.iterations = 3;
  opts.period = f.alg.period();
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, f.sched, code, opts);
  ASSERT_FALSE(vm.deadlock);

  const auto slices = vm_to_timeline(f.alg, f.arch, f.sched, vm, "wcet/");
  EXPECT_EQ(slices.size(), vm.ops.size() + vm.comms.size());
  // Every instance lands on a prefixed proc/ or medium/ track.
  for (const obs::TimelineSlice& s : slices) {
    EXPECT_TRUE(s.track.rfind("wcet/proc/", 0) == 0 ||
                s.track.rfind("wcet/medium/", 0) == 0)
        << s.track;
    ASSERT_FALSE(s.args.empty());
    EXPECT_EQ(s.args[0].first, "iteration");
  }
  // 3 iterations of "act" -> three slices with iterations 0, 1, 2.
  std::vector<double> iters;
  for (const obs::TimelineSlice& s : slices) {
    if (s.name == "act") iters.push_back(s.args[0].second);
  }
  std::sort(iters.begin(), iters.end());
  EXPECT_EQ(iters, (std::vector<double>{0.0, 1.0, 2.0}));
}

TEST(ScheduleExport, JsonFormsAreLoadableTraceDocuments) {
  DistributedChain f;
  const std::string sched_doc = schedule_to_trace_json(f.alg, f.arch, f.sched);
  EXPECT_NE(sched_doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(sched_doc.find("proc/P0"), std::string::npos);
  EXPECT_NE(sched_doc.find("\"ph\": \"X\""), std::string::npos);

  const aaa::GeneratedCode code =
      aaa::generate_executives(f.alg, f.arch, f.sched);
  exec::VmOptions opts;
  opts.iterations = 1;
  opts.period = f.alg.period();
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, f.sched, code, opts);
  const std::string vm_doc = vm_to_trace_json(f.alg, f.arch, f.sched, vm);
  EXPECT_NE(vm_doc.find("\"name\": \"ctrl\""), std::string::npos);
  EXPECT_NE(vm_doc.find("sense->ctrl"), std::string::npos);
}

TEST(ScheduleExport, VmTracerHooksRecordOpAndCommSpans) {
  DistributedChain f;
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.alg, f.arch, f.sched);
  obs::Tracer tracer;
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;
  exec::VmOptions opts;
  opts.iterations = 2;
  opts.period = f.alg.period();
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  opts.track_prefix = "wcet/";
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, f.sched, code, opts);
  ASSERT_FALSE(vm.deadlock);

  // Sim-domain spans: one per op instance + one per comm instance; plus the
  // wall-clock vm.run span.
  const auto snap = tracer.snapshot();
  std::size_t sim_spans = 0;
  for (const obs::TraceEvent& e : snap) {
    if (e.phase == obs::Phase::kSpan &&
        tracer.track_domain(e.track) == obs::Domain::kSim) {
      ++sim_spans;
      EXPECT_EQ(tracer.track_name(e.track).rfind("wcet/", 0), 0u);
    }
  }
  EXPECT_EQ(sim_spans, vm.ops.size() + vm.comms.size());
  EXPECT_EQ(metrics.counter("exec.ops_executed").value(), vm.ops.size());
  EXPECT_EQ(metrics.counter("exec.comms_executed").value(), vm.comms.size());
  EXPECT_GT(metrics.counter("exec.wcet_lookups").value(), 0u);
}

}  // namespace
}  // namespace ecsim::translate
