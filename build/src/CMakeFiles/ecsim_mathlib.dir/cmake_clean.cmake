file(REMOVE_RECURSE
  "CMakeFiles/ecsim_mathlib.dir/mathlib/expm.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/expm.cpp.o.d"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/linalg.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/linalg.cpp.o.d"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/matrix.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/matrix.cpp.o.d"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/riccati.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/riccati.cpp.o.d"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/rng.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/rng.cpp.o.d"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/stats.cpp.o"
  "CMakeFiles/ecsim_mathlib.dir/mathlib/stats.cpp.o.d"
  "libecsim_mathlib.a"
  "libecsim_mathlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_mathlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
