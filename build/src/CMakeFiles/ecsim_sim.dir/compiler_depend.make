# Empty compiler generated dependencies file for ecsim_sim.
# This may be replaced when dependencies are built.
