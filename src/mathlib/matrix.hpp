// Dense row-major matrix/vector arithmetic for control design and scheduling
// analytics. Small-matrix oriented (plant orders <= ~20); no SIMD, no views.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace ecsim::math {

/// Dense row-major matrix of double. Value type with deep-copy semantics.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested initializer lists: Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);
  static Matrix ones(std::size_t rows, std::size_t cols);
  /// Diagonal matrix from a vector of diagonal entries.
  static Matrix diag(const std::vector<double>& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  Matrix& operator/=(double s);

  Matrix transpose() const;
  /// Transpose into caller-owned scratch (resized, capacity-preserving).
  /// dst must not alias *this.
  void transpose_into(Matrix& dst) const;
  /// Sum of diagonal entries; requires a square matrix.
  double trace() const;
  /// Frobenius norm.
  double norm() const;
  /// Induced infinity norm (max absolute row sum).
  double norm_inf() const;
  /// Max absolute entry.
  double max_abs() const;

  /// Extract the sub-matrix [r0, r0+nr) x [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;
  /// Copy `m` into this matrix with top-left corner at (r0, c0).
  void set_block(std::size_t r0, std::size_t c0, const Matrix& m);

  /// Column c as a vector.
  std::vector<double> col(std::size_t c) const;
  /// Row r as a vector.
  std::vector<double> row(std::size_t r) const;

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Reshape without preserving contents (values are unspecified afterwards;
  /// callers overwrite). Keeps the backing capacity, so repeated resize to
  /// the same high-water shape never reallocates — scratch-matrix support
  /// for the in-place kernels below.
  void resize(std::size_t rows, std::size_t cols);

  std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(const Matrix& lhs, const Matrix& rhs);
Matrix operator*(double s, Matrix m);
Matrix operator*(Matrix m, double s);
Matrix operator-(Matrix m);

/// Matrix * column vector.
std::vector<double> operator*(const Matrix& m, const std::vector<double>& v);

// ---- in-place hot-path kernels (DESIGN.md §3.4) ---------------------------
// Allocation-free variants of the operators above for steady-state per-step
// updates (control laws, state-space blocks). dst must not alias the inputs.
// The summation order matches the allocating operators exactly, so switching
// a call site between the two flavours is bit-identical.

/// dst = m * v. dst.size() must equal m.rows(), v.size() must equal m.cols().
void multiply_into(std::span<double> dst, const Matrix& m,
                   std::span<const double> v);
/// dst += m * v (same shape rules as multiply_into).
void multiply_add_into(std::span<double> dst, const Matrix& m,
                       std::span<const double> v);
/// dst = a * b; dst is resized (capacity-preserving) to a.rows() x b.cols().
/// dst must not alias a or b.
void multiply_into(Matrix& dst, const Matrix& a, const Matrix& b);

/// Entrywise comparison within absolute tolerance.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-9);

/// Horizontal concatenation [a b]; rows must match.
Matrix hcat(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a; b]; cols must match.
Matrix vcat(const Matrix& a, const Matrix& b);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

// ---- free vector helpers (plain std::vector<double> as column vector) ----

std::vector<double> vec_add(const std::vector<double>& a,
                            const std::vector<double>& b);
std::vector<double> vec_sub(const std::vector<double>& a,
                            const std::vector<double>& b);
std::vector<double> vec_scale(double s, const std::vector<double>& a);
double dot(const std::vector<double>& a, const std::vector<double>& b);
double vec_norm(const std::vector<double>& a);
/// x' M x (quadratic form); M must be n x n with n == x.size().
double quad_form(const Matrix& m, const std::vector<double>& x);
/// Same, but M*x goes through caller-owned scratch (grown on first use,
/// reused after) instead of a fresh temporary — allocation-free after
/// warm-up, bit-identical result.
double quad_form(const Matrix& m, const std::vector<double>& x,
                 std::vector<double>& scratch);

}  // namespace ecsim::math
