#include "simd/batched_sim.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "simd/pack.hpp"

namespace ecsim::sim {

// ---- MaskedQueue -------------------------------------------------------------
// The scalar EventQueue's quad heap (sim/event_queue.hpp) with a lane mask
// per entry. (time, seq) stays a strict total order: each lane's entries pop
// in exactly the relative order its scalar run would pop them, because a
// lane's pushes happen in the same per-lane order under the batched driver
// and the shared seq counter is monotone over pushes.

void BatchedSim::MaskedQueue::push(Time t, std::size_t block,
                                   std::size_t event_in, std::uint64_t mask) {
  heap_.push_back(MaskedEvent{t, next_seq_++, block, event_in, mask});
  std::size_t i = heap_.size() - 1;
  const MaskedEvent ev = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    const MaskedEvent& p = heap_[parent];
    const bool p_later =
        p.time != ev.time ? p.time > ev.time : p.seq > ev.seq;
    if (!p_later) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void BatchedSim::MaskedQueue::sift_down(std::size_t i) {
  const auto is_later = [](const MaskedEvent& a, const MaskedEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  };
  const std::size_t n = heap_.size();
  const MaskedEvent ev = heap_[i];
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (is_later(heap_[best], heap_[c])) best = c;
    }
    if (!is_later(ev, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = ev;
}

BatchedSim::MaskedEvent BatchedSim::MaskedQueue::pop_top() {
  MaskedEvent ev = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return ev;
}

void BatchedSim::MaskedQueue::pop_simultaneous(std::vector<MaskedEvent>& out) {
  const Time t = heap_.front().time;
  do {
    out.push_back(pop_top());
  } while (!heap_.empty() && heap_.front().time == t);
}

// ---- Lane --------------------------------------------------------------------
// One trial's run state plus its ExecHost face: Context calls made by Block
// code during this lane's turn resolve against this lane's arena/state/rng/
// trace through exactly the accessors the scalar Simulator implements.

struct BatchedSim::Lane final : ExecHost {
  BatchedSim* owner = nullptr;
  std::size_t index = 0;
  std::unique_ptr<Model> model;
  std::vector<double> arena;
  std::vector<double> x;              // committed continuous state
  const double* active_x = nullptr;   // state viewed by blocks right now
  math::Rng rng{1};
  Trace trace;
  IntegratorWorkspace iws;
  std::uint64_t seed = 0;
  std::size_t events = 0;
  bool evicted = false;

  std::span<const double> ctx_input(std::size_t block,
                                    std::size_t port) const override {
    const ArenaSlice s = owner->compiled_->input_slice(block, port);
    return std::span<const double>(arena.data() + s.offset, s.width);
  }
  std::span<double> ctx_output(std::size_t block, std::size_t port) override {
    const ArenaSlice s = owner->compiled_->output_slice(block, port);
    return std::span<double>(arena.data() + s.offset, s.width);
  }
  std::span<const double> ctx_state(std::size_t block) const override {
    return std::span<const double>(
        active_x + owner->compiled_->state_offset(block),
        model->block(block).continuous_state_size());
  }
  std::span<double> ctx_state_mut(std::size_t block) override {
    if (owner->in_integration_) {
      throw std::logic_error(
          "Context::state_mut: continuous state is read-only during "
          "integration");
    }
    return std::span<double>(x.data() + owner->compiled_->state_offset(block),
                             model->block(block).continuous_state_size());
  }
  void ctx_emit(std::size_t block, std::size_t event_out, Time at) override {
    for (const PortRef& sink : owner->compiled_->event_sinks(block, event_out))
      owner->lane_collect(index, at, sink.block, sink.port);
  }
  void ctx_schedule_self(std::size_t block, std::size_t event_in,
                         Time at) override {
    if (event_in >= model->block(block).num_event_inputs()) {
      throw std::out_of_range("schedule_self: event input out of range");
    }
    owner->lane_collect(index, at, block, event_in);
  }
  math::Rng& ctx_rng() override { return rng; }
  Trace& ctx_trace() override { return trace; }
};

// ---- BatchedSim --------------------------------------------------------------

BatchedSim::BatchedSim(const ModelFactory& factory, BatchedOptions opts)
    : opts_(std::move(opts)) {
  const std::size_t w =
      opts_.width != 0 ? opts_.width : simd::preferred_batch_width();
  if (w == 0 || w > 64) {
    throw std::invalid_argument("BatchedSim: width must be in [1, 64]");
  }
  // Obs hooks and bench cost models are scalar-driver concerns; the batched
  // driver (and its spill reruns) run bare so lane traces depend on nothing
  // but (model, base options, seed).
  opts_.base.tracer = nullptr;
  opts_.base.metrics = nullptr;
  opts_.base.legacy_integrator_alloc = false;
  opts_.base.legacy_event_queue = false;

  lanes_.reserve(w);
  for (std::size_t l = 0; l < w; ++l) {
    auto lane = std::make_unique<Lane>();
    lane->owner = this;
    lane->index = l;
    lane->model = factory();
    if (lane->model == nullptr) {
      throw std::invalid_argument("BatchedSim: factory returned null model");
    }
    lanes_.push_back(std::move(lane));
  }

  compiled_ = std::make_unique<CompiledModel>(*lanes_[0]->model);

  // Lockstep is only sound over structurally identical diagrams: the shared
  // layout (offsets, orders, cones, sinks) is compiled once from lane 0.
  const Model& m0 = *lanes_[0]->model;
  for (std::size_t l = 1; l < w; ++l) {
    const Model& m = *lanes_[l]->model;
    bool ok = m.num_blocks() == m0.num_blocks();
    for (std::size_t b = 0; ok && b < m0.num_blocks(); ++b) {
      const Block& a = m0.block(b);
      const Block& c = m.block(b);
      ok = a.name() == c.name() && a.num_inputs() == c.num_inputs() &&
           a.num_outputs() == c.num_outputs() &&
           a.num_event_inputs() == c.num_event_inputs() &&
           a.num_event_outputs() == c.num_event_outputs() &&
           a.continuous_state_size() == c.continuous_state_size();
    }
    if (!ok) {
      throw std::invalid_argument(
          "BatchedSim: factory models differ structurally across lanes");
    }
  }

  for (std::unique_ptr<Lane>& lane : lanes_) {
    lane->arena.assign(compiled_->arena_size(), 0.0);
    lane->trace.register_block_names(compiled_->block_names());
  }
  emis_.resize(w);

  // Uniform-dispatch classification (see dispatch_instant): a block may
  // execute once per batch only if it declares lockstep/pure event handling
  // AND the structure proves the contract's preconditions — no data ports
  // to read or write, no continuous state, no refresh cone — AND its
  // describe() parameters are identical on every lane (a stateful factory
  // may legally vary parameters per call; per-lane dispatch tolerates that,
  // a shared execution would not, and opaque blocks cannot be compared).
  // full_refresh re-sweeps the network after every dispatch, which the
  // single-execution path cannot replay, so it forces per-lane dispatch.
  const std::size_t nb = compiled_->num_blocks();
  uniform_class_.assign(nb, 0);
  lockstep_ok_.assign(nb, 0);
  lockstep_armed_.assign(nb, 0);
  if (!opts_.base.full_refresh) {
    for (std::size_t b = 0; b < nb; ++b) {
      const Block& blk = m0.block(b);
      const Block::EventUniformity u = blk.event_uniformity();
      if (u == Block::EventUniformity::kVarying) continue;
      if (blk.num_inputs() != 0 || blk.num_outputs() != 0 ||
          blk.continuous_state_size() != 0) {
        continue;
      }
      // The refresh cone may contain the block itself; with zero data
      // outputs its compute_outputs cannot write anything, so skipping that
      // self-refresh on the uniform path is unobservable. Any wider cone
      // means downstream blocks re-evaluate per event — not replayable by a
      // single execution.
      const std::span<const std::size_t> cone = compiled_->cone(b);
      if (!(cone.empty() || (cone.size() == 1 && cone[0] == b))) continue;
      ir::BlockIr ref;
      blk.describe(ref);
      bool same = !ref.opaque;
      for (std::size_t l = 1; same && l < w; ++l) {
        ir::BlockIr other;
        lanes_[l]->model->block(b).describe(other);
        same =
            !other.opaque && other.kind == ref.kind && other.attrs == ref.attrs;
      }
      if (!same) continue;
      uniform_class_[b] = u == Block::EventUniformity::kPure ? 2 : 1;
    }
  }
}

BatchedSim::~BatchedSim() = default;

const Trace& BatchedSim::trace(std::size_t lane) const {
  if (lane >= active_) {
    throw std::out_of_range("BatchedSim::trace: lane was not run");
  }
  return lanes_[lane]->trace;
}

std::size_t BatchedSim::events_dispatched(std::size_t lane) const {
  if (lane >= active_) {
    throw std::out_of_range("BatchedSim::events_dispatched: lane was not run");
  }
  return lanes_[lane]->events;
}

// Streaming consensus merge. The first lane of an activation records its
// emission list into ref_emis_; every later lane is compared against that
// list element-by-element AS it emits (one hot vector, no per-lane buffers
// touched) and only falls back to a private emis_[lane] list at the first
// mismatch. flush_collected() then pushes the shared list ONCE with the
// mask of all fully matching lanes — the common case in non-divergent
// regions — plus per-lane singleton pushes for the diverged lanes (always
// correct, the merge is purely an amortisation). Either way each lane's
// per-lane push order matches its scalar run, which is what keeps
// (time, seq) pop order lane-identical.

void BatchedSim::begin_collect(std::size_t lane, bool first) {
  if (first) {
    ref_emis_.clear();
    matched_mask_ = 0;
    diverged_mask_ = 0;
    collect_mode_ = Collect::kRef;
  } else {
    collect_mode_ = Collect::kCompare;
    cmp_pos_ = 0;
  }
  (void)lane;
}

void BatchedSim::lane_collect(std::size_t lane, Time at, std::size_t block,
                              std::size_t event_in) {
  if (uniform_mask_ != 0) {
    // Emission from a uniform dispatch: every lane in the event's mask
    // emits this identically, so broadcast it directly — no consensus
    // stream, no per-lane work at all.
    if (lane_active_ && at == time_) {
      instant_q_.push_back(InstEntry{block, event_in, uniform_mask_});
    } else {
      queue_.push(at, block, event_in, uniform_mask_);
    }
    return;
  }
  const Pending p{at, block, event_in};
  switch (collect_mode_) {
    case Collect::kRef:
      ref_emis_.push_back(p);
      break;
    case Collect::kCompare:
      if (cmp_pos_ < ref_emis_.size() && ref_emis_[cmp_pos_] == p) {
        ++cmp_pos_;
      } else {
        // Diverged mid-activation: the prefix matched, so reconstruct it.
        emis_[lane].assign(ref_emis_.begin(),
                           ref_emis_.begin() +
                               static_cast<std::ptrdiff_t>(cmp_pos_));
        emis_[lane].push_back(p);
        collect_mode_ = Collect::kLaneLocal;
      }
      break;
    case Collect::kLaneLocal:
      emis_[lane].push_back(p);
      break;
  }
}

void BatchedSim::end_collect(std::size_t lane) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (collect_mode_ == Collect::kRef) {
    matched_mask_ |= bit;
  } else if (collect_mode_ == Collect::kCompare) {
    if (cmp_pos_ == ref_emis_.size()) {
      matched_mask_ |= bit;
    } else {
      // Shorter list than the reference: a strict prefix is a divergence.
      emis_[lane].assign(ref_emis_.begin(),
                         ref_emis_.begin() +
                             static_cast<std::ptrdiff_t>(cmp_pos_));
      diverged_mask_ |= bit;
    }
  } else {
    diverged_mask_ |= bit;
  }
}

void BatchedSim::route_pending(const Pending& p, std::uint64_t mask) {
  if (lane_active_ && p.time == time_) {
    // Same-instant cascade: appended to the shared work list, reached by
    // the instant walk after everything queued ahead of it — the scalar
    // Simulator's ties-then-cascades order, per lane.
    instant_q_.push_back(InstEntry{p.block, p.event_in, mask});
  } else {
    queue_.push(p.time, p.block, p.event_in, mask);
  }
}

void BatchedSim::flush_collected() {
  if (matched_mask_ != 0) {
    for (const Pending& p : ref_emis_) route_pending(p, matched_mask_);
  }
  for (std::uint64_t bits = diverged_mask_; bits != 0; bits &= bits - 1) {
    const std::size_t l = std::countr_zero(bits);
    for (const Pending& p : emis_[l]) route_pending(p, 1ull << l);
    emis_[l].clear();
  }
  matched_mask_ = 0;
  diverged_mask_ = 0;
}

void BatchedSim::refresh_lane(Lane& lane, std::span<const std::size_t> order,
                              Time t) {
  for (std::size_t b : order) {
    Context ctx(&lane, b, t, /*in_event=*/false);
    lane.model->block(b).compute_outputs(ctx);
  }
}

void BatchedSim::refresh_dynamic_lane(Lane& lane, Time t) {
  refresh_lane(lane,
               opts_.base.full_refresh
                   ? std::span<const std::size_t>(compiled_->eval_order())
                   : compiled_->dynamic_cone(),
               t);
}

void BatchedSim::eval_derivatives_lane(Lane& lane, Time t,
                                       const std::vector<double>& x,
                                       std::vector<double>& dx) {
  lane.active_x = x.data();
  refresh_dynamic_lane(lane, t);
  std::fill(dx.begin(), dx.end(), 0.0);
  for (std::size_t b : compiled_->stateful_blocks()) {
    Block& blk = lane.model->block(b);
    Context ctx(&lane, b, t, /*in_event=*/false);
    blk.derivatives(ctx,
                    std::span<double>(dx.data() + compiled_->state_offset(b),
                                      blk.continuous_state_size()));
  }
}

// Lockstep RK4: the shared stepper walks ONE (t, h) sequence; stage
// arithmetic runs through the pack<W> kernels whose operand grouping matches
// integrator.cpp's rk4_step exactly, so each lane's state advances by the
// same bits as a scalar integrate() over the same interval.
void BatchedSim::rk4_lockstep(Time t0, Time t1) {
  const std::size_t n = compiled_->total_state();
  const double max_step = opts_.base.integrator.max_step;
  Time t = t0;
  while (t < t1) {
    const double h = std::min(max_step, t1 - t);
    const double half_h = 0.5 * h;
    const double h6 = h / 6.0;
    for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
      Lane& L = *lanes_[std::countr_zero(bits)];
      eval_derivatives_lane(L, t, L.x, L.iws.k1);
      simd::axpy_stage(L.iws.tmp.data(), L.x.data(), half_h, L.iws.k1.data(),
                       n);
    }
    for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
      Lane& L = *lanes_[std::countr_zero(bits)];
      eval_derivatives_lane(L, t + 0.5 * h, L.iws.tmp, L.iws.k2);
      simd::axpy_stage(L.iws.tmp.data(), L.x.data(), half_h, L.iws.k2.data(),
                       n);
    }
    for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
      Lane& L = *lanes_[std::countr_zero(bits)];
      eval_derivatives_lane(L, t + 0.5 * h, L.iws.tmp, L.iws.k3);
      simd::axpy_stage(L.iws.tmp.data(), L.x.data(), h, L.iws.k3.data(), n);
    }
    for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
      Lane& L = *lanes_[std::countr_zero(bits)];
      eval_derivatives_lane(L, t + h, L.iws.tmp, L.iws.k4);
      simd::rk4_combine(L.x.data(), h6, L.iws.k1.data(), L.iws.k2.data(),
                        L.iws.k3.data(), L.iws.k4.data(), n);
    }
    t += h;
  }
}

void BatchedSim::integrate_lanes(Time t0, Time t1) {
  in_integration_ = true;
  if (opts_.base.integrator.kind == IntegratorKind::kRk4) {
    rk4_lockstep(t0, t1);
  } else {
    // Adaptive RKF45 chooses per-lane step sequences from per-lane error
    // estimates — inherently divergent, so each live lane steps through the
    // scalar integrator (still bit-exact: same code, same boundaries).
    for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
      Lane& L = *lanes_[std::countr_zero(bits)];
      integrate(
          opts_.base.integrator,
          [this, &L](Time t, const std::vector<double>& x,
                     std::vector<double>& dx) {
            eval_derivatives_lane(L, t, x, dx);
          },
          t0, t1, L.x, L.iws);
    }
  }
  in_integration_ = false;
  for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
    Lane& L = *lanes_[std::countr_zero(bits)];
    L.active_x = L.x.data();
  }
}

// One lane's turn over a varying segment of the instant's work list: its
// subsequence in list order. Lane-major iteration is the locality keystone:
// the lane's working set (trace tail, rng, its model's block objects) stays
// hot across every event in the segment instead of being evicted W-1 times
// per event by the other lanes (event-major was measurably SLOWER than
// scalar past ~8 lanes).
void BatchedSim::dispatch_lane_turn(std::size_t lane, bool first,
                                    std::size_t begin, std::size_t end) {
  Lane& L = *lanes_[lane];
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const std::size_t max_events = opts_.base.max_events;
  begin_collect(lane, first);
  for (std::size_t i = begin; i < end; ++i) {
    const InstEntry& e = instant_q_[i];
    if ((e.mask & bit) == 0) continue;
    L.trace.record_event(time_, e.block, e.event_in);
    {
      Context ctx(&L, e.block, time_, /*in_event=*/true);
      L.model->block(e.block).on_event(ctx, e.event_in);
    }
    const std::span<const std::size_t> cone =
        opts_.base.full_refresh
            ? std::span<const std::size_t>(compiled_->eval_order())
            : compiled_->cone(e.block);
    if (!cone.empty()) refresh_lane(L, cone, time_);
    if (++L.events > max_events) {
      throw std::runtime_error(
          "BatchedSim: max_events exceeded (runaway loop?)");
    }
  }
  end_collect(lane);
}

// ---- Uniform dispatch --------------------------------------------------------
// A uniform-class block's on_event is the same computation on every lane in
// the event's mask (Block::event_uniformity contract, checked structurally
// and parameter-wise at construction), so it executes ONCE — on lanes_[0]'s
// block object, the shared state carrier — and its emissions broadcast under
// the event's mask. kPure blocks qualify under any mask. kLockstep blocks
// carry state, so they qualify only while every activation reaches every
// live lane; the first partial-mask activation is a cliff handled in
// dispatch_instant().

bool BatchedSim::entry_uniform(const InstEntry& e) const {
  const std::uint8_t c = uniform_class_[e.block];
  if (c == 0) return false;
  if (c == 2) return true;
  if (lockstep_ok_[e.block] == 0) return false;
  const std::uint64_t m = e.mask & live_mask_;
  // Before the shared object has advanced (not armed) a partial mask just
  // demotes the block to per-lane dispatch; afterwards it must evict.
  return m == live_mask_ || lockstep_armed_[e.block] != 0;
}

void BatchedSim::execute_uniform(std::size_t block, std::size_t event_in,
                                 std::uint64_t mask) {
  // lanes_[0] may itself be evicted: harmless — its block objects are only
  // re-initialized by the spill rerun, which happens after lockstep ends.
  // The Lane host is used purely for emission routing (uniform_mask_ makes
  // lane_collect broadcast); the contract forbids every other Context use.
  uniform_mask_ = mask;
  Lane& rep = *lanes_[0];
  Context ctx(&rep, block, time_, /*in_event=*/true);
  rep.model->block(block).on_event(ctx, event_in);
  uniform_mask_ = 0;
  if (uniform_class_[block] == 1) lockstep_armed_[block] = 1;
}

void BatchedSim::record_uniform_run(std::size_t begin, std::size_t end) {
  // The per-lane residue of a uniform run: trace event records and dispatch
  // counts. The record block is built once; every lane covered by all of
  // the run's entries (the lockstep common case) bulk-appends it, and only
  // lanes with a partial subsequence walk the entries one by one. Lanes
  // evicted mid-run get nothing — the scalar spill rewrites their traces.
  const std::size_t max_events = opts_.base.max_events;
  run_records_.clear();
  std::uint64_t covered = ~std::uint64_t{0};
  for (std::size_t i = begin; i < end; ++i) {
    const InstEntry& e = instant_q_[i];
    if (e.mask == 0) continue;
    covered &= e.mask;
    run_records_.push_back(EventRecord{time_, e.block, e.event_in});
  }
  if (run_records_.empty()) return;
  for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
    const std::size_t l = std::countr_zero(bits);
    const std::uint64_t bit = std::uint64_t{1} << l;
    Lane& L = *lanes_[l];
    if ((covered & bit) != 0) {
      L.trace.append_events(run_records_);
      L.events += run_records_.size();
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        const InstEntry& e = instant_q_[i];
        if ((e.mask & bit) == 0) continue;
        L.trace.record_event(time_, e.block, e.event_in);
        ++L.events;
      }
    }
    if (L.events > max_events) {
      throw std::runtime_error(
          "BatchedSim: max_events exceeded (runaway loop?)");
    }
  }
}

// One simulation instant. batch_ (the heap ties, already in (time, seq)
// order) seeds the shared work list; same-instant cascades append to it as
// dispatches emit them. The walk carves the list into runs of uniform
// entries — each executed once for all lanes in its mask — and varying
// segments dispatched lane-major with the consensus merge. Per-lane
// dispatch order is the list order restricted to the lane's mask, which is
// exactly the scalar Simulator's order: heap ties in seq order, then
// cascades in emission order.
void BatchedSim::dispatch_instant() {
  instant_q_.clear();
  for (const MaskedEvent& e : batch_) {
    const std::uint64_t m = e.mask & live_mask_;
    if (m != 0) instant_q_.push_back(InstEntry{e.block, e.event_in, m});
  }
  lane_active_ = true;
  std::size_t pos = 0;
  while (pos < instant_q_.size()) {
    if (entry_uniform(instant_q_[pos])) {
      const std::size_t run_begin = pos;
      while (pos < instant_q_.size()) {
        const InstEntry e = instant_q_[pos];  // copy: execute may grow the list
        const std::uint64_t m = e.mask & live_mask_;
        if (m == 0) {  // orphaned by an eviction; keep the run going
          instant_q_[pos++].mask = 0;
          continue;
        }
        if (!entry_uniform(e)) break;
        if (uniform_class_[e.block] == 1 && m != live_mask_) {
          // kLockstep cliff: the shared object's activation history can no
          // longer be every live lane's history. Keep the larger side of
          // the split; the evicted side reruns on the scalar spill path.
          const std::uint64_t rest = live_mask_ & ~m;
          if (std::popcount(m) >= std::popcount(rest)) {
            evict_lanes(rest);
          } else {
            evict_lanes(m);
            instant_q_[pos++].mask = 0;  // nobody left to take it
            continue;
          }
        }
        instant_q_[pos].mask = m;
        execute_uniform(e.block, e.event_in, m);
        ++pos;
      }
      record_uniform_run(run_begin, pos);
    } else {
      // Varying segment: the consecutive entries that will not dispatch
      // uniformly, bounded by the list size before any turn runs (cascades
      // appended by these turns are walked on later iterations). A
      // lockstep-class block dispatched per-lane is demoted for the rest of
      // the run: its per-lane objects now carry per-lane histories.
      std::size_t seg_end = pos;
      std::uint64_t owners = 0;
      while (seg_end < instant_q_.size() &&
             !entry_uniform(instant_q_[seg_end])) {
        const InstEntry& e = instant_q_[seg_end];
        const std::uint64_t m = e.mask & live_mask_;
        if (m != 0 && uniform_class_[e.block] == 1) lockstep_ok_[e.block] = 0;
        owners |= m;
        ++seg_end;
      }
      bool first = true;
      for (std::uint64_t bits = owners; bits != 0; bits &= bits - 1) {
        dispatch_lane_turn(std::countr_zero(bits), first, pos, seg_end);
        first = false;
      }
      flush_collected();
      pos = seg_end;
    }
  }
  lane_active_ = false;
}

void BatchedSim::evict_lanes(std::uint64_t mask) {
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    lanes_[std::countr_zero(bits)]->evicted = true;
    ++evictions_;
  }
  live_mask_ &= ~mask;
}

// Scalar spill: the evicted trial's lockstep progress is discarded and the
// trial reruns from t=0 on the plain Simulator with its own seed — the
// definition of correctness, not an approximation of it.
void BatchedSim::run_spill(Lane& lane) {
  SimOptions so = opts_.base;
  so.seed = lane.seed;
  Simulator sim(*lane.model, so);
  sim.run();
  lane.trace = sim.trace();
  lane.events = sim.events_dispatched();
}

void BatchedSim::run(std::span<const std::uint64_t> seeds) {
  if (seeds.empty() || seeds.size() > lanes_.size()) {
    throw std::invalid_argument("BatchedSim::run: need 1..width() seeds");
  }
  active_ = seeds.size();
  evictions_ = 0;
  time_ = 0.0;
  queue_.clear();
  if (opts_.base.reserve_queue > 0) queue_.reserve(opts_.base.reserve_queue);
  batch_.clear();
  instant_q_.clear();
  for (std::size_t b = 0; b < uniform_class_.size(); ++b) {
    lockstep_ok_[b] = uniform_class_[b] == 1 ? 1 : 0;
    lockstep_armed_[b] = 0;
  }
  uniform_mask_ = 0;
  lane_active_ = false;
  in_integration_ = false;
  live_mask_ = active_ == 64 ? ~std::uint64_t{0}
                             : ((std::uint64_t{1} << active_) - 1);

  const std::size_t total_state = compiled_->total_state();
  for (std::size_t l = 0; l < active_; ++l) {
    Lane& L = *lanes_[l];
    L.seed = seeds[l];
    L.rng = math::Rng(seeds[l]);
    L.x.assign(total_state, 0.0);
    L.active_x = L.x.data();
    L.iws.resize(total_state);
    L.trace.clear();
    L.trace.reserve(opts_.base.reserve_events, opts_.base.reserve_signals);
    L.events = 0;
    L.evicted = false;
    std::fill(L.arena.begin(), L.arena.end(), 0.0);
  }

  // Initialize block-by-block across lanes, flushing emissions per block so
  // each lane's initial heap pushes land in scalar order (block order, then
  // within-block call order) — merged across lanes where they agree.
  const std::size_t num_blocks = compiled_->num_blocks();
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (std::size_t l = 0; l < active_; ++l) {
      Lane& L = *lanes_[l];
      begin_collect(l, l == 0);
      Context ctx(&L, b, 0.0, /*in_event=*/true);
      L.model->block(b).initialize(ctx);
      end_collect(l);
    }
    flush_collected();
  }
  for (std::size_t l = 0; l < active_; ++l) {
    refresh_lane(*lanes_[l], compiled_->eval_order(), 0.0);
  }

  const Time t_end = opts_.base.end_time;
  while (live_mask_ != 0) {
    // Entries owned solely by evicted lanes are dead — drop them before
    // reading the next event time.
    while (!queue_.empty() && (queue_.front().mask & live_mask_) == 0) {
      queue_.pop_top();
    }
    Time t_next = t_end;
    bool have_event = false;
    if (!queue_.empty() && queue_.next_time() <= t_end) {
      t_next = queue_.next_time();
      have_event = true;
    }
    bool popped = false;
    if (t_next > time_) {
      if (total_state > 0) {
        if (have_event) {
          // Integration boundaries must be lockstep: a lane with no entry
          // at t_next would integrate THROUGH it scalar-side, and splitting
          // its RK interval here would change rounding. Evict stragglers to
          // the scalar spill before stepping the rest.
          batch_.clear();
          queue_.pop_simultaneous(batch_);
          popped = true;
          std::uint64_t boundary = 0;
          for (const MaskedEvent& e : batch_) boundary |= e.mask;
          const std::uint64_t stragglers = live_mask_ & ~boundary;
          if (stragglers != 0) evict_lanes(stragglers);
          if (live_mask_ == 0) break;
        }
        integrate_lanes(time_, t_next);
      }
      time_ = t_next;
      for (std::uint64_t bits = live_mask_; bits != 0; bits &= bits - 1) {
        refresh_dynamic_lane(*lanes_[std::countr_zero(bits)], time_);
      }
    }
    if (!have_event) break;
    if (!popped) {
      batch_.clear();
      queue_.pop_simultaneous(batch_);
    }
    dispatch_instant();
  }

  for (std::size_t l = 0; l < active_; ++l) {
    if (lanes_[l]->evicted) run_spill(*lanes_[l]);
  }
}

}  // namespace ecsim::sim
