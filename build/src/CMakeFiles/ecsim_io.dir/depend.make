# Empty dependencies file for ecsim_io.
# This may be replaced when dependencies are built.
