file(REMOVE_RECURSE
  "libecsim_io.a"
)
