// Layout derivation: the six passes that used to live inside
// sim::CompiledModel, ported to run on IR data so every backend (interpreter,
// native codegen) adopts one canonical layout. Error messages keep the
// "CompiledModel:" prefix — that is still the contract surface callers see,
// since the interpreter's compile throws these through ir::finalize().
#include <algorithm>
#include <stdexcept>
#include <string>

#include "ir/ir.hpp"

namespace ecsim::ir {

namespace {

void layout_arena(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  // The arena starts with a zero prefix wide enough for any input, backing
  // unconnected inputs; no output slice maps there, so it is never written.
  std::size_t max_input_width = 0;
  for (const BlockIr& b : m.blocks) {
    for (std::size_t w : b.in_widths) max_input_width = std::max(max_input_width, w);
  }
  l.arena_size = max_input_width;

  l.out_base.assign(n + 1, 0);
  l.out_slices.clear();
  for (std::size_t b = 0; b < n; ++b) {
    l.out_base[b] = l.out_slices.size();
    for (std::size_t w : m.blocks[b].out_widths) {
      l.out_slices.push_back(SliceIr{l.arena_size, w});
      l.arena_size += w;
    }
  }
  l.out_base[n] = l.out_slices.size();
}

void resolve_inputs(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  l.in_base.assign(n + 1, 0);
  l.in_slices.clear();
  for (std::size_t b = 0; b < n; ++b) {
    l.in_base[b] = l.in_slices.size();
    for (std::size_t w : m.blocks[b].in_widths) {
      // Unconnected: read the zero prefix at the input's declared width.
      l.in_slices.push_back(SliceIr{0, w});
    }
  }
  l.in_base[n] = l.in_slices.size();

  for (const WireIr& w : m.data_wires) {
    const BlockIr& from = m.blocks.at(w.from.block);
    const BlockIr& to = m.blocks.at(w.to.block);
    const std::size_t produced = from.out_widths.at(w.from.port);
    const std::size_t consumed = to.in_widths.at(w.to.port);
    if (produced != consumed) {
      throw std::invalid_argument(
          "CompiledModel: width mismatch on wire '" + from.name +
          "' output " + std::to_string(w.from.port) + " (width " +
          std::to_string(produced) + ") -> '" + to.name + "' input " +
          std::to_string(w.to.port) + " (width " + std::to_string(consumed) +
          ")");
    }
    l.in_slices[l.in_base[w.to.block] + w.to.port] =
        l.out_slices[l.out_base[w.from.block] + w.from.port];
  }
}

void pack_states(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  l.state_offset.assign(n, 0);
  l.stateful_blocks.clear();
  l.total_state = 0;
  for (std::size_t b = 0; b < n; ++b) {
    l.state_offset[b] = l.total_state;
    const std::size_t nx = m.blocks[b].state_size;
    l.total_state += nx;
    if (nx > 0) l.stateful_blocks.push_back(b);
  }
}

void flatten_event_wires(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  l.sink_base.assign(n + 1, 0);
  std::size_t slots = 0;
  for (std::size_t b = 0; b < n; ++b) {
    l.sink_base[b] = slots;
    slots += m.blocks[b].n_event_out;
  }
  l.sink_base[n] = slots;

  // CSR: count per (block, event_out), prefix-sum, then fill.
  std::vector<std::size_t> counts(slots, 0);
  for (const WireIr& w : m.event_wires) {
    ++counts[l.sink_base[w.from.block] + w.from.port];
  }
  l.sink_ptr.assign(slots + 1, 0);
  for (std::size_t s = 0; s < slots; ++s) {
    l.sink_ptr[s + 1] = l.sink_ptr[s] + counts[s];
  }
  l.event_sinks.assign(l.sink_ptr[slots], PortRefIr{});
  std::vector<std::size_t> fill(slots, 0);
  for (const WireIr& w : m.event_wires) {
    const std::size_t slot = l.sink_base[w.from.block] + w.from.port;
    l.event_sinks[l.sink_ptr[slot] + fill[slot]++] = w.to;
  }
}

bool input_feedthrough(const BlockIr& b, std::size_t port) {
  return port < b.feedthrough.size() && b.feedthrough[port];
}

void order_feedthrough(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  // Kahn's algorithm over producer -> consumer edges where the consumer's
  // input has direct feedthrough.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const WireIr& w : m.data_wires) {
    if (input_feedthrough(m.blocks[w.to.block], w.to.port)) {
      succ[w.from.block].push_back(w.to.block);
      ++indeg[w.to.block];
    }
  }
  l.eval_order.clear();
  l.eval_order.reserve(n);
  std::vector<std::size_t> ready;
  for (std::size_t b = 0; b < n; ++b) {
    if (indeg[b] == 0) ready.push_back(b);
  }
  while (!ready.empty()) {
    const std::size_t b = ready.back();
    ready.pop_back();
    l.eval_order.push_back(b);
    for (std::size_t s : succ[b]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (l.eval_order.size() != n) {
    std::string loop_members;
    for (std::size_t b = 0; b < n; ++b) {
      if (indeg[b] != 0) loop_members += " '" + m.blocks[b].name + "'";
    }
    throw std::runtime_error("CompiledModel: algebraic loop involving:" +
                             loop_members);
  }
  l.topo_pos.assign(n, 0);
  for (std::size_t i = 0; i < l.eval_order.size(); ++i) {
    l.topo_pos[l.eval_order[i]] = i;
  }
}

void build_cones(Model& m) {
  LayoutIr& l = m.layout;
  const std::size_t n = m.blocks.size();
  // Feedthrough successors, deduplicated (parallel wires between the same
  // pair of blocks would otherwise inflate the DFS).
  std::vector<std::vector<std::size_t>> succ(n);
  for (const WireIr& w : m.data_wires) {
    if (input_feedthrough(m.blocks[w.to.block], w.to.port)) {
      auto& s = succ[w.from.block];
      if (std::find(s.begin(), s.end(), w.to.block) == s.end()) {
        s.push_back(w.to.block);
      }
    }
  }

  const std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> stamp(n, npos);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> members;
  auto closure_of = [&](std::size_t root, std::size_t mark) {
    members.clear();
    stack.assign(1, root);
    stamp[root] = mark;
    members.push_back(root);
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (std::size_t s : succ[b]) {
        if (stamp[s] != mark) {
          stamp[s] = mark;
          members.push_back(s);
          stack.push_back(s);
        }
      }
    }
    std::sort(members.begin(), members.end(),
              [&](std::size_t a, std::size_t b) {
                return l.topo_pos[a] < l.topo_pos[b];
              });
  };

  l.cone_base.assign(n + 1, 0);
  l.cone_blocks.clear();
  for (std::size_t b = 0; b < n; ++b) {
    l.cone_base[b] = l.cone_blocks.size();
    closure_of(b, b);
    l.cone_blocks.insert(l.cone_blocks.end(), members.begin(), members.end());
  }
  l.cone_base[n] = l.cone_blocks.size();

  // Dynamic cone: union of the cones of every block whose outputs drift
  // between events without any event being dispatched — continuous state
  // (moved by the integrator) and declared time dependence.
  l.dynamic_cone.clear();
  const std::size_t union_mark = n;  // distinct from per-block marks
  std::vector<std::size_t> in_union(n, npos);
  for (std::size_t b = 0; b < n; ++b) {
    const BlockIr& blk = m.blocks[b];
    if (blk.state_size == 0 && !blk.time_dependent) continue;
    closure_of(b, union_mark + b + 1);
    for (std::size_t mb : members) {
      if (in_union[mb] == npos) {
        in_union[mb] = 0;
        l.dynamic_cone.push_back(mb);
      }
    }
  }
  std::sort(l.dynamic_cone.begin(), l.dynamic_cone.end(),
            [&](std::size_t a, std::size_t b) {
              return l.topo_pos[a] < l.topo_pos[b];
            });
}

}  // namespace

void finalize(Model& m) {
  for (const WireIr& w : m.data_wires) {
    if (w.from.block >= m.blocks.size() || w.to.block >= m.blocks.size()) {
      throw std::invalid_argument("ir::finalize: data wire block out of range");
    }
  }
  for (const WireIr& w : m.event_wires) {
    if (w.from.block >= m.blocks.size() || w.to.block >= m.blocks.size()) {
      throw std::invalid_argument("ir::finalize: event wire block out of range");
    }
  }
  layout_arena(m);
  resolve_inputs(m);
  pack_states(m);
  flatten_event_wires(m);
  order_feedthrough(m);
  build_cones(m);
}

bool fully_described(const Model& m) {
  for (const BlockIr& b : m.blocks) {
    if (b.opaque || b.kind.empty()) return false;
  }
  return true;
}

const Attr* BlockIr::find(const std::string& key) const {
  for (const Attr& a : attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

Attr Attr::of_int(std::string key, long long v) {
  Attr a;
  a.key = std::move(key);
  a.kind = Kind::kInt;
  a.i = v;
  return a;
}

Attr Attr::of_real(std::string key, double v) {
  Attr a;
  a.key = std::move(key);
  a.kind = Kind::kReal;
  a.r = v;
  return a;
}

Attr Attr::of_vec(std::string key, std::vector<double> v) {
  Attr a;
  a.key = std::move(key);
  a.kind = Kind::kRealVec;
  a.vec = std::move(v);
  return a;
}

Attr Attr::of_matrix(std::string key, std::size_t rows, std::size_t cols,
                     std::vector<double> row_major) {
  Attr a;
  a.key = std::move(key);
  a.kind = Kind::kMatrix;
  a.rows = rows;
  a.cols = cols;
  a.vec = std::move(row_major);
  return a;
}

Attr Attr::of_string(std::string key, std::string v) {
  Attr a;
  a.key = std::move(key);
  a.kind = Kind::kString;
  a.s = std::move(v);
  return a;
}

}  // namespace ecsim::ir
