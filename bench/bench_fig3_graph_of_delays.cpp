// EXP-F3 (paper Fig. 3): plant + controller + graph of delays. The central
// experiment of the methodology: the same control design simulated (a) under
// the stroboscopic model and (b) driven by the temporal model of its SynDEx
// implementation, sweeping architecture speed. Expected shape: performance
// degrades monotonically as the implementation slows down; the degradation
// is visible purely in co-simulation.
#include "bench_common.hpp"
#include "translate/graph_of_delays.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-F3", "Fig. 3 / Section 3.2",
                "Implementation-in-the-loop co-simulation vs the ideal "
                "design, sweeping bus latency and controller WCET.");
  const translate::LoopSpec spec = bench::servo_loop();
  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);
  std::printf("ideal reference: IAE=%.5f overshoot=%.2f%% settle=%.4fs\n\n",
              ideal.iae, ideal.step.overshoot_pct, ideal.step.settling_time);

  std::printf("%-26s %10s %10s %10s %12s %12s\n", "architecture",
              "La mean[ms]", "IAE", "IAE/ideal", "overshoot%", "settle [s]");
  struct Case {
    const char* name;
    double bus_latency;
    double wcet_ctrl;
  };
  const Case cases[] = {
      {"fast bus, light ctrl", 1e-4, 5e-4},
      {"fast bus, heavy ctrl", 1e-4, 3e-3},
      {"slow bus, light ctrl", 1e-3, 5e-4},
      {"slow bus, heavy ctrl", 1e-3, 3e-3},
      {"very slow bus, heavy", 2e-3, 4e-3},
  };
  for (const Case& c : cases) {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, c.bus_latency);
    dist.wcet_sense = 2e-4;
    dist.wcet_ctrl = c.wcet_ctrl;
    dist.wcet_act = 2e-4;
    dist.bind_sense = "P0";
    dist.bind_ctrl = "P1";
    dist.bind_act = "P0";
    const translate::CosimOutcome out =
        translate::run_distributed_loop(spec, dist);
    std::printf("%-26s %10.3f %s %s %s %12.4f\n", c.name,
                1e3 * out.act_latency.summary.mean,
                bench::metric(out.iae).c_str(),
                bench::metric(out.iae / ideal.iae, "%10.3f").c_str(),
                bench::metric(out.step.overshoot_pct, "%12.2f").c_str(),
                out.step.settling_time);
  }
  std::printf("\nExecution-time variation (bcet fraction sweep, slow bus + "
              "heavy ctrl):\n");
  std::printf("%12s %14s %10s\n", "bcet/wcet", "La jitter [ms]", "IAE");
  for (const double f : {1.0, 0.7, 0.4, 0.1}) {
    translate::DistributedSpec dist;
    dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 1e-3);
    dist.wcet_sense = 2e-4;
    dist.wcet_ctrl = 3e-3;
    dist.wcet_act = 2e-4;
    dist.bind_sense = "P0";
    dist.bind_ctrl = "P1";
    dist.bind_act = "P0";
    dist.god.bcet_fraction = f;
    const translate::CosimOutcome out =
        translate::run_distributed_loop(spec, dist);
    std::printf("%12.1f %14.4f %s\n", f, 1e3 * out.act_latency.jitter,
                bench::metric(out.iae).c_str());
  }
  std::printf("\n");
}

void BM_BuildGraphOfDelays(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop();
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 1e-4);
  const aaa::AlgorithmGraph alg = translate::make_loop_algorithm(spec, dist);
  const aaa::Schedule sched = aaa::adequate(alg, dist.arch);
  for (auto _ : state) {
    sim::Model m;
    auto god = translate::build_graph_of_delays(m, alg, dist.arch, sched, {});
    benchmark::DoNotOptimize(god);
  }
}
BENCHMARK(BM_BuildGraphOfDelays);

void BM_CosimImplementationAware(benchmark::State& state) {
  const translate::LoopSpec spec = bench::servo_loop(0.01, 0.5);
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, 1e-3);
  dist.wcet_ctrl = 3e-3;
  for (auto _ : state) {
    auto out = translate::run_distributed_loop(spec, dist);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CosimImplementationAware)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
