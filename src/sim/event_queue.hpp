// Time-ordered event queue. Ties at the same instant are broken by insertion
// sequence number, which makes simultaneous-event processing deterministic
// and causally ordered (an event emitted with zero delay during dispatch is
// processed after the events already pending at that instant).
//
// Implementation: an explicit flat 4-ary min-heap over a contiguous vector
// (DESIGN.md §3.4). Compared to the former std::priority_queue binary heap,
// a 4-ary layout halves the sift depth, keeps each sift level inside one or
// two cache lines of 32-byte elements, supports reserve() so steady-state
// pushes never reallocate, clears in O(1), and drains same-instant ties in
// one batched call instead of re-comparing the top per event. The pop order
// is a total order on (time, seq), so any heap arity yields the identical
// event sequence — property-tested against a std::priority_queue oracle.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/trace.hpp"

namespace ecsim::sim {

struct ScheduledEvent {
  Time time = 0.0;
  std::uint64_t seq = 0;      // tie-break: FIFO among simultaneous events
  std::size_t block = 0;      // destination block index
  std::size_t event_in = 0;   // destination event input port
};

class EventQueue {
 public:
  /// Heap discipline. kQuad is the production path; kLegacyBinary restores
  /// the std::push_heap/std::pop_heap binary heap that std::priority_queue
  /// used, kept only as the bench_p4 A/B baseline and the property-test
  /// oracle. Both produce the same pop sequence.
  enum class Impl { kQuad, kLegacyBinary };

  // push/pop/pop_simultaneous are defined inline below: they run once (or
  // once per tie) per dispatched event, and an out-of-line call per event is
  // measurable at the tens-of-millions-events/s the engine sustains. The
  // legacy binary mode deliberately routes through out-of-line *_legacy
  // calls defined in event_queue.cpp — the former std::priority_queue
  // implementation lived behind exactly such opaque per-event calls, and the
  // A/B baseline has to reproduce that cost model, not just the heap shape.
  void push(Time t, std::size_t block, std::size_t event_in) {
    if (impl_ == Impl::kLegacyBinary) {
      push_legacy(t, block, event_in);
      return;
    }
    heap_.push_back(ScheduledEvent{t, next_seq_++, block, event_in});
    sift_up(heap_.size() - 1);
  }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Earliest pending event time; queue must be non-empty.
  Time next_time() const {
    if (impl_ == Impl::kLegacyBinary) return next_time_legacy();
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
    return heap_.front().time;
  }
  /// Remove and return the earliest event (FIFO among ties).
  ScheduledEvent pop() {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
    return pop_top();
  }
  /// Remove every event tied at the earliest pending time and append them
  /// to `out` in FIFO order (out is not cleared). The dispatcher drains one
  /// instant in a single call instead of re-comparing the heap top per
  /// event. Returns the number of events appended; queue must be non-empty.
  /// Ties at the minimal time pop in seq order because (time, seq) is a
  /// strict total order; events emitted with zero delay *during* dispatch of
  /// a batch get larger seq values and therefore land in a later batch —
  /// identical order to popping one event at a time.
  std::size_t pop_simultaneous(std::vector<ScheduledEvent>& out) {
    if (heap_.empty())
      throw std::logic_error("EventQueue::pop_simultaneous: empty");
    const Time t = heap_.front().time;
    std::size_t count = 0;
    // Repeated pop_top: each pop yields the globally smallest remaining
    // (time, seq). During a wide tie drain the replacement element carries
    // an equal time, so it sinks by seq through the shallow 4-ary levels —
    // measured faster than a scan-collect-and-rebuild alternative at both
    // narrow (16-way) and wide (200-way) fan-outs.
    do {
      out.push_back(pop_top());
      ++count;
    } while (!heap_.empty() && heap_.front().time == t);
    return count;
  }
  /// Drop all pending events and reset the FIFO sequence counter. O(1):
  /// keeps the backing capacity, so a cleared queue re-fills without
  /// allocating (regression-tested on a 1e6-event queue).
  void clear();
  /// Pre-size the backing vector so steady-state pushes never reallocate.
  void reserve(std::size_t n) { heap_.reserve(n); }
  std::size_t capacity() const { return heap_.capacity(); }

  void set_impl(Impl impl);
  Impl impl() const { return impl_; }

 private:
  /// Orders the earliest (time, seq) to the top. Also the comparator
  /// std::push_heap/std::pop_heap use in the legacy binary mode (they build
  /// a max-heap, so "later" puts the minimum at the front) — exactly the
  /// functor the former std::priority_queue used.
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  static bool later(const ScheduledEvent& a, const ScheduledEvent& b) {
    return Later{}(a, b);
  }

  void sift_up(std::size_t i) {
    ScheduledEvent ev = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!later(heap_[parent], ev)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = ev;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    ScheduledEvent ev = heap_[i];
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (later(heap_[best], heap_[c])) best = c;
      }
      if (!later(ev, heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = ev;
  }

  ScheduledEvent pop_top() {
    if (impl_ == Impl::kLegacyBinary) return pop_legacy();
    ScheduledEvent ev = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return ev;
  }

  // Out-of-line legacy-binary operations (event_queue.cpp): reproduce the
  // opaque-call-per-event cost model of the former std::priority_queue
  // implementation for the bench A/B baseline.
  void push_legacy(Time t, std::size_t block, std::size_t event_in);
  ScheduledEvent pop_legacy();
  Time next_time_legacy() const;

  std::vector<ScheduledEvent> heap_;
  std::uint64_t next_seq_ = 0;
  Impl impl_ = Impl::kQuad;
};

}  // namespace ecsim::sim
