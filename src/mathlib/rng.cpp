#include "mathlib/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ecsim::math {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  have_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("truncated_normal: hi < lo");
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  const double v = normal(mean, stddev);
  return v < lo ? lo : (v > hi ? hi : v);
}

void Rng::jump() {
  // Jump polynomial from the xoshiro256** reference implementation
  // (Blackman & Vigna): equivalent to 2^128 next_u64() calls.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  have_spare_ = false;
}

std::vector<Rng> Rng::split(std::size_t n) const {
  std::vector<Rng> out;
  out.reserve(n);
  Rng stream = *this;
  stream.have_spare_ = false;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(stream);
    stream.jump();
  }
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("categorical: zero total weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

void fill_lanes_u64(std::vector<Rng>& streams,
                    std::vector<std::uint64_t>& out) {
  if (streams.size() != out.size()) {
    throw std::invalid_argument("fill_lanes_u64: size mismatch");
  }
  for (std::size_t l = 0; l < streams.size(); ++l) {
    out[l] = streams[l].next_u64();
  }
}

void fill_lanes_uniform(std::vector<Rng>& streams, std::vector<double>& out) {
  if (streams.size() != out.size()) {
    throw std::invalid_argument("fill_lanes_uniform: size mismatch");
  }
  for (std::size_t l = 0; l < streams.size(); ++l) {
    out[l] = streams[l].uniform();
  }
}

}  // namespace ecsim::math
