// Shared random-workload generators for property tests: layered random DAGs
// (always acyclic) and random bus architectures.
#pragma once

#include "aaa/algorithm_graph.hpp"
#include "aaa/architecture_graph.hpp"
#include "mathlib/rng.hpp"

namespace ecsim::testing {

inline aaa::AlgorithmGraph random_dag(math::Rng& rng, std::size_t n_ops,
                                      double period = 1.0) {
  aaa::AlgorithmGraph alg("random", period);
  std::vector<aaa::OpId> ids;
  for (std::size_t i = 0; i < n_ops; ++i) {
    aaa::Operation op;
    op.name = "op" + std::to_string(i);
    op.kind = i == 0 ? aaa::OpKind::kSensor
                     : (i + 1 == n_ops ? aaa::OpKind::kActuator
                                       : aaa::OpKind::kCompute);
    op.wcet["cpu"] = rng.uniform(1e-3, 1e-2);
    ids.push_back(alg.add_operation(std::move(op)));
  }
  // Edges only forward in index order: acyclic by construction.
  for (std::size_t j = 1; j < n_ops; ++j) {
    const std::size_t n_preds =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 1));
    for (std::size_t p = 0; p < n_preds && p < j; ++p) {
      const auto from =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<long>(j) - 1));
      bool exists = false;
      for (const aaa::DataDep& d : alg.dependencies()) {
        if (d.from == ids[from] && d.to == ids[j]) exists = true;
      }
      if (!exists) {
        alg.add_dependency(ids[from], ids[j], rng.uniform(1.0, 16.0));
      }
    }
  }
  return alg;
}

inline aaa::ArchitectureGraph random_bus(math::Rng& rng,
                                         std::size_t max_procs = 4) {
  const auto n =
      static_cast<std::size_t>(rng.uniform_int(1, static_cast<long>(max_procs)));
  return aaa::ArchitectureGraph::bus_architecture(
      n, rng.uniform(1e3, 1e5), rng.uniform(0.0, 1e-4));
}

}  // namespace ecsim::testing
