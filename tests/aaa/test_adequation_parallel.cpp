// The pooled candidate-evaluation path of the adequation must produce a
// schedule bit-identical to the serial path: same operation order, same
// placements, same instants, same committed communications — including when
// many ready operations tie on schedule pressure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aaa/adequation.hpp"
#include "obs/metrics.hpp"
#include "par/task_pool.hpp"

namespace ecsim::aaa {
namespace {

/// Fan graph: one sensor feeding `width` independent compute stages that all
/// join into one actuator. With `width` >= parallel_min_ready the middle
/// frontier exercises the pooled evaluation; equal WCETs make every middle
/// operation tie on pressure, stressing the lowest-id tie-break.
AlgorithmGraph fan_graph(std::size_t width, bool equal_wcets) {
  AlgorithmGraph g("fan", 0.01);
  const OpId src = g.add_simple("src", OpKind::kSensor, 1e-4);
  const OpId sink = g.add_simple("sink", OpKind::kActuator, 1e-4);
  for (std::size_t i = 0; i < width; ++i) {
    const double wcet = equal_wcets ? 5e-4 : 1e-4 * static_cast<double>(
                                                 1 + (i * 7) % 13);
    const OpId mid =
        g.add_simple("mid" + std::to_string(i), OpKind::kCompute, wcet);
    g.add_dependency(src, mid, 4.0 + static_cast<double>(i % 3));
    g.add_dependency(mid, sink, 8.0);
  }
  return g;
}

bool same_schedule(const Schedule& a, const Schedule& b) {
  if (a.ops().size() != b.ops().size() ||
      a.comms().size() != b.comms().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops().size(); ++i) {
    const ScheduledOp& x = a.ops()[i];
    const ScheduledOp& y = b.ops()[i];
    if (x.op != y.op || x.proc != y.proc || x.start != y.start ||
        x.end != y.end) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.comms().size(); ++i) {
    const ScheduledComm& x = a.comms()[i];
    const ScheduledComm& y = b.comms()[i];
    if (x.dep_index != y.dep_index || x.hop.medium != y.hop.medium ||
        x.hop_index != y.hop_index || x.start != y.start || x.end != y.end) {
      return false;
    }
  }
  return true;
}

TEST(AdequationParallel, PooledScheduleBitIdenticalToSerial) {
  for (const bool equal : {false, true}) {
    const AlgorithmGraph alg = fan_graph(40, equal);
    const auto arch = ArchitectureGraph::bus_architecture(3, 1e4);
    const Schedule serial = adequate(alg, arch);
    serial.validate(alg, arch);
    for (const std::size_t threads : {2u, 7u}) {
      par::TaskPool pool(threads);
      AdequationOptions opts;
      opts.pool = &pool;
      const Schedule pooled = adequate(alg, arch, opts);
      pooled.validate(alg, arch);
      EXPECT_TRUE(same_schedule(serial, pooled))
          << "threads=" << threads << " equal_wcets=" << equal;
    }
  }
}

TEST(AdequationParallel, CandidateCountersExactUnderPool) {
  const AlgorithmGraph alg = fan_graph(32, /*equal_wcets=*/false);
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  obs::MetricsRegistry serial_metrics, pooled_metrics;
  AdequationOptions serial_opts;
  serial_opts.metrics = &serial_metrics;
  adequate(alg, arch, serial_opts);

  par::TaskPool pool(3);
  AdequationOptions pooled_opts;
  pooled_opts.metrics = &pooled_metrics;
  pooled_opts.pool = &pool;
  adequate(alg, arch, pooled_opts);

  EXPECT_EQ(serial_metrics.counter("aaa.candidates_evaluated").value(),
            pooled_metrics.counter("aaa.candidates_evaluated").value());
  EXPECT_EQ(serial_metrics.counter("aaa.ops_scheduled").value(),
            pooled_metrics.counter("aaa.ops_scheduled").value());
  EXPECT_EQ(serial_metrics.counter("aaa.comms_committed").value(),
            pooled_metrics.counter("aaa.comms_committed").value());
}

TEST(AdequationParallel, SmallFrontierStaysSerialButPoolIsHarmless) {
  // Three-op chain: frontier never reaches parallel_min_ready, so the pool
  // is never engaged; result must still match the default path.
  AlgorithmGraph g("chain", 0.01);
  const OpId s = g.add_simple("sense", OpKind::kSensor, 1e-4);
  const OpId c = g.add_simple("ctrl", OpKind::kCompute, 5e-4);
  const OpId a = g.add_simple("act", OpKind::kActuator, 1e-4);
  g.add_dependency(s, c, 8.0);
  g.add_dependency(c, a, 8.0);
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5);

  const Schedule serial = adequate(g, arch);
  par::TaskPool pool(4);
  AdequationOptions opts;
  opts.pool = &pool;
  const Schedule pooled = adequate(g, arch, opts);
  EXPECT_TRUE(same_schedule(serial, pooled));
}

TEST(AdequationParallel, InfeasibleOperationStillThrowsWithPool) {
  AlgorithmGraph g("bad", 0.01);
  g.add_operation([] {
    Operation o;
    o.name = "alien";
    o.kind = OpKind::kCompute;
    o.wcet["dsp"] = 1e-4;  // no such processor type in the architecture
    return o;
  }());
  for (std::size_t i = 0; i < 20; ++i) {
    g.add_simple("ok" + std::to_string(i), OpKind::kCompute, 1e-4);
  }
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  par::TaskPool pool(3);
  AdequationOptions opts;
  opts.pool = &pool;
  opts.parallel_min_ready = 4;
  EXPECT_THROW(adequate(g, arch, opts), std::runtime_error);
}

}  // namespace
}  // namespace ecsim::aaa
