// Steady-state discrete Kalman filter design (dual of dlqr).
#pragma once

#include "control/state_space.hpp"

namespace ecsim::control {

struct KalmanResult {
  Matrix l;  // steady-state observer gain: xhat+ = A xhat + B u + L (y - C xhat)
  Matrix p;  // steady-state a-priori error covariance
};

/// Steady-state Kalman gain for x+ = Ax + Bu + w, y = Cx + v with
/// process covariance Qw (n x n) and measurement covariance Rv (p x p).
KalmanResult dkalman(const Matrix& a, const Matrix& c, const Matrix& qw,
                     const Matrix& rv);

/// Current-estimator observer-based compensator combining dlqr gain K and
/// Kalman gain L into one discrete controller system (input: y, output: u).
///   xhat+ = (A - BK - LC + ... ) standard predictor form:
///   xhat_{k+1} = A xhat_k + B u_k + L (y_k - C xhat_k),  u_k = -K xhat_k
/// Returned as a discrete StateSpace with input y and output u.
StateSpace observer_compensator(const StateSpace& plant, const Matrix& k,
                                const Matrix& l);

/// Tracking variant for the co-simulation loop: input [y; r], output u with
///   xhat+ = (A - BK - LC) xhat + L y + B nbar r
///   u     = -K xhat + nbar r
/// The nbar feedforward enters both the estimate propagation (through the
/// plant model) and the control, so y tracks a constant reference r.
StateSpace observer_tracking_compensator(const StateSpace& plant,
                                         const Matrix& k, const Matrix& l,
                                         double nbar);

}  // namespace ecsim::control
