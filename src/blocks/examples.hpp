// Canonical example diagrams shared by the CLI (`ecsim_flow ir/simulate
// --example=...`), the benchmarks and the golden-IR CI guards. Keeping the
// builders here (instead of copy-pasting them into each bench) means every
// consumer hashes the SAME model — the committed golden IR and the
// BENCH_*.json stamps stay comparable across PRs.
#pragma once

#include <cstddef>

#include "sim/model.hpp"

namespace ecsim::blocks::examples {

/// The EXP-P1/P4/P6 event workload: one 1 ms clock fanning out to `chains`
/// delay chains (clock -> d1 -> d2 -> counter). Large simultaneous batches,
/// no continuous state: isolates queue + dispatch cost.
sim::Model make_chains(std::size_t chains);

/// Sampled-data servo loop (continuous plant + S/H + discrete controller +
/// probe): integration-dominated, exercises the workspace path and the
/// trace signal pool.
sim::Model make_servo();

}  // namespace ecsim::blocks::examples
