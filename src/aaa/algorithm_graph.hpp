// Algorithm graph of the AAA (Algorithm-Architecture Adequation) methodology:
// a dataflow graph of operations (sensors, computations, actuators) with
// sized data dependencies, WCETs per processor type, optional conditional
// branches (paper §3.2.2) and optional placement constraints (sensors and
// actuators are physically wired to specific processors).
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ecsim::aaa {

using OpId = std::size_t;
using Time = double;

inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

enum class OpKind {
  kSensor,    // acquires a measure (its completion instant is I_j(k), eq. 1)
  kCompute,   // internal computation
  kActuator,  // applies a control (its completion instant is O_j(k), eq. 2)
};

/// One alternative of a conditional operation (if..then..else, §3.2.2).
struct Branch {
  std::string name;
  /// WCET per processor type.
  std::map<std::string, Time> wcet;
};

struct Operation {
  std::string name;
  OpKind kind = OpKind::kCompute;
  /// WCET per processor type; an op can only run on types listed here.
  std::map<std::string, Time> wcet;
  /// Non-empty => conditional operation: at run time exactly one branch
  /// executes, chosen by the condition value; the static schedule reserves
  /// max over branches.
  std::vector<Branch> branches;
  /// Optional processor-name placement constraint (I/O binding).
  std::optional<std::string> bound_processor;
  /// Earliest start within each period (release offset). Used by the
  /// multirate hyperperiod expansion: the i-th instance of a slow operation
  /// releases at i * base_period inside the hyperperiod. Honoured by the
  /// adequation, the executive VM and the graph of delays alike.
  Time release = 0.0;

  bool is_conditional() const { return !branches.empty(); }
  /// WCET on a processor type: plain WCET, or max over branches.
  Time wcet_on(const std::string& proc_type) const;
  /// True if this op can execute on the given processor type.
  bool runs_on(const std::string& proc_type) const;
};

/// Sized data dependency: `from` produces `size` data units consumed by `to`.
struct DataDep {
  OpId from = 0;
  OpId to = 0;
  double size = 1.0;
  /// Message priority for arbitrated media: lower value = higher priority
  /// (CAN identifier order). Under kCanPriority it decides contended
  /// arbitration; under owner-slot TDMA it selects the owner slot
  /// (priority % slots). kNone = "unset": consumers fall back to the
  /// dependency's index in the graph, so declaration order is the default
  /// priority order and existing graphs keep their behavior.
  std::size_t priority = kNone;
};

class AlgorithmGraph {
 public:
  explicit AlgorithmGraph(std::string name = "algorithm", Time period = 0.0)
      : name_(std::move(name)), period_(period) {}

  OpId add_operation(Operation op);
  /// Convenience: uniform WCET on a single default processor type "cpu".
  OpId add_simple(std::string name, OpKind kind, Time wcet,
                  std::optional<std::string> bound_processor = std::nullopt);
  void add_dependency(OpId from, OpId to, double size = 1.0,
                      std::size_t priority = kNone);
  /// Effective message priority of dependency `dep_index`: the explicit
  /// DataDep::priority when set, else the dependency index itself.
  std::size_t dep_priority(std::size_t dep_index) const;

  std::size_t num_operations() const { return ops_.size(); }
  const Operation& op(OpId id) const { return ops_.at(id); }
  Operation& op(OpId id) { return ops_.at(id); }
  const std::vector<DataDep>& dependencies() const { return deps_; }
  const std::string& name() const { return name_; }
  Time period() const { return period_; }
  void set_period(Time t) { period_ = t; }

  std::vector<OpId> predecessors(OpId id) const;
  std::vector<OpId> successors(OpId id) const;
  std::vector<OpId> sensors() const;
  std::vector<OpId> actuators() const;

  /// Topological order; throws std::runtime_error if the graph is cyclic.
  std::vector<OpId> topological_order() const;

  /// Find op id by name; throws std::out_of_range if absent.
  OpId find(const std::string& name) const;

  /// Critical-path length per op (longest path from op to any sink, using
  /// max WCET across processor types, plus optional per-unit comm weight on
  /// edges). Used as the urgency metric of the adequation heuristic.
  std::vector<Time> tail_levels(double comm_weight = 0.0) const;

 private:
  std::string name_;
  Time period_;
  std::vector<Operation> ops_;
  std::vector<DataDep> deps_;
};

}  // namespace ecsim::aaa
