#include "control/delay_compensation.hpp"

#include <stdexcept>

#include "control/c2d.hpp"

namespace ecsim::control {

Matrix augment_q(const Matrix& q, std::size_t n_inputs) {
  const std::size_t n = q.rows();
  Matrix out = Matrix::zeros(n + n_inputs, n + n_inputs);
  out.set_block(0, 0, q);
  return out;
}

StateSpace state_feedback_controller(const Matrix& k, double nbar, double ts) {
  if (k.rows() != 1) {
    throw std::invalid_argument("state_feedback_controller: single-input only");
  }
  const std::size_t n = k.cols();
  StateSpace sys;
  sys.a = Matrix::zeros(0, 0);
  sys.b = Matrix::zeros(0, n + 1);
  sys.c = Matrix::zeros(1, 0);
  sys.d = Matrix::zeros(1, n + 1);
  for (std::size_t i = 0; i < n; ++i) sys.d(0, i) = -k(0, i);
  sys.d(0, n) = nbar;
  sys.discrete = true;
  sys.ts = ts;
  sys.validate();
  return sys;
}

StateSpace delayed_feedback_controller(const Matrix& k_aug, double nbar,
                                       double ts) {
  if (k_aug.rows() != 1 || k_aug.cols() < 2) {
    throw std::invalid_argument(
        "delayed_feedback_controller: need a 1 x (n+1) gain");
  }
  const std::size_t n = k_aug.cols() - 1;  // physical state dimension
  const double ku = k_aug(0, n);           // gain on the stored input u_prev
  // u_k = -Kx x_k - Ku u_prev + nbar r; the single state holds u_prev, so
  // its update equals the output expression.
  StateSpace sys;
  sys.a = Matrix{{-ku}};
  sys.b = Matrix::zeros(1, n + 1);
  sys.c = Matrix{{-ku}};
  sys.d = Matrix::zeros(1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    sys.b(0, i) = -k_aug(0, i);
    sys.d(0, i) = -k_aug(0, i);
  }
  sys.b(0, n) = nbar;
  sys.d(0, n) = nbar;
  sys.discrete = true;
  sys.ts = ts;
  sys.validate();
  return sys;
}

DelayLqrResult dlqr_with_input_delay(const StateSpace& cont_plant, double ts,
                                     double tau, const Matrix& q_aug,
                                     const Matrix& r) {
  cont_plant.validate();
  if (cont_plant.discrete) {
    throw std::invalid_argument("dlqr_with_input_delay: plant must be continuous");
  }
  DelayLqrResult res;
  res.augmented = c2d_with_input_delay(cont_plant, ts, tau);
  const LqrResult lqr = dlqr(res.augmented, q_aug, r);
  res.k = lqr.k;
  if (res.augmented.num_outputs() == 1 && res.augmented.num_inputs() == 1) {
    res.nbar = reference_gain(res.augmented, res.k);
  }
  return res;
}

}  // namespace ecsim::control
