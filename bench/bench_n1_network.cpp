// EXP-N1: the stability-vs-bus-load frontier of the networked DC-servo loop
// (docs/networks.md). The canonical grid of sweep::network_servo_grid() —
// background-load rows × {CAN, TDMA} scenario columns, each cell measuring
// the actuation-latency distribution the arbitrated bus delivers and
// retuning the LQR against it — is computed serially, then three claims are
// asserted, not just printed:
//   (1) monotone degradation — down each scenario column, the measured mean
//       actuation latency never decreases and the delay-aware stability
//       margin never increases as background load rises;
//   (2) determinism — the whole grid is bit-identical at 1 and 4 threads
//       (the property that makes the sweep-service cache sound for the
//       sweep_network verb);
//   (3) wire fidelity — every cell survives the svc codec round-trip
//       bit-exactly (encode_cell/decode_cell is what daemon-served grids
//       travel through).
// The measured frontier goes to BENCH_n1.json.
#include "bench_common.hpp"
#include "par/network_sweep.hpp"
#include "svc/protocol.hpp"

using namespace ecsim;

namespace {

bool cells_identical(const std::vector<sweep::NetworkCell>& a,
                     const std::vector<sweep::NetworkCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bus_load != b[i].bus_load || a[i].scenario != b[i].scenario ||
        a[i].act_latency_mean != b[i].act_latency_mean ||
        a[i].act_jitter != b[i].act_jitter ||
        a[i].nominal_iae != b[i].nominal_iae ||
        a[i].nominal_cost != b[i].nominal_cost ||
        a[i].retuned_iae != b[i].retuned_iae ||
        a[i].retuned_cost != b[i].retuned_cost ||
        a[i].stability_margin != b[i].stability_margin ||
        a[i].schedulable != b[i].schedulable || a[i].stable != b[i].stable) {
      return false;
    }
  }
  return true;
}

int experiment() {
  bench::banner("EXP-N1", "docs/networks.md",
                "Networked-control stability frontier: CAN/TDMA arbitrated "
                "bus under rising background load, delay-aware LQR retune "
                "per cell, monotone degradation, thread-count determinism, "
                "svc codec round-trip fidelity.");
  const sweep::NetworkGrid grid = sweep::network_servo_grid();
  std::vector<double> scenario_cols;
  for (const sweep::NetworkScenario s : grid.scenarios) {
    scenario_cols.push_back(sweep::scenario_code(s));
  }

  par::BatchOptions serial;
  serial.threads = 1;
  const std::vector<sweep::NetworkCell> cells =
      sweep::run_network_sweep(grid, serial);
  std::printf("columns: 0 = can, 1 = tdma\n%s\n",
              sweep::heatmap(cells, grid.bus_loads, scenario_cols, "bus load",
                             "scenario",
                             &sweep::NetworkCell::stability_margin,
                             "delay-aware stability margin")
                  .c_str());
  std::printf("%s\n",
              sweep::heatmap(cells, grid.bus_loads, scenario_cols, "bus load",
                             "scenario",
                             &sweep::NetworkCell::act_latency_mean,
                             "measured mean actuation latency (s)")
                  .c_str());

  // Claim (1): monotone degradation down each scenario column. Slot
  // quantization can hold a TDMA column flat across one load step, so the
  // assertion is non-strict (<= / >= within a 1e-9 tolerance).
  bool monotone = true;
  const std::size_t cols = scenario_cols.size();
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 1; r < grid.bus_loads.size(); ++r) {
      const sweep::NetworkCell& prev = cells[(r - 1) * cols + c];
      const sweep::NetworkCell& cur = cells[r * cols + c];
      if (!prev.schedulable || !cur.schedulable) continue;
      if (cur.act_latency_mean < prev.act_latency_mean - 1e-9 ||
          cur.stability_margin > prev.stability_margin + 1e-9) {
        monotone = false;
        std::printf("** NON-MONOTONE (%s) at load %.3g -> %.3g **\n",
                    sweep::to_string(grid.scenarios[c]), prev.bus_load,
                    cur.bus_load);
      }
    }
  }
  std::printf("latency up / margin down as load rises:  %s\n",
              monotone ? "yes" : "NO");

  // Claim (2): thread-count determinism of the whole grid.
  par::BatchOptions four;
  four.threads = 4;
  const bool deterministic =
      cells_identical(cells, sweep::run_network_sweep(grid, four));
  std::printf("grid bit-identical at 1 and 4 threads:   %s\n",
              deterministic ? "yes" : "NO");

  // Claim (3): svc codec round-trip fidelity per cell.
  bool codec_exact = true;
  for (const sweep::NetworkCell& c : cells) {
    sweep::NetworkCell back;
    if (!svc::decode_cell(svc::encode_cell(c), back) ||
        !cells_identical({c}, {back})) {
      codec_exact = false;
    }
  }
  std::printf("svc codec round-trip bit-exact:          %s\n\n",
              codec_exact ? "yes" : "NO");

  bench::JsonReport report("EXP-N1");
  report.model_ir_hash("servo_loop",
                       ir::hash_hex(translate::loop_ir(grid.loop)));
  report.begin_array("network_frontier");
  for (const sweep::NetworkCell& c : cells) {
    report.begin_object();
    report.field("bus_load", c.bus_load);
    report.field("scenario", std::string(sweep::to_string(
                                 sweep::scenario_of_code(c.scenario))));
    report.field("act_latency_mean", c.act_latency_mean);
    report.field("act_jitter", c.act_jitter);
    report.field("nominal_iae", c.nominal_iae);
    report.field("retuned_iae", c.retuned_iae);
    report.field("stability_margin", c.stability_margin);
    report.field("schedulable", std::string(c.schedulable ? "true" : "false"));
    report.field("stable", std::string(c.stable ? "true" : "false"));
    report.end_object();
  }
  report.end_array();
  report.begin_array("checks");
  report.begin_object();
  report.field("monotone_degradation",
               std::string(monotone ? "true" : "false"));
  report.field("thread_deterministic",
               std::string(deterministic ? "true" : "false"));
  report.field("codec_round_trip", std::string(codec_exact ? "true" : "false"));
  report.end_object();
  report.end_array();
  report.write("BENCH_n1.json");

  return monotone && deterministic && codec_exact ? 0 : 1;
}

void BM_NetworkCell(benchmark::State& state) {
  sweep::NetworkGrid grid = sweep::network_servo_grid(0.01, 0.2);
  grid.bus_loads = {0.4};
  grid.scenarios = {state.range(0) == 0 ? sweep::NetworkScenario::kCan
                                        : sweep::NetworkScenario::kTdma};
  par::BatchOptions serial;
  serial.threads = 1;
  for (auto _ : state) {
    auto cells = sweep::run_network_sweep(grid, serial);
    benchmark::DoNotOptimize(cells);
  }
}
BENCHMARK(BM_NetworkCell)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  if (rc != 0) return rc;
  return bench::run_benchmarks(argc, argv);
}
