#include "aaa/adequation.hpp"

#include <gtest/gtest.h>

namespace ecsim::aaa {
namespace {

AlgorithmGraph chain3(double wcet_sense = 1e-4, double wcet_ctrl = 5e-4,
                      double wcet_act = 1e-4) {
  AlgorithmGraph g("chain", 0.01);
  const OpId s = g.add_simple("sense", OpKind::kSensor, wcet_sense);
  const OpId c = g.add_simple("ctrl", OpKind::kCompute, wcet_ctrl);
  const OpId a = g.add_simple("act", OpKind::kActuator, wcet_act);
  g.add_dependency(s, c, 8.0);
  g.add_dependency(c, a, 8.0);
  return g;
}

TEST(Adequation, SingleProcessorSequentialSchedule) {
  const AlgorithmGraph alg = chain3();
  const auto arch = ArchitectureGraph::bus_architecture(1, 1.0);
  const Schedule sched = adequate(alg, arch);
  sched.validate(alg, arch);
  EXPECT_NEAR(sched.makespan(), 7e-4, 1e-12);
  EXPECT_TRUE(sched.comms().empty());
  EXPECT_EQ(sched.ops_on(0).size(), 3u);
}

TEST(Adequation, ChainStaysOnOneProcessorWhenCommIsExpensive) {
  const AlgorithmGraph alg = chain3();
  // Slow bus: any migration costs more than it saves; a pure chain has no
  // parallelism anyway.
  auto arch = ArchitectureGraph::bus_architecture(2, 1.0, 0.1);
  const Schedule sched = adequate(alg, arch);
  sched.validate(alg, arch);
  EXPECT_TRUE(sched.comms().empty());
  EXPECT_NEAR(sched.makespan(), 7e-4, 1e-12);
}

TEST(Adequation, ParallelBranchesUseBothProcessors) {
  // Diamond: src -> (f, g) -> sink with heavy f, g: two processors halve
  // the middle stage despite cheap comms.
  AlgorithmGraph alg("diamond", 1.0);
  const OpId src = alg.add_simple("src", OpKind::kSensor, 0.01);
  const OpId f = alg.add_simple("f", OpKind::kCompute, 1.0);
  const OpId g = alg.add_simple("g", OpKind::kCompute, 1.0);
  const OpId sink = alg.add_simple("sink", OpKind::kActuator, 0.01);
  alg.add_dependency(src, f, 1.0);
  alg.add_dependency(src, g, 1.0);
  alg.add_dependency(f, sink, 1.0);
  alg.add_dependency(g, sink, 1.0);
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e6, 1e-6);
  const Schedule sched = adequate(alg, arch);
  sched.validate(alg, arch);
  EXPECT_LT(sched.makespan(), 1.5);  // sequential would be ~2.02
  EXPECT_FALSE(sched.comms().empty());
  // f and g on different processors.
  EXPECT_NE(sched.of_op(f).proc, sched.of_op(g).proc);
}

TEST(Adequation, PlacementConstraintRespected) {
  AlgorithmGraph alg = chain3();
  alg.op(alg.find("sense")).bound_processor = "P1";
  alg.op(alg.find("act")).bound_processor = "P0";
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  sched.validate(alg, arch);
  EXPECT_EQ(arch.processor(sched.of_op(alg.find("sense")).proc).name, "P1");
  EXPECT_EQ(arch.processor(sched.of_op(alg.find("act")).proc).name, "P0");
  EXPECT_FALSE(sched.comms().empty());  // data must cross the bus
}

TEST(Adequation, UnsatisfiablePlacementThrows) {
  AlgorithmGraph alg = chain3();
  alg.op(0).bound_processor = "P9";
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5);
  EXPECT_THROW(adequate(alg, arch), std::runtime_error);
}

TEST(Adequation, HeterogeneousTypeCompatibility) {
  AlgorithmGraph alg("hetero", 1.0);
  Operation op;
  op.name = "dsp_only";
  op.kind = OpKind::kCompute;
  op.wcet["dsp"] = 0.1;
  alg.add_operation(std::move(op));
  ArchitectureGraph arch;
  arch.add_processor("P0", "cpu");
  const ProcId dsp = arch.add_processor("D0", "dsp");
  const MediumId bus = arch.add_medium("bus", 100.0);
  arch.attach(0, bus);
  arch.attach(dsp, bus);
  const Schedule sched = adequate(alg, arch);
  EXPECT_EQ(sched.of_op(0).proc, dsp);
}

TEST(Adequation, NoCompatibleProcessorThrows) {
  AlgorithmGraph alg("x", 1.0);
  Operation op;
  op.name = "fpga_only";
  op.wcet["fpga"] = 0.1;
  alg.add_operation(std::move(op));
  const auto arch = ArchitectureGraph::bus_architecture(2, 1.0);
  EXPECT_THROW(adequate(alg, arch), std::runtime_error);
}

TEST(Adequation, CommAwareBeatsCommBlindOnCommHeavyGraph) {
  // Wide fan-out of small ops with large data: the comm-blind metric
  // scatters them; comm-aware keeps them near the source.
  AlgorithmGraph alg("fanout", 10.0);
  const OpId src = alg.add_simple("src", OpKind::kSensor, 0.01);
  for (int i = 0; i < 8; ++i) {
    const OpId f = alg.add_simple("f" + std::to_string(i), OpKind::kCompute,
                                  0.02);
    alg.add_dependency(src, f, 50.0);
  }
  const auto arch = ArchitectureGraph::bus_architecture(4, 100.0, 0.005);
  const Schedule aware = adequate(alg, arch, {.comm_aware = true});
  const Schedule blind = adequate(alg, arch, {.comm_aware = false});
  aware.validate(alg, arch);
  blind.validate(alg, arch);
  EXPECT_LE(aware.makespan(), blind.makespan() + 1e-12);
}

TEST(Adequation, MakespanNeverIncreasesWithIdenticalExtraProcessor) {
  // Adding processors cannot hurt on a comm-free architecture.
  AlgorithmGraph alg("wide", 10.0);
  const OpId src = alg.add_simple("src", OpKind::kSensor, 0.001);
  for (int i = 0; i < 6; ++i) {
    const OpId f =
        alg.add_simple("w" + std::to_string(i), OpKind::kCompute, 0.1);
    alg.add_dependency(src, f, 1.0);
  }
  const auto arch1 = ArchitectureGraph::bus_architecture(1, 1e9);
  const auto arch3 = ArchitectureGraph::bus_architecture(3, 1e9, 0.0);
  const double m1 = adequate(alg, arch1).makespan();
  const double m3 = adequate(alg, arch3).makespan();
  EXPECT_LT(m3, m1);
}

}  // namespace
}  // namespace ecsim::aaa
