#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace ecsim::sim {
namespace {

Trace sample_trace() {
  Trace t;
  t.record_event(0.1, 3, 0, "a");
  t.record_event(0.2, 3, 1, "a");
  t.record_event(0.3, 4, 0, "b");
  t.record_event(0.4, 3, 0, "a");
  t.record_signal(0.0, 7, {1.0, 2.0});
  t.record_signal(0.5, 7, {3.0, 4.0});
  t.record_signal(0.5, 8, {9.0});
  return t;
}

TEST(Trace, ActivationTimesByBlockAndPort) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.activation_times(3).size(), 3u);  // any port
  EXPECT_EQ(t.activation_times(3, 0), (std::vector<Time>{0.1, 0.4}));
  EXPECT_EQ(t.activation_times(3, 1), (std::vector<Time>{0.2}));
  EXPECT_TRUE(t.activation_times(9).empty());
}

TEST(Trace, ActivationTimesByName) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.activation_times_by_name("a", 0), (std::vector<Time>{0.1, 0.4}));
  EXPECT_EQ(t.activation_times_by_name("b").size(), 1u);
  EXPECT_TRUE(t.activation_times_by_name("zzz").empty());
}

TEST(Trace, SeriesSelectsBlockAndComponent) {
  const Trace t = sample_trace();
  const auto s0 = t.series(7, 0);
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_DOUBLE_EQ(s0[1].second, 3.0);
  const auto s1 = t.series(7, 1);
  EXPECT_DOUBLE_EQ(s1[0].second, 2.0);
  // Out-of-range component yields an empty series rather than UB.
  EXPECT_TRUE(t.series(7, 5).empty());
  EXPECT_EQ(t.series(8).size(), 1u);
}

TEST(Trace, SeriesByName) {
  Trace t = sample_trace();
  t.set_block_name(7, "probe");
  t.set_block_name(8, "scalar");
  const auto s = t.series_by_name("probe", 1);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].second, 2.0);
  EXPECT_DOUBLE_EQ(s[1].second, 4.0);
  EXPECT_EQ(t.series_by_name("scalar").size(), 1u);
  EXPECT_TRUE(t.series_by_name("nope").empty());
}

TEST(Trace, BlockNamesInternedNotCopiedPerRecord) {
  const Trace t = sample_trace();
  // Records carry indices only; names resolve through the table.
  EXPECT_EQ(t.block_name(3), "a");
  EXPECT_EQ(t.block_name(4), "b");
  EXPECT_EQ(t.block_name(99), "");

  // First registration wins on the compat path (names are structural).
  Trace u;
  u.record_event(0.1, 3, 0, "first");
  u.record_event(0.2, 3, 0, "second");
  EXPECT_EQ(u.block_name(3), "first");
  EXPECT_EQ(u.activation_times_by_name("first").size(), 2u);
}

TEST(Trace, RegisterBlockNamesTableAffectsEquality) {
  Trace a, b;
  a.record_event(0.1, 0, 0);
  b.record_event(0.1, 0, 0);
  a.register_block_names({"x"});
  b.register_block_names({"x"});
  EXPECT_TRUE(a == b);  // same streams + same table
  b.register_block_names({"y"});
  EXPECT_FALSE(a == b);  // identity oracle sees the renamed table
}

TEST(Trace, ReserveNeverLosesRecords) {
  Trace t = sample_trace();
  t.reserve(1000, 1000);
  EXPECT_EQ(t.events().size(), 4u);
  EXPECT_EQ(t.signals().size(), 3u);
  t.record_event(0.9, 3, 0);
  EXPECT_EQ(t.events().back().time, 0.9);
}

TEST(Trace, ClearEmptiesBothStreams) {
  Trace t = sample_trace();
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_TRUE(t.signals().empty());
  // The name table is structural and survives a per-run clear.
  EXPECT_EQ(t.block_name(3), "a");
}

}  // namespace
}  // namespace ecsim::sim
