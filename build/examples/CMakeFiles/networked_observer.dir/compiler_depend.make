# Empty compiler generated dependencies file for networked_observer.
# This may be replaced when dependencies are built.
