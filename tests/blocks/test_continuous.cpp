#include "blocks/continuous.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::IntegratorKind;
using sim::Model;
using sim::SimOptions;
using sim::Simulator;

SimOptions fine(double t_end) {
  SimOptions o;
  o.end_time = t_end;
  o.integrator.max_step = 1e-3;
  return o;
}

TEST(Integrator, RampFromConstant) {
  Model m;
  auto& c = m.add<Constant>("c", 2.0);
  auto& x = m.add<Integrator>("x", 1.0);
  m.connect(c, 0, x, 0);
  Simulator s(m, fine(3.0));
  s.run();
  EXPECT_NEAR(s.output_value(x, 0), 7.0, 1e-9);
}

TEST(Integrator, VectorState) {
  Model m;
  auto& c = m.add<Constant>("c", std::vector<double>{1.0, -2.0});
  auto& x = m.add<Integrator>("x", std::vector<double>{0.0, 10.0});
  m.connect(c, 0, x, 0);
  Simulator s(m, fine(2.0));
  s.run();
  EXPECT_NEAR(s.output_value(x, 0, 0), 2.0, 1e-9);
  EXPECT_NEAR(s.output_value(x, 0, 1), 6.0, 1e-9);
}

TEST(StateSpaceCont, ShapeValidation) {
  using math::Matrix;
  EXPECT_THROW(StateSpaceCont("p", Matrix(2, 3), Matrix(2, 1), Matrix(1, 2),
                              Matrix(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(StateSpaceCont("p", Matrix(2, 2), Matrix(3, 1), Matrix(1, 2),
                              Matrix(1, 1)),
               std::invalid_argument);
  EXPECT_THROW(StateSpaceCont("p", Matrix(2, 2), Matrix(2, 1), Matrix(1, 2),
                              Matrix(1, 1), std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(StateSpaceCont, FeedthroughDetection) {
  using math::Matrix;
  StateSpaceCont without("a", Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                         Matrix{{0.0}});
  EXPECT_FALSE(without.input_feedthrough(0));
  StateSpaceCont with("b", Matrix{{-1.0}}, Matrix{{1.0}}, Matrix{{1.0}},
                      Matrix{{0.5}});
  EXPECT_TRUE(with.input_feedthrough(0));
}

TEST(StateSpaceCont, SecondOrderStep) {
  // Double integrator with unit input: y = t^2 / 2.
  using math::Matrix;
  Model m;
  auto& u = m.add<Constant>("u", 1.0);
  auto& p = m.add<StateSpaceCont>(
      "p", Matrix{{0.0, 1.0}, {0.0, 0.0}}, Matrix{{0.0}, {1.0}},
      Matrix{{1.0, 0.0}}, Matrix{{0.0}});
  m.connect(u, 0, p, 0);
  Simulator s(m, fine(2.0));
  s.run();
  EXPECT_NEAR(s.output_value(p, 0), 2.0, 1e-9);
}

TEST(StateSpaceCont, InitialConditionRespected) {
  using math::Matrix;
  Model m;
  auto& p = m.add<StateSpaceCont>("p", Matrix{{-1.0}}, Matrix{{0.0}},
                                  Matrix{{1.0}}, Matrix{{0.0}},
                                  std::vector<double>{5.0});
  Simulator s(m, fine(1.0));
  s.run();
  EXPECT_NEAR(s.output_value(p, 0), 5.0 * std::exp(-1.0), 1e-8);
}

TEST(TransferFunction, FirstOrderLagMatchesClosedForm) {
  // 1/(s+1) driven by unit step: y = 1 - e^{-t}.
  Model m;
  auto& u = m.add<Constant>("u", 1.0);
  auto& tf = m.add<TransferFunction>("tf", std::vector<double>{1.0},
                                     std::vector<double>{1.0, 1.0});
  m.connect(u, 0, tf, 0);
  Simulator s(m, fine(1.5));
  s.run();
  EXPECT_NEAR(s.output_value(tf, 0), 1.0 - std::exp(-1.5), 1e-8);
}

TEST(TransferFunction, DcServoShape) {
  // 1000/(s^2+s): order 2, no feedthrough.
  TransferFunction tf("servo", {1000.0}, {1.0, 1.0, 0.0});
  EXPECT_EQ(tf.continuous_state_size(), 2u);
  EXPECT_FALSE(tf.input_feedthrough(0));
}

TEST(TransferFunction, ProperWithFeedthrough) {
  // (s+2)/(s+1) = 1 + 1/(s+1): D = 1.
  TransferFunction tf("pz", {1.0, 2.0}, {1.0, 1.0});
  EXPECT_TRUE(tf.input_feedthrough(0));
  EXPECT_DOUBLE_EQ(tf.d()(0, 0), 1.0);
}

TEST(TransferFunction, Validation) {
  EXPECT_THROW(TransferFunction("x", {1.0, 0.0, 0.0}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(TransferFunction("x", {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(TransferFunction("x", {1.0}, {0.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::blocks
