#include "control/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecsim::control {
namespace {

Series constant_series(double value, double t_end, double dt) {
  Series s;
  for (double t = 0.0; t <= t_end + 1e-12; t += dt) s.emplace_back(t, value);
  return s;
}

TEST(Metrics, IaeOfConstantError) {
  // |ref - y| = 0.5 over 2 seconds -> IAE = 1.0.
  const Series y = constant_series(0.5, 2.0, 0.01);
  EXPECT_NEAR(iae(y, 1.0), 1.0, 1e-9);
}

TEST(Metrics, IseOfConstantError) {
  const Series y = constant_series(0.0, 2.0, 0.01);
  EXPECT_NEAR(ise(y, 2.0), 8.0, 1e-9);
}

TEST(Metrics, ItaeWeightsLateErrors) {
  // e = 1 over [0, 2]: ITAE = \int t dt = 2.
  const Series y = constant_series(0.0, 2.0, 0.001);
  EXPECT_NEAR(itae(y, 1.0), 2.0, 1e-6);
}

TEST(Metrics, EmptyOrSingletonSeriesGiveZero) {
  EXPECT_DOUBLE_EQ(iae({}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(iae({{0.0, 5.0}}, 1.0), 0.0);
}

TEST(Metrics, QuadraticCostCombinesStateAndControl) {
  const Series y = constant_series(0.0, 1.0, 0.01);  // e = 1
  const Series u = constant_series(2.0, 1.0, 0.01);  // u^2 = 4
  EXPECT_NEAR(quadratic_cost(y, u, 1.0, 1.0, 0.5), 1.0 + 2.0, 1e-9);
  EXPECT_THROW(quadratic_cost(y, {}, 1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(StepInfo, FirstOrderResponse) {
  Series y;
  for (double t = 0.0; t <= 6.0; t += 0.001) {
    y.emplace_back(t, 1.0 - std::exp(-t));
  }
  const StepInfo info = step_info(y, 1.0);
  EXPECT_NEAR(info.overshoot_pct, 0.0, 1e-9);
  // 2% settling of 1 - e^{-t}: t = ln(50) ~ 3.912.
  EXPECT_NEAR(info.settling_time, std::log(50.0), 0.01);
  // Rise 10->90%: ln(10) - ln(10/9) ~ 2.197.
  EXPECT_NEAR(info.rise_time, std::log(9.0), 0.01);
  EXPECT_LT(info.steady_state_error, 0.01);
}

TEST(StepInfo, DetectsOvershoot) {
  Series y;
  for (double t = 0.0; t <= 10.0; t += 0.001) {
    // Underdamped second-order-ish response peaking above 1.
    y.emplace_back(t, 1.0 - std::exp(-t) * std::cos(2.0 * t) * 1.0);
  }
  const StepInfo info = step_info(y, 1.0);
  EXPECT_GT(info.overshoot_pct, 5.0);
  EXPECT_GT(info.peak, 1.05);
  EXPECT_GT(info.peak_time, 0.0);
}

TEST(StepInfo, NeverSettledReportsMinusOne) {
  const Series y = constant_series(0.5, 1.0, 0.01);
  const StepInfo info = step_info(y, 1.0);
  EXPECT_DOUBLE_EQ(info.settling_time, -1.0);
  EXPECT_NEAR(info.steady_state_error, 0.5, 1e-12);
}

TEST(Metrics, RmsAndMaxAbs) {
  const Series y{{0.0, 3.0}, {1.0, -4.0}};
  EXPECT_NEAR(rms(y), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(max_abs(y), 4.0);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

}  // namespace
}  // namespace ecsim::control
