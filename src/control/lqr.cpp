#include "control/lqr.hpp"

#include <cmath>
#include <stdexcept>

#include "mathlib/linalg.hpp"
#include "mathlib/riccati.hpp"

namespace ecsim::control {

LqrResult dlqr(const Matrix& a, const Matrix& b, const Matrix& q,
               const Matrix& r) {
  const Matrix p = math::solve_dare(a, b, q, r);
  const Matrix bt = b.transpose();
  // K = (R + B'PB)^-1 B'PA
  const Matrix k = math::solve(r + bt * p * b, bt * p * a);
  return LqrResult{k, p};
}

LqrResult dlqr(const StateSpace& sys, const Matrix& q, const Matrix& r) {
  sys.validate();
  if (!sys.discrete) throw std::invalid_argument("dlqr: need a discrete system");
  return dlqr(sys.a, sys.b, q, r);
}

Matrix closed_loop(const Matrix& a, const Matrix& b, const Matrix& k) {
  return a - b * k;
}

double reference_gain(const StateSpace& sys, const Matrix& k) {
  sys.validate();
  if (!sys.discrete) {
    throw std::invalid_argument("reference_gain: need a discrete system");
  }
  if (sys.num_outputs() != 1 || sys.num_inputs() != 1) {
    throw std::invalid_argument("reference_gain: SISO only");
  }
  // DC gain of the closed loop from the scaled reference to y:
  //   y_ss = C (I - (A - BK))^-1 B * Nbar * r  (D assumed 0 at DC path)
  const std::size_t n = sys.order();
  const Matrix acl = closed_loop(sys.a, sys.b, k);
  const Matrix m = Matrix::identity(n) - acl;
  const Matrix x_ss = math::solve(m, sys.b);  // per unit of (Nbar r)
  double y_ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) y_ss += sys.c(0, i) * x_ss(i, 0);
  y_ss += sys.d(0, 0);
  if (std::abs(y_ss) < 1e-12) {
    throw std::runtime_error("reference_gain: closed-loop DC gain ~ 0");
  }
  return 1.0 / y_ss;
}

}  // namespace ecsim::control
