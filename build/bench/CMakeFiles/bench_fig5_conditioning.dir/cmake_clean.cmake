file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_conditioning.dir/bench_fig5_conditioning.cpp.o"
  "CMakeFiles/bench_fig5_conditioning.dir/bench_fig5_conditioning.cpp.o.d"
  "bench_fig5_conditioning"
  "bench_fig5_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
