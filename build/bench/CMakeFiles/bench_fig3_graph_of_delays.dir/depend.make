# Empty dependencies file for bench_fig3_graph_of_delays.
# This may be replaced when dependencies are built.
