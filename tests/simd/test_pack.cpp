#include "simd/pack.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "mathlib/rng.hpp"

namespace ecsim::simd {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) {
    // Mixed magnitudes, signs, and a few exact zeros: the bit-equality
    // claims must hold across the whole double range the integrator sees.
    const double m = rng.uniform(-1.0, 1.0);
    const int e = static_cast<int>(rng.uniform_int(-40, 40));
    x = rng.bernoulli(0.05) ? 0.0 : std::ldexp(m, e);
  }
  return v;
}

TEST(PackTest, IsaNameMatchesConfiguration) {
#if defined(ECSIM_SIMD_ISA_AVX2)
  EXPECT_STREQ(isa_name(), "avx2");
#elif defined(ECSIM_SIMD_ISA_SSE2)
  EXPECT_STREQ(isa_name(), "sse2");
#else
  EXPECT_STREQ(isa_name(), "scalar");
#endif
  EXPECT_GE(preferred_batch_width(), std::size_t{1});
  EXPECT_LE(preferred_batch_width(), std::size_t{64});
}

TEST(PackTest, PreferredBatchWidthIsCappedAtEight) {
  // "auto" must track the vector unit (two registers in flight) but never
  // follow a wider ISA past W=8: BENCH_p8 measured the lockstep engine's
  // throughput collapsing at W >= 16 once the per-lane CompiledModel arenas
  // outgrow L2. A future AVX-512 port (kNativeWidth == 8) must keep auto at
  // 8, not 16 — this pin is the regression tripwire.
  EXPECT_GE(preferred_batch_width(), kNativeWidth);
  EXPECT_LE(preferred_batch_width(), std::size_t{8});
  EXPECT_EQ(preferred_batch_width(),
            kNativeWidth * 2 < std::size_t{8} ? kNativeWidth * 2
                                              : std::size_t{8});
}

TEST(PackTest, NativePackOpsAreElementwiseBitIdentical) {
  constexpr std::size_t W = kNativeWidth;
  using P = pack<W>;
  const std::vector<double> a = random_doubles(W, 11);
  const std::vector<double> b = random_doubles(W, 22);
  double out[W];

  (P::load(a.data()) + P::load(b.data())).store(out);
  for (std::size_t i = 0; i < W; ++i) EXPECT_TRUE(same_bits(out[i], a[i] + b[i]));
  (P::load(a.data()) - P::load(b.data())).store(out);
  for (std::size_t i = 0; i < W; ++i) EXPECT_TRUE(same_bits(out[i], a[i] - b[i]));
  (P::load(a.data()) * P::load(b.data())).store(out);
  for (std::size_t i = 0; i < W; ++i) EXPECT_TRUE(same_bits(out[i], a[i] * b[i]));
  (P::load(a.data()) / P::load(b.data())).store(out);
  for (std::size_t i = 0; i < W; ++i) EXPECT_TRUE(same_bits(out[i], a[i] / b[i]));
  P::broadcast(3.25).store(out);
  for (std::size_t i = 0; i < W; ++i) EXPECT_TRUE(same_bits(out[i], 3.25));
}

TEST(PackTest, WidePortablePackMatchesScalar) {
  using P = pack<8>;
  const std::vector<double> a = random_doubles(8, 7);
  const std::vector<double> b = random_doubles(8, 8);
  double out[8];
  ((P::load(a.data()) * P::load(b.data())) + P::broadcast(0.5)).store(out);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(same_bits(out[i], a[i] * b[i] + 0.5));
  }
}

TEST(PackTest, AxpyStageMatchesRk4StageLoopBitwise) {
  // Odd lengths exercise the scalar tail after the packed body.
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}, std::size_t{16}, std::size_t{33}}) {
    const std::vector<double> x = random_doubles(n, 100 + n);
    const std::vector<double> k = random_doubles(n, 200 + n);
    const double h = 0.00125;
    const double a = 0.5 * h;
    std::vector<double> got(n), want(n);
    axpy_stage(got.data(), x.data(), a, k.data(), n);
    // Reference: the exact loop body of integrator.cpp's rk4_step.
    for (std::size_t i = 0; i < n; ++i) want[i] = x[i] + 0.5 * h * k[i];
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(got[i], want[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(PackTest, Rk4CombineMatchesScalarLoopBitwise) {
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                        std::size_t{13}, std::size_t{64}}) {
    std::vector<double> x = random_doubles(n, 1 + n);
    std::vector<double> want = x;
    const std::vector<double> k1 = random_doubles(n, 2 + n);
    const std::vector<double> k2 = random_doubles(n, 3 + n);
    const std::vector<double> k3 = random_doubles(n, 4 + n);
    const std::vector<double> k4 = random_doubles(n, 5 + n);
    const double h = 7.8125e-3;
    rk4_combine(x.data(), h / 6.0, k1.data(), k2.data(), k3.data(), k4.data(),
                n);
    for (std::size_t i = 0; i < n; ++i) {
      want[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_bits(x[i], want[i])) << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace ecsim::simd
