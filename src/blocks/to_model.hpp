// IR -> diagram regeneration: the inverse of sim::build_ir for every
// describable block kind in this library (DESIGN.md §3.6). to_model() is
// what makes the IR a real interchange format rather than a dump: a model
// serialized, shipped and parsed elsewhere reconstructs into blocks whose
// behaviour — including RNG call sequences — is bit-identical to the
// original. The native code generator leans on the same attribute decoders
// (duration_from_attrs, comm_gate_from_attrs) so both backends read one
// encoding.
#pragma once

#include <memory>

#include "blocks/duration_spec.hpp"
#include "fault/comm_gate.hpp"
#include "ir/ir.hpp"
#include "sim/model.hpp"

namespace ecsim::blocks {

/// Reconstructs the block diagram from a fully-described IR. Throws
/// std::invalid_argument naming the offending block when a block is opaque,
/// its kind is unknown, or a required attribute is missing/mistyped.
/// The caller re-finalizes by compiling (sim::CompiledModel re-derives the
/// layout from the rebuilt model and must agree with irm.layout — guarded
/// by the round-trip property tests).
sim::Model to_model(const ir::Model& irm);

/// Constructs one block from its IR description (the factory behind
/// to_model; exposed for tooling that builds models incrementally).
std::unique_ptr<sim::Block> make_block(const ir::BlockIr& b);

/// Decodes the "dist"-tagged duration attributes written by
/// EventDelay::describe(). Throws std::invalid_argument on a kCustom tag
/// (opaque by definition) or missing attributes.
DurationSpec duration_from_attrs(const ir::BlockIr& b);

/// Decodes the gate attributes written by EventFault::describe().
fault::CommGate comm_gate_from_attrs(const ir::BlockIr& b);

}  // namespace ecsim::blocks
