#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::sim {

// ---- Context methods (declared in block.hpp) --------------------------------

std::span<const double> Context::input(std::size_t port) const {
  return sim_->ctx_input(block_, port);
}

std::span<double> Context::output(std::size_t port) {
  return sim_->ctx_output(block_, port);
}

std::span<const double> Context::state() const {
  return sim_->ctx_state(block_);
}

std::span<double> Context::state_mut() { return sim_->ctx_state_mut(block_); }

void Context::emit(std::size_t event_out, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::emit: events may only be emitted from initialize()/on_event()");
  }
  if (delay < 0.0) throw std::invalid_argument("Context::emit: negative delay");
  sim_->ctx_emit(block_, event_out, time_ + delay);
}

void Context::schedule_self(std::size_t event_in, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::schedule_self: only from initialize()/on_event()");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("Context::schedule_self: negative delay");
  }
  sim_->ctx_schedule_self(block_, event_in, time_ + delay);
}

math::Rng& Context::rng() { return sim_->rng_; }

Trace& Context::trace() { return sim_->trace_; }

// ---- Simulator ---------------------------------------------------------------

Simulator::Simulator(Model& model, SimOptions opts)
    : model_(model), opts_(opts), rng_(opts.seed) {
  compile();
}

void Simulator::compile() {
  const std::size_t n = model_.num_blocks();
  input_sources_.assign(n, {});
  outputs_.assign(n, {});
  event_sinks_.assign(n, {});
  state_offset_.assign(n, 0);

  std::size_t max_width = 1;
  for (std::size_t b = 0; b < n; ++b) {
    const Block& blk = model_.block(b);
    input_sources_[b].resize(blk.num_inputs());
    for (std::size_t p = 0; p < blk.num_inputs(); ++p) {
      input_sources_[b][p] =
          InputSource{kUnconnected, 0, blk.input_width(p)};
      max_width = std::max(max_width, blk.input_width(p));
    }
    outputs_[b].resize(blk.num_outputs());
    for (std::size_t p = 0; p < blk.num_outputs(); ++p) {
      outputs_[b][p].assign(blk.output_width(p), 0.0);
    }
    event_sinks_[b].resize(blk.num_event_outputs());
    state_offset_[b] = total_state_;
    total_state_ += blk.continuous_state_size();
  }
  zeros_.assign(max_width, 0.0);

  for (const DataWire& w : model_.data_wires()) {
    input_sources_[w.to.block][w.to.port] = InputSource{
        w.from.block, w.from.port, model_.block(w.to.block).input_width(w.to.port)};
  }
  for (const EventWire& w : model_.event_wires()) {
    event_sinks_[w.from.block][w.from.port].push_back(w.to);
  }

  // Feedthrough topological order (Kahn). Edge producer -> consumer when the
  // consumer's input has direct feedthrough.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indeg(n, 0);
  for (const DataWire& w : model_.data_wires()) {
    if (model_.block(w.to.block).input_feedthrough(w.to.port)) {
      succ[w.from.block].push_back(w.to.block);
      ++indeg[w.to.block];
    }
  }
  eval_order_.clear();
  eval_order_.reserve(n);
  std::vector<std::size_t> ready;
  for (std::size_t b = 0; b < n; ++b) {
    if (indeg[b] == 0) ready.push_back(b);
  }
  while (!ready.empty()) {
    const std::size_t b = ready.back();
    ready.pop_back();
    eval_order_.push_back(b);
    for (std::size_t s : succ[b]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (eval_order_.size() != n) {
    std::string loop_members;
    for (std::size_t b = 0; b < n; ++b) {
      if (indeg[b] != 0) loop_members += " '" + model_.block(b).name() + "'";
    }
    throw std::runtime_error("Simulator: algebraic loop involving:" +
                             loop_members);
  }
}

std::span<const double> Simulator::ctx_input(std::size_t block,
                                             std::size_t port) const {
  const InputSource& src = input_sources_.at(block).at(port);
  if (src.block == kUnconnected) {
    return std::span<const double>(zeros_.data(), src.width);
  }
  const auto& buf = outputs_[src.block][src.port];
  return std::span<const double>(buf.data(), buf.size());
}

std::span<double> Simulator::ctx_output(std::size_t block, std::size_t port) {
  auto& buf = outputs_.at(block).at(port);
  return std::span<double>(buf.data(), buf.size());
}

std::span<const double> Simulator::ctx_state(std::size_t block) const {
  const Block& blk = model_.block(block);
  return std::span<const double>(active_x_ + state_offset_[block],
                                 blk.continuous_state_size());
}

std::span<double> Simulator::ctx_state_mut(std::size_t block) {
  if (in_integration_) {
    throw std::logic_error(
        "Context::state_mut: continuous state is read-only during integration");
  }
  const Block& blk = model_.block(block);
  return std::span<double>(x_.data() + state_offset_[block],
                           blk.continuous_state_size());
}

void Simulator::ctx_emit(std::size_t block, std::size_t event_out, Time at) {
  for (const PortRef& sink : event_sinks_.at(block).at(event_out)) {
    queue_.push(at, sink.block, sink.port);
  }
}

void Simulator::ctx_schedule_self(std::size_t block, std::size_t event_in,
                                  Time at) {
  if (event_in >= model_.block(block).num_event_inputs()) {
    throw std::out_of_range("schedule_self: event input out of range");
  }
  queue_.push(at, block, event_in);
}

void Simulator::refresh_outputs(Time t) {
  for (std::size_t b : eval_order_) {
    Context ctx(this, b, t, /*in_event=*/false);
    model_.block(b).compute_outputs(ctx);
  }
}

void Simulator::dispatch(const ScheduledEvent& e) {
  Block& blk = model_.block(e.block);
  trace_.record_event(e.time, e.block, e.event_in, blk.name());
  Context ctx(this, e.block, e.time, /*in_event=*/true);
  blk.on_event(ctx, e.event_in);
}

void Simulator::evaluate_derivatives(Time t, const std::vector<double>& x,
                                     std::vector<double>& dx) {
  active_x_ = x.data();
  refresh_outputs(t);
  std::fill(dx.begin(), dx.end(), 0.0);
  for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
    Block& blk = model_.block(b);
    const std::size_t nx = blk.continuous_state_size();
    if (nx == 0) continue;
    Context ctx(this, b, t, /*in_event=*/false);
    blk.derivatives(ctx, std::span<double>(dx.data() + state_offset_[b], nx));
  }
}

Trace& Simulator::run() {
  // Reset run state (including the RNG: same seed => same realization).
  rng_ = math::Rng(opts_.seed);
  time_ = 0.0;
  x_.assign(total_state_, 0.0);
  active_x_ = x_.data();
  queue_.clear();
  trace_.clear();
  events_dispatched_ = 0;
  for (auto& per_block : outputs_) {
    for (auto& buf : per_block) std::fill(buf.begin(), buf.end(), 0.0);
  }

  // Initialize every block (may write state/outputs and schedule events).
  for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
    Context ctx(this, b, 0.0, /*in_event=*/true);
    model_.block(b).initialize(ctx);
  }
  refresh_outputs(0.0);

  const Time t_end = opts_.end_time;
  while (true) {
    Time t_next = t_end;
    bool have_event = false;
    if (!queue_.empty() && queue_.next_time() <= t_end) {
      t_next = queue_.next_time();
      have_event = true;
    }
    if (t_next > time_) {
      if (total_state_ > 0) {
        in_integration_ = true;
        integrate(
            opts_.integrator,
            [this](Time t, const std::vector<double>& x,
                   std::vector<double>& dx) { evaluate_derivatives(t, x, dx); },
            time_, t_next, x_);
        in_integration_ = false;
        active_x_ = x_.data();
      }
      time_ = t_next;
      refresh_outputs(time_);
    }
    if (!have_event) break;
    // Dispatch exactly one event, then re-examine the queue: zero-delay
    // emissions land behind already-pending simultaneous events (FIFO seq).
    const ScheduledEvent e = queue_.pop();
    dispatch(e);
    refresh_outputs(time_);
    if (++events_dispatched_ > opts_.max_events) {
      throw std::runtime_error("Simulator: max_events exceeded (runaway loop?)");
    }
  }
  return trace_;
}

double Simulator::output_value(const Block& b, std::size_t port,
                               std::size_t lane) const {
  const std::size_t idx = model_.index_of(b);
  return outputs_.at(idx).at(port).at(lane);
}

}  // namespace ecsim::sim
