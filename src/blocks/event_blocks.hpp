// Event-processing blocks used by the graph of delays (paper §3.2):
//  - EventDelay models the execution duration of one SynDEx operation
//    (sequencing, §3.2.1): the output event fires L time units after the
//    activation, where L may be constant (WCET mode) or drawn from an
//    execution-time distribution (jitter studies);
//  - EventSelect + a ConditionMapping function model conditioning (§3.2.2);
//  - EventMerge fans several event streams into one.
//
// PR 6: the common duration distributions and the fault gates are now data
// (blocks::DurationSpec, fault::CommGate) instead of opaque closures, so
// these blocks describe() themselves into the IR and the native backend can
// regenerate them. The closure constructors remain as escape hatches; blocks
// built through them stay opaque and force the interpreter.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "blocks/duration_spec.hpp"
#include "fault/comm_gate.hpp"
#include "mathlib/rng.hpp"
#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;
using sim::Time;

/// Delays each incoming event by a (possibly random) execution duration.
/// Non-reentrant like a processor operation: if an event arrives while a
/// previous one is still "executing", the new execution starts when the
/// previous finishes (busy queueing), preserving operation order.
class EventDelay : public Block {
 public:
  EventDelay(std::string name, Time duration);
  EventDelay(std::string name, DurationSpec spec);
  /// Opaque-sampler escape hatch (wraps the sampler in a kCustom spec).
  EventDelay(std::string name, DurationSampler sampler);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // A WCET-mode (constant-duration) delay never touches the rng: its busy
  // window is a deterministic function of the activation history, so lanes
  // in lockstep share one execution. Every sampled spec stays varying.
  EventUniformity event_uniformity() const override {
    return spec_.kind == DurationSpec::Kind::kConstant
               ? EventUniformity::kLockstep
               : EventUniformity::kVarying;
  }

  const DurationSpec& spec() const { return spec_; }
  std::size_t event_in() const { return 0; }
  std::size_t event_out() const { return 0; }
  /// Number of activations that found the block busy (diagnostic).
  std::size_t busy_hits() const { return busy_hits_; }

 private:
  DurationSpec spec_;
  Time busy_until_ = 0.0;
  std::size_t busy_hits_ = 0;
};

/// Maps the current value of the condition input to the index of the event
/// output channel to forward to (paper's "Condition Mapping" function).
using ConditionMapping = std::function<std::size_t(std::span<const double>)>;

/// Routes each incoming event to one of `n_channels` event outputs according
/// to the condition mapping applied to data input 0. Always opaque in the
/// IR: the mapping is an arbitrary user function.
class EventSelect : public Block {
 public:
  EventSelect(std::string name, std::size_t n_channels, std::size_t cond_width,
              ConditionMapping mapping);

  /// Two-way convenience: channel 1 if input > threshold else channel 0.
  static std::unique_ptr<EventSelect> make_threshold(std::string name,
                                                     double threshold);

  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t event_in() const { return 0; }

 private:
  std::size_t n_channels_;
  ConditionMapping mapping_;
};

/// Delays each incoming event to the next boundary of a fixed time grid
/// (t = k * slot for integer k): models TDMA bus arbitration in the graph
/// of delays. An event exactly on a boundary passes through unchanged.
/// With `slots` > 1 the grid is this message's *owner slot* of a FlexRay
/// style round: t = k * slots * slot + owner * slot.
class TdmaGate : public Block {
 public:
  TdmaGate(std::string name, Time slot, std::size_t slots = 1,
           std::size_t owner = 0);

  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // Stateless rounding of the activation time to the slot grid.
  EventUniformity event_uniformity() const override {
    return EventUniformity::kPure;
  }

  std::size_t event_in() const { return 0; }
  std::size_t event_out() const { return 0; }

 private:
  Time slot_;
  std::size_t slots_ = 1;  // owner slots per round (1 = any boundary)
  std::size_t owner_ = 0;  // this message's slot within the round
};

/// N event inputs, one event output: forwards every incoming event.
class EventMerge : public Block {
 public:
  EventMerge(std::string name, std::size_t n_inputs);

  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // Stateless zero-delay forwarding.
  EventUniformity event_uniformity() const override {
    return EventUniformity::kPure;
  }

  std::size_t event_out() const { return 0; }
};

/// What an EventFault does to one activation: swallow it, hold it back for
/// `defer` time units, or (both fields neutral) forward it unchanged.
struct FaultAction {
  bool drop = false;
  Time defer = 0.0;
};

/// Decides the fault action for activation number `k` (0-based count since
/// initialize) arriving at sim time `now`. Pure functions of (k, now) keep
/// the run deterministic; fault::ArmedFaultPlan provides exactly that.
using FaultDecider = std::function<FaultAction(std::size_t k, Time now)>;

/// Fault-injection gate for the graph of delays (DESIGN.md §3.5): applies a
/// FaultDecider to every incoming event. Dropped events model message loss —
/// the downstream Sample/Hold simply never activates that iteration and
/// holds its last sample (realistic stale-data degradation). Deferred events
/// model node outages and delivery delays.
class EventFault : public Block {
 public:
  /// Opaque decider (arbitrary user logic; block stays opaque in the IR).
  EventFault(std::string name, FaultDecider decider);
  /// Describable gate: decisions replay fault::comm_gate_decide(gate, k),
  /// which matches ArmedFaultPlan::comm_effect bit-exactly.
  EventFault(std::string name, fault::CommGate gate);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // Gate-backed decisions replay comm_gate_decide(gate, k): deterministic
  // in the activation count. Opaque deciders are arbitrary closures.
  EventUniformity event_uniformity() const override {
    return gate_ != nullptr ? EventUniformity::kLockstep
                            : EventUniformity::kVarying;
  }

  std::size_t event_in() const { return 0; }
  std::size_t event_out() const { return 0; }
  /// Activations swallowed / deferred so far (reset per run).
  std::size_t drops() const { return drops_; }
  std::size_t defers() const { return defers_; }

 private:
  FaultDecider decider_;
  std::shared_ptr<const fault::CommGate> gate_;  // set iff describable
  std::size_t count_ = 0;
  std::size_t drops_ = 0;
  std::size_t defers_ = 0;
};

/// Forwards every n-th incoming event (those with index % n == phase) —
/// the rate decimator of multirate diagrams.
class EventDivider : public Block {
 public:
  EventDivider(std::string name, std::size_t divisor, std::size_t phase = 0);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // Deterministic decimation by activation count.
  EventUniformity event_uniformity() const override {
    return EventUniformity::kLockstep;
  }

  std::size_t event_in() const { return 0; }
  std::size_t event_out() const { return 0; }

 private:
  std::size_t divisor_;
  std::size_t phase_;
  std::size_t count_ = 0;
};

}  // namespace ecsim::blocks
