// Simulation trace: time-stamped records of event dispatches and probed
// signals. The latency analysis module (eqs. 1-2 of the paper) and all
// control-performance metrics are computed from these records.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ecsim::sim {

using Time = double;

/// One block activation (an event consumed on an event input port).
struct EventRecord {
  Time time = 0.0;
  std::size_t block = 0;      // block index in the model
  std::size_t event_in = 0;   // which event input fired
  std::string block_name;     // convenience copy for reporting

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

/// One probed signal sample.
struct SignalRecord {
  Time time = 0.0;
  std::size_t block = 0;  // index of the probing block
  std::vector<double> values;

  friend bool operator==(const SignalRecord&, const SignalRecord&) = default;
};

/// Append-only trace populated by the simulator during a run.
class Trace {
 public:
  void record_event(Time t, std::size_t block, std::size_t event_in,
                    const std::string& name);
  void record_signal(Time t, std::size_t block, std::vector<double> values);

  const std::vector<EventRecord>& events() const { return events_; }
  const std::vector<SignalRecord>& signals() const { return signals_; }

  /// Activation times of a given block (optionally restricted to one event
  /// input port; pass npos for any port).
  std::vector<Time> activation_times(
      std::size_t block,
      std::size_t event_in = static_cast<std::size_t>(-1)) const;

  /// Same, addressed by block name.
  std::vector<Time> activation_times_by_name(
      const std::string& name,
      std::size_t event_in = static_cast<std::size_t>(-1)) const;

  /// Time series (t, values[component]) of a probe block's records.
  std::vector<std::pair<Time, double>> series(std::size_t block,
                                              std::size_t component = 0) const;

  void clear();

  /// Exact (bitwise on times/values) equality — the A/B oracle for the
  /// incremental-vs-full-refresh equivalence property.
  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  std::vector<EventRecord> events_;
  std::vector<SignalRecord> signals_;
};

}  // namespace ecsim::sim
