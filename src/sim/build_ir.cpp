#include "sim/build_ir.hpp"

#include <utility>

namespace ecsim::sim {

ir::Model build_ir(const Model& model, std::string name) {
  ir::Model m;
  m.name = std::move(name);
  m.blocks.reserve(model.num_blocks());
  for (std::size_t bi = 0; bi < model.num_blocks(); ++bi) {
    const Block& blk = model.block(bi);
    ir::BlockIr b;
    blk.describe(b);  // kind / attrs / opaque only
    // Structural contract from the base-class API — authoritative even if a
    // describe() override misbehaves.
    b.name = blk.name();
    b.in_widths.resize(blk.num_inputs());
    b.feedthrough.resize(blk.num_inputs());
    for (std::size_t p = 0; p < blk.num_inputs(); ++p) {
      b.in_widths[p] = blk.input_width(p);
      b.feedthrough[p] = blk.input_feedthrough(p);
    }
    b.out_widths.resize(blk.num_outputs());
    for (std::size_t p = 0; p < blk.num_outputs(); ++p) {
      b.out_widths[p] = blk.output_width(p);
    }
    b.n_event_in = blk.num_event_inputs();
    b.n_event_out = blk.num_event_outputs();
    b.state_size = blk.continuous_state_size();
    b.time_dependent = blk.output_depends_on_time();
    m.blocks.push_back(std::move(b));
  }
  m.data_wires.reserve(model.data_wires().size());
  for (const DataWire& w : model.data_wires()) {
    m.data_wires.push_back(ir::WireIr{{w.from.block, w.from.port},
                                      {w.to.block, w.to.port}});
  }
  m.event_wires.reserve(model.event_wires().size());
  for (const EventWire& w : model.event_wires()) {
    m.event_wires.push_back(ir::WireIr{{w.from.block, w.from.port},
                                       {w.to.block, w.to.port}});
  }
  ir::finalize(m);
  return m;
}

}  // namespace ecsim::sim
