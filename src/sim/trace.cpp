#include "sim/trace.hpp"

namespace ecsim::sim {

void Trace::record_event(Time t, std::size_t block, std::size_t event_in) {
  events_.push_back(EventRecord{t, block, event_in});
}

void Trace::record_event(Time t, std::size_t block, std::size_t event_in,
                         const std::string& name) {
  if (block >= names_.size()) names_.resize(block + 1);
  if (names_[block].empty()) names_[block] = name;
  events_.push_back(EventRecord{t, block, event_in});
}

void Trace::record_signal(Time t, std::size_t block,
                          std::vector<double> values) {
  signals_.push_back(SignalRecord{t, block, std::move(values)});
}

void Trace::register_block_names(std::vector<std::string> names) {
  names_ = std::move(names);
}

void Trace::set_block_name(std::size_t block, std::string_view name) {
  if (block >= names_.size()) names_.resize(block + 1);
  names_[block] = name;
}

std::string_view Trace::block_name(std::size_t block) const {
  return block < names_.size() ? std::string_view(names_[block])
                               : std::string_view();
}

void Trace::reserve(std::size_t events, std::size_t signals) {
  events_.reserve(events);
  signals_.reserve(signals);
}

std::vector<Time> Trace::activation_times(std::size_t block,
                                          std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (e.block == block &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<Time> Trace::activation_times_by_name(const std::string& name,
                                                  std::size_t event_in) const {
  std::vector<Time> out;
  for (const auto& e : events_) {
    if (block_name(e.block) == name &&
        (event_in == static_cast<std::size_t>(-1) || e.event_in == event_in)) {
      out.push_back(e.time);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series(std::size_t block,
                                                   std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (s.block == block && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

std::vector<std::pair<Time, double>> Trace::series_by_name(
    const std::string& name, std::size_t component) const {
  std::vector<std::pair<Time, double>> out;
  for (const auto& s : signals_) {
    if (block_name(s.block) == name && component < s.values.size()) {
      out.emplace_back(s.time, s.values[component]);
    }
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  signals_.clear();
}

}  // namespace ecsim::sim
