#include "exec/executive_vm.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"

namespace ecsim::exec {
namespace {

struct DistributedChain {
  AlgorithmGraph alg{"chain", 0.01};
  ArchitectureGraph arch{
      aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-5)};
  Schedule sched{0, 0};
  GeneratedCode code;

  DistributedChain() {
    const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
    const aaa::OpId c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
    const aaa::OpId a = alg.add_simple("act", aaa::OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
    sched = aaa::adequate(alg, arch);
    code = aaa::generate_executives(alg, arch, sched);
  }
};

TEST(ExecutiveVm, SingleIterationMatchesScheduleUnderWcet) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 1;
  opts.period = f.alg.period();
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  ASSERT_FALSE(vm.deadlock) << vm.deadlock_info;
  ASSERT_EQ(vm.ops.size(), 3u);
  for (const OpInstance& oi : vm.ops) {
    const aaa::ScheduledOp& so = f.sched.of_op(oi.op);
    EXPECT_NEAR(oi.start, so.start, 1e-12) << f.alg.op(oi.op).name;
    EXPECT_NEAR(oi.end, so.end, 1e-12) << f.alg.op(oi.op).name;
  }
}

TEST(ExecutiveVm, PeriodicIterationsShiftByPeriod) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 5;
  opts.period = f.alg.period();
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  ASSERT_FALSE(vm.deadlock);
  const auto ends = vm.completions(f.alg.find("act"));
  ASSERT_EQ(ends.size(), 5u);
  const aaa::Time first = f.sched.of_op(f.alg.find("act")).end;
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(ends[k], first + 0.01 * static_cast<double>(k), 1e-12);
  }
}

TEST(ExecutiveVm, ShorterExecutionTimesNeverLater) {
  DistributedChain f;
  VmOptions wcet_opts;
  wcet_opts.iterations = 10;
  wcet_opts.period = f.alg.period();
  const VmResult wcet = run_executives(f.alg, f.arch, f.sched, f.code, wcet_opts);
  VmOptions fast_opts = wcet_opts;
  fast_opts.exec_time = uniform_fraction_exec_time(0.3);
  fast_opts.seed = 42;
  const VmResult fast = run_executives(f.alg, f.arch, f.sched, f.code, fast_opts);
  ASSERT_FALSE(fast.deadlock);
  const auto w = wcet.completions(f.alg.find("act"));
  const auto q = fast.completions(f.alg.find("act"));
  ASSERT_EQ(w.size(), q.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    EXPECT_LE(q[k], w[k] + 1e-12);  // WCET prediction is an upper bound
  }
}

TEST(ExecutiveVm, SensorWaitsForPeriodRelease) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 3;
  opts.period = 0.01;
  opts.exec_time = uniform_fraction_exec_time(0.1);  // lots of slack
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  const auto starts = vm.starts(f.alg.find("sense"));
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_NEAR(starts[0], 0.00, 1e-12);
  EXPECT_NEAR(starts[1], 0.01, 1e-12);
  EXPECT_NEAR(starts[2], 0.02, 1e-12);
}

TEST(ExecutiveVm, FreeRunningWithoutPeriodPipelines) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 3;
  opts.period = 0.0;  // no release gating
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  ASSERT_FALSE(vm.deadlock);
  const auto ends = vm.completions(f.alg.find("act"));
  // Iterations back-to-back: total < 3 periods of the gated case.
  EXPECT_LT(ends.back(), 0.01);
}

TEST(ExecutiveVm, ConditionalBranchesChangeDuration) {
  AlgorithmGraph alg("cond", 0.01);
  aaa::Operation s;
  s.name = "sense";
  s.kind = aaa::OpKind::kSensor;
  s.wcet["cpu"] = 1e-4;
  const aaa::OpId sid = alg.add_operation(std::move(s));
  aaa::Operation mode;
  mode.name = "mode";
  mode.kind = aaa::OpKind::kCompute;
  mode.branches = {aaa::Branch{"fast", {{"cpu", 1e-4}}},
                   aaa::Branch{"slow", {{"cpu", 4e-3}}}};
  const aaa::OpId mid = alg.add_operation(std::move(mode));
  alg.add_dependency(sid, mid, 1.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(1, 1.0);
  const Schedule sched = aaa::adequate(alg, arch);
  const GeneratedCode code = aaa::generate_executives(alg, arch, sched);

  VmOptions opts;
  opts.iterations = 200;
  opts.period = 0.01;
  opts.branch_chooser = uniform_branch_chooser();
  opts.seed = 3;
  const VmResult vm = run_executives(alg, arch, sched, code, opts);
  ASSERT_FALSE(vm.deadlock);
  // Some iterations fast, some slow: completion latitude varies.
  double min_d = 1e9, max_d = -1e9;
  for (const OpInstance& oi : vm.ops) {
    if (oi.op != mid) continue;
    min_d = std::min(min_d, oi.end - oi.start);
    max_d = std::max(max_d, oi.end - oi.start);
  }
  EXPECT_NEAR(min_d, 1e-4, 1e-12);
  EXPECT_NEAR(max_d, 4e-3, 1e-12);
}

TEST(ExecutiveVm, CompletionsAndStartsFilterByOp) {
  DistributedChain f;
  VmOptions opts;
  opts.iterations = 2;
  opts.period = 0.01;
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, f.code, opts);
  EXPECT_EQ(vm.completions(f.alg.find("ctrl")).size(), 2u);
  EXPECT_EQ(vm.starts(f.alg.find("sense")).size(), 2u);
  EXPECT_TRUE(vm.completions(99).empty());
}

TEST(ExecutiveVm, DetectsDeadlockInCorruptedCode) {
  DistributedChain f;
  GeneratedCode bad = f.code;
  // Remove the send from P0's program: P1 waits forever for y.
  for (auto& prog : bad.programs) {
    std::erase_if(prog.instrs, [](const aaa::Instr& ins) {
      return ins.kind == aaa::InstrKind::kSend;
    });
  }
  VmOptions opts;
  opts.iterations = 1;
  opts.period = 0.01;
  const VmResult vm = run_executives(f.alg, f.arch, f.sched, bad, opts);
  EXPECT_TRUE(vm.deadlock);
  EXPECT_FALSE(vm.deadlock_info.empty());
}

}  // namespace
}  // namespace ecsim::exec
