// The contract between the host process and a generated model .so. Both
// sides are compiled from this same header, by the same compiler, with the
// same flags (the build bakes its own toolchain into the backend — see
// src/CMakeLists.txt), so passing sim::Trace across the boundary is layout-
// safe. The ABI is versioned anyway: the host refuses a module whose
// ECSIM_NATIVE_ABI doesn't match, and the hash-keyed .so cache keys on the
// ABI + flags, so stale artifacts are never loaded.
//
// ABI v2 adds NativeObsTable: a C callback table through which the generated
// module emits telemetry (tracer spans/instants, counters, gauges,
// histograms) into the host's obs::Tracer / obs::MetricsRegistry without the
// module linking against the obs library. A null table pointer is the
// zero-cost path; the bridge lives in backend/obs_abi.{hpp,cpp}.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecsim::backend {

inline constexpr int kNativeAbiVersion = 2;

/// Sentinel for "span/instant has no argument" (mirror of obs::kNoArg).
inline constexpr std::uint32_t kNativeObsNoArg = 0xffffffffu;

/// C callback table bridging generated-module telemetry into the host's
/// obs::Tracer / obs::MetricsRegistry (built by backend::make_obs_table).
/// All function pointers are non-null when the corresponding ctx is non-null;
/// a wholly null member (tracer == nullptr, metrics == nullptr) means that
/// side of observability is absent and the module must not call through it.
/// Handles returned by the resolvers are stable for the process lifetime
/// (MetricsRegistry owns node-based instruments).
struct NativeObsTable {
  // --- Tracer side ---------------------------------------------------------
  void* tracer = nullptr;  ///< opaque obs::Tracer*; null → no tracer attached
  /// Nonzero when the tracer is compiled in, attached and enabled; the module
  /// latches this once per run (mirror of obs::active).
  int (*tracer_enabled)(void* tracer) = nullptr;
  /// Intern a NUL-terminated name, returning its stable id.
  std::uint32_t (*intern)(void* tracer, const char* name) = nullptr;
  /// Register a track. `domain` is obs::Domain's numeric value
  /// (0 = wall-clock, 1 = sim-time).
  std::uint32_t (*track)(void* tracer, const char* name, int domain) = nullptr;
  /// Wall-clock timestamp in microseconds (obs::Tracer::now_us).
  double (*now_us)(void* tracer) = nullptr;
  /// Complete span [t0,t1] on `track`; arg_name = 0xffffffff means "no arg".
  void (*span)(void* tracer, std::uint32_t name, std::uint32_t track,
               double t0, double t1, std::uint32_t arg_name,
               double arg) = nullptr;
  /// Instant at `ts` on `track` (sim-domain timestamps via obs::sim_us).
  void (*instant)(void* tracer, std::uint32_t name, std::uint32_t track,
                  double ts, std::uint32_t arg_name, double arg) = nullptr;

  // --- Metrics side --------------------------------------------------------
  void* metrics = nullptr;  ///< opaque obs::MetricsRegistry*; null → absent
  /// Resolve instruments by name; the returned handles are stable pointers.
  void* (*counter)(void* metrics, const char* name) = nullptr;
  void* (*gauge)(void* metrics, const char* name) = nullptr;
  void* (*histogram)(void* metrics, const char* name) = nullptr;
  void (*counter_add)(void* counter, std::uint64_t n) = nullptr;
  void (*gauge_max)(void* gauge, std::uint64_t v) = nullptr;
  void (*histogram_observe)(void* histogram, double v) = nullptr;
};

/// POD mirror of the sim::SimOptions subset the native backend supports
/// (the legacy_* bench baselines force interpreter fallback before this
/// struct is ever built; observability rides along through `obs` since
/// ABI v2).
struct NativeRunOptions {
  double end_time = 1.0;
  int integrator_kind = 0;  // sim::IntegratorKind numeric value
  double max_step = 1e-3;
  double rel_tol = 1e-8;
  double abs_tol = 1e-10;
  double min_step = 1e-12;
  std::uint64_t seed = 1;
  std::size_t max_events = 20'000'000;
  int full_refresh = 0;
  std::size_t reserve_events = 0;
  std::size_t reserve_signals = 0;
  std::size_t reserve_queue = 0;
  /// Observability callback table (borrowed, may be null). Null, or a table
  /// whose tracer/metrics are both null, runs the module with telemetry
  /// compiled to nothing — the guarded ≤2% attached-but-disabled overhead
  /// only concerns a non-null table whose tracer reports disabled.
  const NativeObsTable* obs = nullptr;
};

}  // namespace ecsim::backend

extern "C" {

/// ABI version the module was generated against (kNativeAbiVersion).
/// Symbol: resolved with dlsym; a missing symbol means "not an ecsim model".
using EcsimNativeAbiFn = int (*)();

/// Canonical IR hash (ir::hash_hex) of the model the module was generated
/// from. The host refuses a module whose hash differs from the IR in hand.
using EcsimNativeHashFn = const char* (*)();

/// Run the model: `trace` is an ecsim::sim::Trace* the module clears,
/// re-registers block names on and fills; `events_out` receives the
/// dispatched-event count. Returns 0 on success; on failure copies a
/// NUL-terminated message into err (truncated to errcap) and returns
/// nonzero. Exceptions never cross the boundary.
using EcsimNativeRunFn = int (*)(const ecsim::backend::NativeRunOptions* opts,
                                 void* trace, std::size_t* events_out,
                                 char* err, std::size_t errcap);

}  // extern "C"
