#include "latency/latency.hpp"

#include <gtest/gtest.h>

namespace ecsim::latency {
namespace {

TEST(Latency, Eq1DefinitionReproduced) {
  // I(k) = k*Ts + Ls with constant Ls = 0.002.
  std::vector<Time> instants;
  const double ts = 0.01;
  for (int k = 0; k < 10; ++k) instants.push_back(k * ts + 0.002);
  const LatencySeries s = analyze_instants("y0 sampling", instants, ts);
  ASSERT_EQ(s.latencies.size(), 10u);
  for (double l : s.latencies) EXPECT_NEAR(l, 0.002, 1e-12);
  EXPECT_NEAR(s.summary.mean, 0.002, 1e-12);
  EXPECT_NEAR(s.jitter, 0.0, 1e-12);
}

TEST(Latency, JitterIsPeakToPeak) {
  const double ts = 0.01;
  std::vector<Time> instants{0.001, ts + 0.003, 2 * ts + 0.002};
  const LatencySeries s = analyze_instants("act", instants, ts);
  EXPECT_NEAR(s.jitter, 0.002, 1e-12);
  EXPECT_NEAR(s.summary.min, 0.001, 1e-12);
  EXPECT_NEAR(s.summary.max, 0.003, 1e-12);
}

TEST(Latency, RoundingAssignmentHandlesSkippedPeriods) {
  const double ts = 0.01;
  // Instants only in periods 0 and 2.
  std::vector<Time> instants{0.004, 0.0205};
  const LatencySeries s =
      analyze_instants("sparse", instants, ts, /*assign_by_rounding=*/true);
  EXPECT_NEAR(s.latencies[0], 0.004, 1e-12);
  EXPECT_NEAR(s.latencies[1], 0.0005, 1e-9);
}

TEST(Latency, Validation) {
  EXPECT_THROW(analyze_instants("x", {0.0}, 0.0), std::invalid_argument);
}

TEST(Latency, FromTraceActivations) {
  sim::Trace trace;
  trace.record_event(0.002, 3, 0, "sense");
  trace.record_event(0.012, 3, 0, "sense");
  trace.record_event(0.022, 3, 0, "sense");
  trace.record_event(0.005, 4, 0, "other");
  const LatencySeries s = analyze_block_activations(trace, "sense", 0.01);
  ASSERT_EQ(s.latencies.size(), 3u);
  EXPECT_NEAR(s.summary.mean, 0.002, 1e-12);
  EXPECT_EQ(s.channel, "sense");
}

TEST(Latency, TableRendering) {
  std::vector<Time> instants;
  for (int k = 0; k < 30; ++k) instants.push_back(k * 0.01 + 0.001);
  const LatencySeries s = analyze_instants("u0 actuation", instants, 0.01);
  const std::string table = to_table(s, 5);
  EXPECT_NE(table.find("u0 actuation"), std::string::npos);
  EXPECT_NE(table.find("(25 more)"), std::string::npos);
  EXPECT_NE(table.find("jitter"), std::string::npos);
}

TEST(IoLatency, DifferenceOfInstantSeries) {
  const double ts = 0.01;
  std::vector<Time> sampling, actuation;
  for (int k = 0; k < 5; ++k) {
    sampling.push_back(k * ts + 0.001);
    actuation.push_back(k * ts + 0.004 + (k % 2) * 0.001);
  }
  const LatencySeries s = io_latency(sampling, actuation, ts);
  ASSERT_EQ(s.latencies.size(), 5u);
  EXPECT_NEAR(s.latencies[0], 0.003, 1e-12);
  EXPECT_NEAR(s.latencies[1], 0.004, 1e-12);
  EXPECT_NEAR(s.jitter, 0.001, 1e-12);
  EXPECT_EQ(s.channel, "input-output");
}

TEST(IoLatency, ShorterSeriesWins) {
  const LatencySeries s =
      io_latency({0.0, 0.01}, {0.002, 0.012, 0.022}, 0.01);
  EXPECT_EQ(s.latencies.size(), 2u);
}

TEST(IoLatency, Validation) {
  EXPECT_THROW(io_latency({0.005}, {0.001}, 0.01), std::invalid_argument);
  EXPECT_THROW(io_latency({0.0}, {0.001}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::latency
