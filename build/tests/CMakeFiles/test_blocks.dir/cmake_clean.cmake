file(REMOVE_RECURSE
  "CMakeFiles/test_blocks.dir/blocks/test_continuous.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_continuous.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_discrete.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_discrete.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_event_blocks.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_event_blocks.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_math_blocks.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_math_blocks.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_sample_hold.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_sample_hold.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_sources.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_sources.cpp.o.d"
  "CMakeFiles/test_blocks.dir/blocks/test_synchronization.cpp.o"
  "CMakeFiles/test_blocks.dir/blocks/test_synchronization.cpp.o.d"
  "test_blocks"
  "test_blocks.pdb"
  "test_blocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
