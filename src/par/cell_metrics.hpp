// Per-cell progress/latency instrumentation shared by the design-space and
// fault sweeps. The instruments are resolved from the batch's *shared*
// MetricsRegistry (par::BatchOptions::metrics), not the per-task shards:
// Counter::add and Histogram::observe are thread-safe, so a long grid is
// observable while it runs — `sweep.cells_completed` ticks up live and
// `sweep.cell_wall_us` accumulates the per-cell wall-time distribution,
// whose p50/p99 (obs::Histogram::quantile) the CLI reports after the run.
// Wall times are inherently nondeterministic, which is why they bypass the
// deterministic shard-merge path; the grid results themselves stay
// serial-identical for any thread count.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace ecsim::sweep {

class CellMetrics {
 public:
  explicit CellMetrics(obs::MetricsRegistry* m) {
    if (m != nullptr) {
      done_ = &m->counter("sweep.cells_completed");
      wall_us_ = &m->histogram("sweep.cell_wall_us");
    }
  }

  /// Evaluate one cell, timing it when instruments are attached.
  template <class Fn>
  auto cell(Fn&& fn) -> decltype(fn()) {
    if (done_ == nullptr) return fn();
    const auto t0 = std::chrono::steady_clock::now();
    auto result = fn();
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    wall_us_->observe(us);
    done_->add();
    return result;
  }

 private:
  obs::Counter* done_ = nullptr;
  obs::Histogram* wall_us_ = nullptr;
};

}  // namespace ecsim::sweep
