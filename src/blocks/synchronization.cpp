#include "blocks/synchronization.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::blocks {

Synchronization::Synchronization(std::string name, std::size_t n_inputs)
    : Block(std::move(name)), received_(n_inputs, false) {
  if (n_inputs == 0) {
    throw std::invalid_argument("Synchronization: n_inputs must be >= 1");
  }
  for (std::size_t i = 0; i < n_inputs; ++i) add_event_input();
  add_event_output();
}

void Synchronization::initialize(Context&) {
  std::fill(received_.begin(), received_.end(), false);
  fires_ = 0;
}

void Synchronization::on_event(Context& ctx, std::size_t event_in) {
  received_.at(event_in) = true;
  if (std::all_of(received_.begin(), received_.end(),
                  [](bool b) { return b; })) {
    ctx.emit(0, 0.0);
    std::fill(received_.begin(), received_.end(), false);
    ++fires_;
  }
}


void Synchronization::describe(ir::BlockIr& out) const {
  out.kind = "Synchronization";  // fan-in is the structural n_event_in
}

}  // namespace ecsim::blocks
