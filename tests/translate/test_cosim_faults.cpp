// Fault injection on the control side of the flow: GodOptions::fault_plan
// gates the comm-completion events of the graph of delays, so the translated
// co-simulation shows stale-sample behaviour instead of crashing
// (DESIGN.md §3.5).
#include <gtest/gtest.h>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "plants/dc_servo.hpp"
#include "translate/cosim.hpp"

namespace ecsim::translate {
namespace {

LoopSpec servo_spec() {
  const control::StateSpace servo_ct = [] {
    control::StateSpace s = plants::dc_servo();
    s.c = math::Matrix::identity(2);
    s.d = math::Matrix::zeros(2, 1);
    return s;
  }();
  const double ts = 0.01;
  const control::StateSpace servo_dt = control::c2d(servo_ct, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_dt, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace tracking = servo_dt;
  tracking.c = math::Matrix{{1.0, 0.0}};
  tracking.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(tracking, lqr.k);

  LoopSpec spec;
  spec.plant = servo_ct;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 0.6;
  spec.ref = 1.0;
  spec.input = ControllerInput::kStateRef;
  return spec;
}

DistributedSpec cross_bus_spec() {
  DistributedSpec dist;
  dist.bind_ctrl = "P1";  // controller across the bus: real message traffic
  return dist;
}

TEST(CosimFaults, ZeroProbabilityPlanIsTransparent) {
  const LoopSpec spec = servo_spec();
  const DistributedSpec plain = cross_bus_spec();
  DistributedSpec armed = plain;
  armed.god.fault_plan.message_loss("bus", 0.0);
  armed.god.fault_plan.message_delay("bus", 0.0, 0.005);
  const CosimOutcome a = run_distributed_loop(spec, plain);
  const CosimOutcome b = run_distributed_loop(spec, armed);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.iae, b.iae);
  EXPECT_EQ(a.itae, b.itae);
  EXPECT_EQ(b.messages_lost, 0u);
  EXPECT_EQ(b.messages_deferred, 0u);
}

TEST(CosimFaults, MessageLossDegradesControlPerformance) {
  const LoopSpec spec = servo_spec();
  const DistributedSpec plain = cross_bus_spec();
  DistributedSpec lossy = plain;
  lossy.god.fault_plan.message_loss("bus", 0.3);
  const CosimOutcome clean = run_distributed_loop(spec, plain);
  const CosimOutcome faulted = run_distributed_loop(spec, lossy);
  EXPECT_GT(faulted.messages_lost, 0u);
  // The S/H boundary holds the last delivered sample, so the loop survives —
  // with worse tracking than the fault-free run.
  EXPECT_GE(faulted.iae, clean.iae);
  EXPECT_GT(faulted.cost, clean.cost);
}

TEST(CosimFaults, MessageDelayIsAccounted) {
  const LoopSpec spec = servo_spec();
  DistributedSpec dist = cross_bus_spec();
  dist.god.fault_plan.message_delay("bus", 1.0, 0.002);
  const CosimOutcome out = run_distributed_loop(spec, dist);
  EXPECT_EQ(out.messages_lost, 0u);
  EXPECT_GT(out.messages_deferred, 0u);
}

TEST(CosimFaults, SamePlanReplaysIdentically) {
  const LoopSpec spec = servo_spec();
  DistributedSpec dist = cross_bus_spec();
  dist.god.fault_plan.seed = 5;
  dist.god.fault_plan.message_loss("bus", 0.2);
  const CosimOutcome a = run_distributed_loop(spec, dist);
  const CosimOutcome b = run_distributed_loop(spec, dist);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.iae, b.iae);
  EXPECT_EQ(a.messages_lost, b.messages_lost);
}

TEST(CosimFaults, TimetableModeRejectsFaultPlans) {
  const LoopSpec spec = servo_spec();
  DistributedSpec dist = cross_bus_spec();
  dist.god.mode = GodMode::kTimetable;
  dist.god.fault_plan.message_loss("bus", 0.1);
  EXPECT_THROW(run_distributed_loop(spec, dist), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::translate
