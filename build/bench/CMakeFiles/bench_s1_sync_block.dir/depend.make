# Empty dependencies file for bench_s1_sync_block.
# This may be replaced when dependencies are built.
