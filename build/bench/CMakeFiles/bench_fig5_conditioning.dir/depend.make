# Empty dependencies file for bench_fig5_conditioning.
# This may be replaced when dependencies are built.
