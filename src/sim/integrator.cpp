#include "sim/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecsim::sim {

namespace {

// The stage kernels are templated on the callable so each path keeps its
// own dispatch cost: the hot path instantiates with DerivRef (bare indirect
// call), the legacy bench baseline with const DerivFn& (std::function, as
// the pre-workspace code had). The arithmetic is shared — one source of
// truth keeps the two paths bit-identical.
template <typename Fn>
void rk4_step(const Fn& dxdt, Time t, double h, std::vector<double>& x,
              std::vector<double>& k1, std::vector<double>& k2,
              std::vector<double>& k3, std::vector<double>& k4,
              std::vector<double>& tmp) {
  const std::size_t n = x.size();
  dxdt(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
  dxdt(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
  dxdt(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * k3[i];
  dxdt(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

void integrate_rk4(const IntegratorOptions& opts, DerivRef dxdt, Time t0,
                   Time t1, std::vector<double>& x, IntegratorWorkspace& ws) {
  Time t = t0;
  while (t < t1) {
    const double h = std::min(opts.max_step, t1 - t);
    rk4_step(dxdt, t, h, x, ws.k1, ws.k2, ws.k3, ws.k4, ws.tmp);
    t += h;
  }
}

// Runge-Kutta-Fehlberg 4(5) Butcher tableau.
constexpr double kA2 = 1.0 / 4.0;
constexpr double kB31 = 3.0 / 32.0, kB32 = 9.0 / 32.0;
constexpr double kB41 = 1932.0 / 2197.0, kB42 = -7200.0 / 2197.0,
                 kB43 = 7296.0 / 2197.0;
constexpr double kB51 = 439.0 / 216.0, kB52 = -8.0, kB53 = 3680.0 / 513.0,
                 kB54 = -845.0 / 4104.0;
constexpr double kB61 = -8.0 / 27.0, kB62 = 2.0, kB63 = -3544.0 / 2565.0,
                 kB64 = 1859.0 / 4104.0, kB65 = -11.0 / 40.0;
constexpr double kC1 = 25.0 / 216.0, kC3 = 1408.0 / 2565.0,
                 kC4 = 2197.0 / 4104.0, kC5 = -1.0 / 5.0;
constexpr double kD1 = 16.0 / 135.0, kD3 = 6656.0 / 12825.0,
                 kD4 = 28561.0 / 56430.0, kD5 = -9.0 / 50.0, kD6 = 2.0 / 55.0;

/// Step-size growth/shrink factor for the accepted/rejected error estimate
/// of the step that just ran. Must be fed the *fresh* err of this attempt:
/// err == 0.0 means the 4th/5th-order solutions agreed exactly (e.g. a zero
/// or affine-in-t derivative), where the -0.2 power is undefined — grow by
/// the same cap the clamp would apply to any tiny positive err.
double step_factor(double err) {
  return err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
}

/// One RKF45 embedded step: six stages from state `x` at time `t` with step
/// `h`. Writes the 5th-order solution into `x5` and returns the max scaled
/// discrepancy between the embedded 4th and 5th order solutions.
template <typename Fn>
double rkf45_stages(const IntegratorOptions& opts, const Fn& dxdt, Time t,
                    double h, const std::vector<double>& x,
                    std::vector<double>& k1, std::vector<double>& k2,
                    std::vector<double>& k3, std::vector<double>& k4,
                    std::vector<double>& k5, std::vector<double>& k6,
                    std::vector<double>& tmp, std::vector<double>& x5) {
  const std::size_t n = x.size();
  dxdt(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + h * kA2 * k1[i];
  dxdt(t + h / 4.0, tmp, k2);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = x[i] + h * (kB31 * k1[i] + kB32 * k2[i]);
  dxdt(t + 3.0 * h / 8.0, tmp, k3);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = x[i] + h * (kB41 * k1[i] + kB42 * k2[i] + kB43 * k3[i]);
  dxdt(t + 12.0 * h / 13.0, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = x[i] + h * (kB51 * k1[i] + kB52 * k2[i] + kB53 * k3[i] +
                         kB54 * k4[i]);
  dxdt(t + h, tmp, k5);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = x[i] + h * (kB61 * k1[i] + kB62 * k2[i] + kB63 * k3[i] +
                         kB64 * k4[i] + kB65 * k5[i]);
  dxdt(t + h / 2.0, tmp, k6);

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y4 =
        x[i] + h * (kC1 * k1[i] + kC3 * k3[i] + kC4 * k4[i] + kC5 * k5[i]);
    x5[i] = x[i] + h * (kD1 * k1[i] + kD3 * k3[i] + kD4 * k4[i] +
                        kD5 * k5[i] + kD6 * k6[i]);
    const double scale =
        opts.abs_tol + opts.rel_tol * std::max(std::abs(x[i]), std::abs(x5[i]));
    err = std::max(err, std::abs(x5[i] - y4) / scale);
  }
  return err;
}

void integrate_rkf45(const IntegratorOptions& opts, DerivRef dxdt, Time t0,
                     Time t1, std::vector<double>& x, IntegratorWorkspace& ws) {
  Time t = t0;
  double h = std::min(opts.max_step, t1 - t0);
  while (t < t1) {
    h = std::min(h, t1 - t);
    const double err = rkf45_stages(opts, dxdt, t, h, x, ws.k1, ws.k2, ws.k3,
                                    ws.k4, ws.k5, ws.k6, ws.tmp, ws.x5);
    // Accept when within tolerance, and *force-accept* once h has been
    // clamped to min_step: shrinking further is impossible, so taking the
    // too-large-error step is the only way to keep making progress (the
    // alternative is retrying the same h forever). Tests pin this branch.
    if (err <= 1.0 || h <= opts.min_step) {
      t += h;
      // The 5th-order solution becomes the state by swapping buffers — the
      // legacy path copied x = x5 element-wise. Same values, no traffic.
      std::swap(x, ws.x5);
    }
    h *= std::clamp(step_factor(err), 0.2, 5.0);
    h = std::clamp(h, opts.min_step, opts.max_step);
  }
}

// ---- legacy allocating path (bench A/B baseline; see header) --------------

void integrate_rk4_legacy(const IntegratorOptions& opts, const DerivFn& dxdt,
                          Time t0, Time t1, std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  Time t = t0;
  while (t < t1) {
    const double h = std::min(opts.max_step, t1 - t);
    rk4_step(dxdt, t, h, x, k1, k2, k3, k4, tmp);
    t += h;
  }
}

void integrate_rkf45_legacy(const IntegratorOptions& opts, const DerivFn& dxdt,
                            Time t0, Time t1, std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n), x5(n);
  Time t = t0;
  double h = std::min(opts.max_step, t1 - t0);
  while (t < t1) {
    h = std::min(h, t1 - t);
    const double err =
        rkf45_stages(opts, dxdt, t, h, x, k1, k2, k3, k4, k5, k6, tmp, x5);
    if (err <= 1.0 || h <= opts.min_step) {
      t += h;
      x = x5;
    }
    h *= std::clamp(step_factor(err), 0.2, 5.0);
    h = std::clamp(h, opts.min_step, opts.max_step);
  }
}

void check_interval(Time t0, Time t1) {
  if (t1 < t0) throw std::invalid_argument("integrate: t1 < t0");
}

}  // namespace

void integrate(const IntegratorOptions& opts, DerivRef dxdt, Time t0, Time t1,
               std::vector<double>& x, IntegratorWorkspace& ws) {
  check_interval(t0, t1);
  if (x.empty() || t1 == t0) return;
  ws.resize(x.size());
  switch (opts.kind) {
    case IntegratorKind::kRk4:
      integrate_rk4(opts, dxdt, t0, t1, x, ws);
      break;
    case IntegratorKind::kRkf45:
      integrate_rkf45(opts, dxdt, t0, t1, x, ws);
      break;
  }
}

void integrate(const IntegratorOptions& opts, DerivRef dxdt, Time t0, Time t1,
               std::vector<double>& x) {
  IntegratorWorkspace ws;
  integrate(opts, dxdt, t0, t1, x, ws);
}

void integrate_legacy_alloc(const IntegratorOptions& opts, const DerivFn& dxdt,
                            Time t0, Time t1, std::vector<double>& x) {
  check_interval(t0, t1);
  if (x.empty() || t1 == t0) return;
  switch (opts.kind) {
    case IntegratorKind::kRk4:
      integrate_rk4_legacy(opts, dxdt, t0, t1, x);
      break;
    case IntegratorKind::kRkf45:
      integrate_rkf45_legacy(opts, dxdt, t0, t1, x);
      break;
  }
}

}  // namespace ecsim::sim
