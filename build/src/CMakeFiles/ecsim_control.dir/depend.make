# Empty dependencies file for ecsim_control.
# This may be replaced when dependencies are built.
