
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aaa/adequation.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/adequation.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/adequation.cpp.o.d"
  "/root/repo/src/aaa/algorithm_graph.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/algorithm_graph.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/algorithm_graph.cpp.o.d"
  "/root/repo/src/aaa/architecture_graph.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/architecture_graph.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/architecture_graph.cpp.o.d"
  "/root/repo/src/aaa/codegen.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/codegen.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/codegen.cpp.o.d"
  "/root/repo/src/aaa/multirate.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/multirate.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/multirate.cpp.o.d"
  "/root/repo/src/aaa/routing.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/routing.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/routing.cpp.o.d"
  "/root/repo/src/aaa/schedule.cpp" "src/CMakeFiles/ecsim_aaa.dir/aaa/schedule.cpp.o" "gcc" "src/CMakeFiles/ecsim_aaa.dir/aaa/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
