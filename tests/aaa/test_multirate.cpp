// Multirate expansion: a fast inner loop (every base period) + a slow outer
// supervisor (every 4th period) flattened over the hyperperiod, then pushed
// through the unchanged adequation / codegen / VM / graph-of-delays pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "aaa/multirate.hpp"
#include "blocks/discrete.hpp"
#include "exec/conformance.hpp"
#include "sim/simulator.hpp"
#include "translate/graph_of_delays.hpp"

namespace ecsim::aaa {
namespace {

MultirateSpec inner_outer(double base = 0.005) {
  MultirateSpec spec;
  spec.name = "inner-outer";
  spec.base_period = base;
  const std::size_t sense =
      spec.add_op({"sense", OpKind::kSensor, {{"cpu", 1e-4}}, 1, "P0"});
  const std::size_t inner =
      spec.add_op({"inner", OpKind::kCompute, {{"cpu", 4e-4}}, 1, {}});
  const std::size_t outer =
      spec.add_op({"outer", OpKind::kCompute, {{"cpu", 1.2e-3}}, 4, {}});
  const std::size_t act =
      spec.add_op({"act", OpKind::kActuator, {{"cpu", 1e-4}}, 1, "P0"});
  spec.add_dep(sense, inner, 4.0);
  spec.add_dep(sense, outer, 4.0);
  spec.add_dep(outer, inner, 2.0);  // slow set-point feeds the fast loop
  spec.add_dep(inner, act, 4.0);
  return spec;
}

TEST(Multirate, SpecValidation) {
  MultirateSpec spec;
  EXPECT_THROW(spec.add_op({"x", OpKind::kCompute, {{"cpu", 1.0}}, 0, {}}),
               std::invalid_argument);
  EXPECT_THROW(expand_hyperperiod(spec), std::invalid_argument);
  spec.base_period = 0.0;
  spec.add_op({"x", OpKind::kCompute, {{"cpu", 1.0}}, 1, {}});
  EXPECT_THROW(expand_hyperperiod(spec), std::invalid_argument);
  EXPECT_THROW(spec.add_dep(0, 0), std::invalid_argument);
  EXPECT_THROW(spec.add_dep(0, 5), std::out_of_range);
}

TEST(Multirate, HyperperiodFactorIsLcm) {
  MultirateSpec spec;
  spec.base_period = 0.01;
  spec.add_op({"a", OpKind::kCompute, {{"cpu", 1.0}}, 2, {}});
  spec.add_op({"b", OpKind::kCompute, {{"cpu", 1.0}}, 3, {}});
  EXPECT_EQ(spec.hyperperiod_factor(), 6u);
}

TEST(Multirate, ExpansionShape) {
  const MultirateSpec spec = inner_outer();
  const AlgorithmGraph alg = expand_hyperperiod(spec);
  EXPECT_DOUBLE_EQ(alg.period(), 0.02);  // 4 * base
  // 4 sense + 4 inner + 1 outer + 4 act = 13 instances.
  EXPECT_EQ(alg.num_operations(), 13u);
  // Releases staggered by base period.
  EXPECT_DOUBLE_EQ(alg.op(alg.find("sense@0")).release, 0.0);
  EXPECT_DOUBLE_EQ(alg.op(alg.find("sense@2")).release, 0.01);
  EXPECT_DOUBLE_EQ(alg.op(alg.find("outer@0")).release, 0.0);
  // Rate conversion: every inner instance reads outer@0 (latest released);
  // outer@0 reads sense@0.
  const OpId outer0 = alg.find("outer@0");
  for (std::size_t k = 0; k < 4; ++k) {
    const auto preds = alg.predecessors(alg.find(instance_name("inner", k)));
    EXPECT_NE(std::find(preds.begin(), preds.end(), outer0), preds.end())
        << "inner@" << k;
  }
  EXPECT_EQ(alg.predecessors(outer0),
            std::vector<OpId>{alg.find("sense@0")});
}

TEST(Multirate, SchedulesAndValidates) {
  const AlgorithmGraph alg = expand_hyperperiod(inner_outer());
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  EXPECT_NO_THROW(sched.validate(alg, arch));
  // Instance starts respect their releases.
  for (const ScheduledOp& so : sched.ops()) {
    EXPECT_GE(so.start + 1e-12, alg.op(so.op).release) << alg.op(so.op).name;
  }
  EXPECT_LT(sched.makespan(), alg.period());
}

TEST(Multirate, VmConformanceOverHyperperiods) {
  const AlgorithmGraph alg = expand_hyperperiod(inner_outer());
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  const GeneratedCode code = generate_executives(alg, arch, sched);
  exec::VmOptions opts;
  opts.iterations = 6;
  opts.period = alg.period();
  const exec::VmResult vm = exec::run_executives(alg, arch, sched, code, opts);
  const exec::ConformanceReport rep =
      exec::check_wcet_conformance(alg, arch, sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
}

TEST(Multirate, ReleaseGatingHoldsUnderFastExecution) {
  const AlgorithmGraph alg = expand_hyperperiod(inner_outer());
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  const GeneratedCode code = generate_executives(alg, arch, sched);
  exec::VmOptions opts;
  opts.iterations = 10;
  opts.period = alg.period();
  opts.exec_time = exec::uniform_fraction_exec_time(0.05);
  opts.seed = 31;
  const exec::VmResult vm = exec::run_executives(alg, arch, sched, code, opts);
  ASSERT_FALSE(vm.deadlock);
  for (const exec::OpInstance& oi : vm.ops) {
    const double expect_release =
        alg.op(oi.op).release +
        static_cast<double>(oi.iteration) * alg.period();
    if (alg.op(oi.op).release > 0.0 ||
        alg.op(oi.op).kind == OpKind::kSensor) {
      EXPECT_GE(oi.start + 1e-12, expect_release) << alg.op(oi.op).name;
    }
  }
}

TEST(Multirate, GraphOfDelaysReproducesHyperperiodSchedule) {
  const AlgorithmGraph alg = expand_hyperperiod(inner_outer());
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  sim::Model m;
  const translate::GraphOfDelays god =
      translate::build_graph_of_delays(m, alg, arch, sched, {});
  std::vector<std::string> names;
  for (OpId op = 0; op < alg.num_operations(); ++op) {
    auto& n = m.add<blocks::EventCounter>("done_" + alg.op(op).name);
    translate::wire_completion(m, god, op, n, 0);
    names.push_back("done_" + alg.op(op).name);
  }
  sim::Simulator s(m, sim::SimOptions{.end_time = 3 * 0.02 - 1e-6});
  s.run();
  for (OpId op = 0; op < alg.num_operations(); ++op) {
    const auto times = s.trace().activation_times_by_name(names[op]);
    ASSERT_EQ(times.size(), 3u) << names[op];
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_NEAR(times[k],
                  sched.of_op(op).end + 0.02 * static_cast<double>(k), 1e-9)
          << names[op];
    }
  }
}

TEST(Multirate, FastProducerSlowConsumerMapping) {
  // Producer every period, consumer every 2nd: consumer@j reads
  // producer@(2j), the instance released simultaneously.
  MultirateSpec spec;
  spec.base_period = 0.01;
  const std::size_t prod =
      spec.add_op({"p", OpKind::kSensor, {{"cpu", 1e-4}}, 1, {}});
  const std::size_t cons =
      spec.add_op({"c", OpKind::kCompute, {{"cpu", 1e-4}}, 2, {}});
  // Stretch the hyperperiod to 4 base periods so the consumer has two
  // instances (c@0 at 0, c@1 at 0.02).
  spec.add_op({"slow", OpKind::kCompute, {{"cpu", 1e-4}}, 4, {}});
  spec.add_dep(prod, cons, 1.0);
  const AlgorithmGraph alg = expand_hyperperiod(spec);
  EXPECT_EQ(alg.predecessors(alg.find("c@0")),
            std::vector<OpId>{alg.find("p@0")});
  EXPECT_EQ(alg.predecessors(alg.find("c@1")),
            std::vector<OpId>{alg.find("p@2")});
}

}  // namespace
}  // namespace ecsim::aaa
