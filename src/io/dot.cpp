#include "io/dot.hpp"

#include <sstream>

namespace ecsim::io {

namespace {

/// DOT identifiers cannot contain arbitrary characters; quote + escape.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string to_dot(const sim::Model& model, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << quoted(name) << " {\n";
  os << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    os << "  n" << b << " [label=" << quoted(model.block(b).name()) << "];\n";
  }
  for (const sim::DataWire& w : model.data_wires()) {
    os << "  n" << w.from.block << " -> n" << w.to.block << " [label=\""
       << w.from.port << ">" << w.to.port << "\"];\n";
  }
  for (const sim::EventWire& w : model.event_wires()) {
    os << "  n" << w.from.block << " -> n" << w.to.block
       << " [style=dashed, color=red, label=\"e" << w.from.port << ">e"
       << w.to.port << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const aaa::AlgorithmGraph& alg) {
  std::ostringstream os;
  os << "digraph " << quoted(alg.name()) << " {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  for (aaa::OpId i = 0; i < alg.num_operations(); ++i) {
    const aaa::Operation& op = alg.op(i);
    const char* shape = op.kind == aaa::OpKind::kSensor     ? "invhouse"
                        : op.kind == aaa::OpKind::kActuator ? "house"
                                                            : "box";
    std::string label = op.name;
    if (op.is_conditional()) {
      label += " [" + std::to_string(op.branches.size()) + " branches]";
    }
    if (op.bound_processor) label += "\\n@" + *op.bound_processor;
    os << "  op" << i << " [shape=" << shape << ", label=" << quoted(label)
       << "];\n";
  }
  for (const aaa::DataDep& d : alg.dependencies()) {
    os << "  op" << d.from << " -> op" << d.to << " [label=\"" << d.size
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const aaa::ArchitectureGraph& arch) {
  std::ostringstream os;
  os << "graph " << quoted(arch.name()) << " {\n";
  os << "  node [fontsize=10];\n";
  for (aaa::ProcId p = 0; p < arch.num_processors(); ++p) {
    os << "  p" << p << " [shape=box, label="
       << quoted(arch.processor(p).name + "\\n(" + arch.processor(p).type + ")")
       << "];\n";
  }
  for (aaa::MediumId m = 0; m < arch.num_media(); ++m) {
    const aaa::Medium& med = arch.medium(m);
    std::string label = med.name + "\\nbw=" + std::to_string(med.bandwidth);
    if (med.arbitration == aaa::Arbitration::kTdma) {
      label += " tdma=" + std::to_string(med.tdma_slot);
      if (med.tdma_slots > 1) {
        label += "x" + std::to_string(med.tdma_slots);
      }
    } else if (med.arbitration == aaa::Arbitration::kCanPriority) {
      label += " can";
      if (med.can_blocking > 0.0) {
        label += " block=" + std::to_string(med.can_blocking);
      }
    }
    if (med.background_load > 0.0) {
      label += " load=" + std::to_string(med.background_load);
    }
    os << "  m" << m << " [shape=ellipse, style=filled, fillcolor=lightgray, "
       << "label=" << quoted(label) << "];\n";
    for (aaa::ProcId p : arch.procs_on(m)) {
      os << "  p" << p << " -- m" << m << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string schedule_to_dot(const aaa::AlgorithmGraph& alg,
                            const aaa::ArchitectureGraph& arch,
                            const aaa::Schedule& sched) {
  std::ostringstream os;
  os << "digraph schedule {\n  rankdir=LR;\n  node [shape=record, fontsize=9];\n";
  for (aaa::ProcId p = 0; p < sched.num_procs(); ++p) {
    os << "  proc" << p << " [label=\"" << arch.processor(p).name;
    for (std::size_t idx : sched.ops_on(p)) {
      const aaa::ScheduledOp& so = sched.ops()[idx];
      os << " | " << alg.op(so.op).name << "\\n[" << so.start << "," << so.end
         << ")";
    }
    os << "\"];\n";
  }
  for (aaa::MediumId m = 0; m < sched.num_media(); ++m) {
    os << "  medium" << m << " [label=\"" << arch.medium(m).name;
    for (std::size_t idx : sched.comms_on(m)) {
      const aaa::ScheduledComm& sc = sched.comms()[idx];
      const aaa::DataDep& dep = alg.dependencies()[sc.dep_index];
      os << " | " << alg.op(dep.from).name << "\\>" << alg.op(dep.to).name
         << "\\n[" << sc.start << "," << sc.end << ")";
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ecsim::io
