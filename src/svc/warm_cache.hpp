// Warm model registry of the sweep service (DESIGN.md §3.9): the expensive
// per-request setup — building the servo LoopSpec and hashing its Model IR,
// or parsing an uploaded spec, running the adequation and generating the
// executives — is done once per distinct model and kept hot for the daemon's
// lifetime. The native-backend module cache (PR 6) already persists compiled
// .so modules on disk keyed by IR hash and memoizes dlopen handles
// per-process, so long-lived workers stay warm at that layer for free; this
// registry adds the layers above it. Warm entries are identity-keyed
// (parameters / content hash), never capacity-bounded: a daemon serves a
// handful of distinct models but millions of units of them.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "aaa/codegen.hpp"
#include "io/spec.hpp"
#include "obs/metrics.hpp"
#include "translate/cosim.hpp"

namespace ecsim::svc {

/// The assembled servo loop of one (ts, t_end, seed) triple and the
/// canonical IR hash of its ideal-clocked model. `loop.backend` is left at
/// the default — callers stamp the request's backend on a copy, which does
/// not change the model IR.
struct WarmLoop {
  translate::LoopSpec loop;
  std::string ir_hash;  // ir::hash_hex(translate::loop_ir(loop))
};

/// One uploaded VM Monte Carlo spec taken through parse -> adequation ->
/// codegen, keyed by its content hash ("spec:0x…").
struct WarmSpec {
  io::ParsedSpec spec;
  aaa::Schedule sched{0, 0};
  aaa::GeneratedCode code;
  std::string content_hash;
};

class WarmCache {
 public:
  explicit WarmCache(obs::MetricsRegistry* metrics = nullptr);

  /// Find-or-build; the returned reference is stable for the cache's life
  /// (node-based map). Throws what loop assembly throws on first build.
  const WarmLoop& loop(double ts, double t_end, std::uint64_t seed);

  /// Find-or-build from spec text. Throws io::SpecParseError /
  /// std::runtime_error on malformed or incomplete specs (first build only).
  const WarmSpec& spec(const std::string& spec_text);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  std::map<std::string, WarmLoop> loops_;
  std::map<std::string, WarmSpec> specs_;
  std::uint64_t hits_ = 0, misses_ = 0;
  obs::Counter* hit_ctr_ = nullptr;
  obs::Counter* miss_ctr_ = nullptr;
};

}  // namespace ecsim::svc
