// Named runtime metrics shared by the simulator, the executive VM and the
// adequation heuristic: monotonically increasing counters (events dispatched,
// eval calls, WCET-table lookups), gauges (queue high-water mark), and
// log2-bucketed histograms (cone refresh sizes, eval calls per block).
//
// Instruments are created on first lookup and their addresses are stable for
// the registry's lifetime (node-based map), so hot paths resolve a name to a
// pointer once and then touch only the instrument. Counters and gauges are
// lock-free; histograms take an uncontended per-instrument mutex.
//
// Snapshots serialize to JSON (machine-diffable, BENCH-style) or CSV.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ecsim::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  /// Ratchet upward — for high-water marks.
  void max_of(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Power-of-two bucket histogram for non-negative samples: bucket i counts
/// samples in (2^(i-1), 2^i], bucket 0 counts samples <= 1.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;
  std::uint64_t bucket(std::size_t i) const;
  /// Inclusive upper bound of bucket i (1, 2, 4, ...).
  static double bucket_bound(std::size_t i);
  /// Bucketed quantile estimate (q in [0,1], clamped): the smallest bucket
  /// bound whose cumulative count reaches q*N, tightened by the recorded
  /// max. Exact to within the log2 bucket width — the resolution the sweep
  /// progress reporting (p50/p99 cell wall time) needs. 0 when empty.
  double quantile(double q) const;
  /// Fold `other`'s samples into this histogram (counts, sums and buckets
  /// add; min/max combine). `other` must outlive the call and must not be
  /// this histogram (self-merge throws std::invalid_argument); merging two
  /// histograms into each other concurrently is not supported.
  void merge(const Histogram& other);
  void reset();

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t buckets_[kBuckets] = {};
};

class MetricsRegistry {
 public:
  /// Find-or-create; returned references stay valid for the registry's life.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Snapshot of every instrument. JSON shape:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  ///                            "mean":..,"buckets":[{"le":..,"count":..}]}}}
  /// (histogram buckets with zero count are omitted).
  std::string to_json() const;
  /// CSV rows: kind,name,count,sum,min,max,mean (counters/gauges fill the
  /// value into `sum`).
  std::string to_csv() const;

  /// Fold another registry's instruments into this one, creating missing
  /// instruments on the fly: counters and histograms combine additively,
  /// gauges ratchet upward (registry gauges are high-water marks by
  /// convention — see Gauge::max_of). Used to recombine the per-task shards
  /// of a parallel batch; merging shards in task-index order yields a
  /// snapshot independent of thread count and scheduling. `other` must not
  /// be written concurrently, must not be this registry (self-merge throws
  /// std::invalid_argument), and two registries must not merge each other
  /// at the same time.
  void merge(const MetricsRegistry& other);

  /// Zero every instrument (instruments themselves stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ecsim::obs
