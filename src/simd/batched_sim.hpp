// BatchedSim: the SIMD lockstep Monte Carlo engine (DESIGN.md §3.8). Runs
// W structurally identical trials — same diagram, different seeds — through
// ONE driver: one masked event queue, one time axis, one dispatch loop, one
// integration stepper. What the scalar Simulator pays per trial (heap push/
// pop and tie-draining, cone lookups, time advance, max_events bookkeeping)
// is paid once per *batch* here; only the irreducible per-trial work (the
// block's on_event/compute_outputs and its trace records) runs per lane.
// Blocks that declare uniform event handling (Block::event_uniformity) go
// further: their on_event itself runs ONCE per batch, leaving only the
// per-lane trace records — on event-dominated diagrams that is most of the
// dispatch work.
//
// Layout: each lane owns a full scalar arena (the CompiledModel offsets are
// shared — one compile for the whole batch) plus its own continuous state,
// Rng and Trace. Lanes therefore see bit-for-bit the scalar memory layout,
// and every Block runs unchanged through the ExecHost indirection
// (sim/block.hpp). RK4 stage arithmetic additionally runs lockstep across
// each lane's state vector through the pack<W> kernels.
//
// Divergence: when lanes' event schedules split (per-lane RNG in jittered
// delays, noise sources, fault gates), queue entries carry lane masks.
// Stateless models tolerate arbitrary divergence under masks. For stateful
// models a lane whose schedule stops sharing integration boundaries with the
// batch is *evicted* to the scalar spill path — rerun from t=0 on the plain
// Simulator — because splitting an RK interval at a foreign boundary changes
// rounding. Either way every lane's trace is bit-identical to a scalar run
// with the same seed; the property suite asserts it on random hybrid
// diagrams, every lane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/model.hpp"
#include "sim/simulator.hpp"

namespace ecsim::sim {

struct BatchedOptions {
  /// Per-trial options (horizon, integrator, refresh mode, reserves). The
  /// seed field is ignored — seeds are per-lane arguments to run(). The
  /// obs hooks (tracer/metrics) and the legacy_* bench cost models are not
  /// routed into the batched driver; spill-lane reruns drop them too so a
  /// spilled trial stays bit-identical to its lockstep siblings.
  SimOptions base;
  /// Number of lanes; 0 picks simd::preferred_batch_width(). Capped at 64
  /// (masks are one uint64_t).
  std::size_t width = 0;
};

class BatchedSim {
 public:
  /// Builds one fresh Model per call — lanes need W structurally identical
  /// model instances because discrete state lives in Block members.
  using ModelFactory = std::function<std::unique_ptr<Model>()>;

  /// Instantiates W models via `factory`, compiles lane 0's and shares the
  /// layout (offsets, orders, cones, event sinks) across all lanes. Throws
  /// if the factory's models disagree structurally.
  explicit BatchedSim(const ModelFactory& factory, BatchedOptions opts = {});
  ~BatchedSim();

  BatchedSim(const BatchedSim&) = delete;
  BatchedSim& operator=(const BatchedSim&) = delete;

  /// Run seeds.size() trials (<= width()) from t=0 to base.end_time, one
  /// per lane. May be called repeatedly; every call restarts cleanly.
  void run(std::span<const std::uint64_t> seeds);

  std::size_t width() const { return lanes_.size(); }
  /// Lanes occupied by the latest run().
  std::size_t lanes_run() const { return active_; }
  /// Trace of lane `lane` from the latest run — bit-identical to a scalar
  /// Simulator run of the same model with the same seed and base options.
  const Trace& trace(std::size_t lane) const;
  std::size_t events_dispatched(std::size_t lane) const;
  /// Lanes the latest run() evicted to the scalar spill path.
  std::size_t evictions() const { return evictions_; }

  const CompiledModel& compiled() const { return *compiled_; }

 private:
  struct Lane;  // per-lane ExecHost: arena, state, rng, trace (in the .cpp)

  /// A scheduled activation shared by every lane whose bit is set in `mask`.
  struct MaskedEvent {
    Time time;
    std::uint64_t seq;
    std::size_t block;
    std::size_t event_in;
    std::uint64_t mask;
  };

  /// One pending emission collected from a lane during dispatch, already
  /// sink-expanded and in absolute time (future emissions and same-instant
  /// cascades both). Compared across lanes — streamed against the first
  /// lane's list as it is collected — for the consensus merge in
  /// flush_collected().
  struct Pending {
    Time time;
    std::size_t block;
    std::size_t event_in;
    bool operator==(const Pending&) const = default;
  };

  /// One activation at the current instant, on the shared work list walked
  /// by dispatch_instant(): heap ties first (in (time, seq) order), then
  /// same-instant cascades in emission order.
  struct InstEntry {
    std::size_t block;
    std::size_t event_in;
    std::uint64_t mask;
  };

  /// The scalar EventQueue's flat 4-ary heap with a mask per entry; same
  /// (time, seq) FIFO tie order, so each lane's subsequence pops in exactly
  /// the order its scalar run would.
  class MaskedQueue {
   public:
    bool empty() const { return heap_.empty(); }
    Time next_time() const { return heap_.front().time; }
    const MaskedEvent& front() const { return heap_.front(); }
    void reserve(std::size_t n) { heap_.reserve(n); }
    void clear() {
      heap_.clear();
      next_seq_ = 0;
    }
    void push(Time t, std::size_t block, std::size_t event_in,
              std::uint64_t mask);
    MaskedEvent pop_top();
    /// Pop every entry tied at the front time, in (time, seq) order.
    void pop_simultaneous(std::vector<MaskedEvent>& out);

   private:
    void sift_down(std::size_t i);
    std::vector<MaskedEvent> heap_;
    std::uint64_t next_seq_ = 0;
  };

  void lane_collect(std::size_t lane, Time at, std::size_t block,
                    std::size_t event_in);
  void begin_collect(std::size_t lane, bool first);
  void end_collect(std::size_t lane);
  void flush_collected();
  void route_pending(const Pending& p, std::uint64_t mask);
  void dispatch_instant();
  bool entry_uniform(const InstEntry& e) const;
  void execute_uniform(std::size_t block, std::size_t event_in,
                       std::uint64_t mask);
  void record_uniform_run(std::size_t begin, std::size_t end);
  void dispatch_lane_turn(std::size_t lane, bool first, std::size_t begin,
                          std::size_t end);
  void refresh_lane(Lane& lane, std::span<const std::size_t> order, Time t);
  void refresh_dynamic_lane(Lane& lane, Time t);
  void eval_derivatives_lane(Lane& lane, Time t, const std::vector<double>& x,
                             std::vector<double>& dx);
  void integrate_lanes(Time t0, Time t1);
  void rk4_lockstep(Time t0, Time t1);
  void evict_lanes(std::uint64_t mask);
  void run_spill(Lane& lane);

  BatchedOptions opts_;
  std::unique_ptr<CompiledModel> compiled_;  // lane 0's layout, shared
  std::vector<std::unique_ptr<Lane>> lanes_;
  // Streaming consensus state for the current activation (one masked
  // dispatch, or one block's initialize across lanes). The first lane
  // records into ref_emis_; later lanes compare against it in place and
  // only fall back to a private emis_[lane] list on divergence, so the
  // all-lanes-agree common case touches one hot vector instead of W.
  std::vector<Pending> ref_emis_;
  std::vector<std::vector<Pending>> emis_;  // diverged lanes' collections
  enum class Collect { kRef, kCompare, kLaneLocal };
  Collect collect_mode_ = Collect::kRef;
  std::size_t cmp_pos_ = 0;
  std::uint64_t matched_mask_ = 0;
  std::uint64_t diverged_mask_ = 0;
  MaskedQueue queue_;
  std::vector<MaskedEvent> batch_;    // pop_simultaneous output, reused
  std::vector<InstEntry> instant_q_;  // current instant's work list, reused
  std::vector<EventRecord> run_records_;  // uniform run's records, reused
  // Uniform-dispatch classification (DESIGN.md §3.8): 0 varying, 1 lockstep,
  // 2 pure. Fixed at construction from the blocks' event_uniformity()
  // declarations plus structural gates; the lockstep_* flags track, per run,
  // which lockstep-class blocks may still execute once per batch.
  std::vector<std::uint8_t> uniform_class_;
  std::vector<std::uint8_t> lockstep_ok_;     // not yet demoted to per-lane
  std::vector<std::uint8_t> lockstep_armed_;  // shared object has advanced
  std::uint64_t uniform_mask_ = 0;  // nonzero while routing a uniform dispatch
  bool lane_active_ = false;
  bool in_integration_ = false;
  Time time_ = 0.0;
  std::uint64_t live_mask_ = 0;
  std::size_t active_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace ecsim::sim
