#include "sim/block.hpp"

// Block is header-only apart from the vtable; Context methods live in
// simulator.cpp where the buffers they touch are defined. This translation
// unit anchors Block's vtable and the library target.

namespace ecsim::sim {}  // namespace ecsim::sim
