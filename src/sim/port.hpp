// Port and wiring descriptors shared by Block, Model and Simulator.
#pragma once

#include <cstddef>
#include <vector>

namespace ecsim::sim {

/// Width (number of scalar lanes) of a data port.
struct PortSpec {
  std::size_t width = 1;
};

/// Identifies one data port of one block inside a Model.
struct PortRef {
  std::size_t block = 0;
  std::size_t port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// A data connection: exactly one producer output feeds a consumer input.
struct DataWire {
  PortRef from;  // (block, output port)
  PortRef to;    // (block, input port)
};

/// An event connection: an event output fans out to many event inputs.
struct EventWire {
  PortRef from;  // (block, event output port)
  PortRef to;    // (block, event input port)
};

/// Sentinel for "unconnected".
inline constexpr std::size_t kUnconnected = static_cast<std::size_t>(-1);

}  // namespace ecsim::sim
