// Simulation trace: time-stamped records of event dispatches and probed
// signals. The latency analysis module (eqs. 1-2 of the paper) and all
// control-performance metrics are computed from these records.
//
// Block names are interned once into a name table (indexed by block index,
// registered by the Simulator from the CompiledModel) instead of being
// copied into every EventRecord; records carry only indices and names are
// resolved on demand. Trace::operator== therefore stays a valid identity
// oracle: it compares the record streams and the name table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ecsim::sim {

using Time = double;

/// One block activation (an event consumed on an event input port).
struct EventRecord {
  Time time = 0.0;
  std::size_t block = 0;      // block index in the model
  std::size_t event_in = 0;   // which event input fired

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

/// One probed signal sample.
struct SignalRecord {
  Time time = 0.0;
  std::size_t block = 0;  // index of the probing block
  std::vector<double> values;

  friend bool operator==(const SignalRecord&, const SignalRecord&) = default;
};

/// Append-only trace populated by the simulator during a run.
class Trace {
 public:
  /// Fast path: the block's name must already be registered (the Simulator
  /// registers the whole model's name table before the run). Inline — this
  /// runs once per dispatched event.
  void record_event(Time t, std::size_t block, std::size_t event_in) {
    events_.push_back(EventRecord{t, block, event_in});
  }
  /// Bulk append of pre-built records (the batched engine's uniform runs
  /// write one shared record block to every lockstep lane): one capacity
  /// check + memcpy instead of a push per record.
  void append_events(std::span<const EventRecord> records) {
    events_.insert(events_.end(), records.begin(), records.end());
  }
  /// Compatibility path for hand-built traces: registers `name` for `block`
  /// on first sight (first registration wins), then records.
  void record_event(Time t, std::size_t block, std::size_t event_in,
                    const std::string& name);
  void record_signal(Time t, std::size_t block, std::vector<double> values);
  /// Hot-path overload: copies `values` into a vector recycled from the
  /// clear() pool, so steady-state probing allocates nothing once every
  /// sample slot has been warmed up (DESIGN.md §3.4).
  void record_signal(Time t, std::size_t block, std::span<const double> values);

  /// Install the block-index -> name table (typically
  /// CompiledModel::block_names()). Replaces any prior table.
  void register_block_names(std::vector<std::string> names);
  /// Register/overwrite one name (grows the table as needed).
  void set_block_name(std::size_t block, std::string_view name);
  /// Name of a block, or "" when unregistered.
  std::string_view block_name(std::size_t block) const;

  const std::vector<EventRecord>& events() const { return events_; }
  const std::vector<SignalRecord>& signals() const { return signals_; }

  /// Pre-size the record streams so long runs don't reallocate mid-trace.
  /// Size the hints from the run horizon and activation periods (e.g.
  /// end_time / period x expected fan-out). Never shrinks.
  void reserve(std::size_t events, std::size_t signals);

  /// Activation times of a given block (optionally restricted to one event
  /// input port; pass npos for any port).
  std::vector<Time> activation_times(
      std::size_t block,
      std::size_t event_in = static_cast<std::size_t>(-1)) const;

  /// Same, addressed by block name (aggregates if several blocks share it).
  std::vector<Time> activation_times_by_name(
      const std::string& name,
      std::size_t event_in = static_cast<std::size_t>(-1)) const;

  /// Time series (t, values[component]) of a probe block's records.
  std::vector<std::pair<Time, double>> series(std::size_t block,
                                              std::size_t component = 0) const;

  /// Same, addressed by the probing block's name.
  std::vector<std::pair<Time, double>> series_by_name(
      const std::string& name, std::size_t component = 0) const;

  /// Clears the record streams; the name table survives (it is structural,
  /// not per-run). Signal value vectors are recycled into an internal pool
  /// so a re-run records into already-sized buffers without allocating.
  void clear();

  /// Exact (bitwise on times/values) equality — the A/B oracle for the
  /// incremental-vs-full-refresh equivalence property. Also compares the
  /// name tables, so identity by (index, name) is preserved. The recycling
  /// pool is deliberately excluded: it is capacity, not content.
  friend bool operator==(const Trace& a, const Trace& b) {
    return a.events_ == b.events_ && a.signals_ == b.signals_ &&
           a.names_ == b.names_;
  }

 private:
  /// Keep pool_ able to absorb every live signal buffer without growing, so
  /// clear()'s recycle loop is allocation-free on a warmed trace.
  void reserve_pool();

  std::vector<EventRecord> events_;
  std::vector<SignalRecord> signals_;
  std::vector<std::string> names_;  // block index -> name ("" = unknown)
  std::vector<std::vector<double>> pool_;  // recycled signal value buffers
};

/// FNV-style word-wise digest over the record streams (times/values by their
/// exact bit patterns). Two traces with equal digests are bit-identical in
/// practice; the Monte Carlo drivers store one digest per trial so
/// batch-width/thread invariance can be asserted without keeping W full
/// traces alive. The name table is excluded: it is structural, not per-run.
std::uint64_t trace_digest(const Trace& trace);

}  // namespace ecsim::sim
