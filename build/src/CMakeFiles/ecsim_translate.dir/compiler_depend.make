# Empty compiler generated dependencies file for ecsim_translate.
# This may be replaced when dependencies are built.
