#!/usr/bin/env bash
# CI service job (DESIGN.md §3.9): the sweep-service daemon must
#   1. pass the svc test suites (wire protocol bit-exactness, LRU cache,
#      cache-key canonicalization properties, forked-daemon e2e) and the
#      ledger schema-v3 suites on a Release build;
#   2. survive a daemon smoke run driven through the REAL CLI: serve on a
#      unix socket, answer 100 mixed `--connect=` requests, stamp every
#      served request into the ledger with its cache disposition, and drain
#      to exit code 0 on SIGTERM;
#   3. hold the EXP-P9 perf guard (warm p50 >= 5x cold p50, 60% hit rate,
#      sharded grids byte-identical at 1|2|4 workers) and the EXP-N1
#      networked-control guard (monotone stability-margin degradation as bus
#      load rises, 1-vs-4-thread grid bit-equality, svc codec round-trip)
#      via `ctest -C bench` — BENCH_p9.json and BENCH_n1.json land in the
#      build dir, and the daemon-served `sweep network` grid must be
#      byte-identical to the in-process one;
#   4. pass the svc suites again under ASan+UBSan (fork/socket lifecycle,
#      frame codecs and the LRU splice paths are pointer-heavy).
#
# Usage: scripts/run_service_guard.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-service"
asan_dir="${repo_root}/build-service-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

svc_suites='^(ProtocolFraming|ProtocolFields|ProtocolCodec|ProtocolRequest|ProtocolMeta|ProtocolBits|ResultCacheTest|CacheKeyProperty|ServiceE2E|LedgerRecord|Ledger)\.'

# 1. Release build: svc + ledger suites.
cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "${JOBS}" \
  --target test_svc test_obs ecsim_flow bench_p9_service bench_n1_network
ctest --test-dir "${build_dir}" --output-on-failure -R "${svc_suites}"

# 2. Daemon smoke through the CLI.
flow="${build_dir}/tools/ecsim_flow"
sock="${build_dir}/svc_smoke.sock"
ledger="${build_dir}/svc_smoke_ledger.jsonl"
rm -f "${sock}" "${ledger}"

"${flow}" serve --socket="${sock}" --workers=2 --cache-mb=32 \
  --ledger="${ledger}" &
serve_pid=$!
trap 'kill -9 ${serve_pid} 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [[ -S "${sock}" ]] && break
  sleep 0.1
done
[[ -S "${sock}" ]] || { echo "FAIL: daemon socket never appeared"; exit 1; }

# 100 mixed requests: timing sweeps, network sweeps, fault sweeps and fault
# Monte Carlos with a handful of distinct seeds, so most requests repeat an
# earlier key and the ledger accumulates both computed and cache-served
# records.
for i in $(seq 1 100); do
  case $((i % 4)) in
    0) "${flow}" sweep timing --connect="${sock}" >/dev/null ;;
    1) "${flow}" sweep network --connect="${sock}" >/dev/null ;;
    2) "${flow}" fault sweep --connect="${sock}" --seed=$((i % 4 + 1)) \
         >/dev/null ;;
    3) "${flow}" fault montecarlo --connect="${sock}" --trials=8 \
         --seed=$((i % 4 + 1)) >/dev/null ;;
  esac
done

# EXP-N1 daemon fidelity: the daemon-served network grid must be
# byte-identical to the in-process serial one.
"${flow}" sweep network --threads=1 --csv-out="${build_dir}/n1_local.csv" \
  >/dev/null
"${flow}" sweep network --connect="${sock}" \
  --csv-out="${build_dir}/n1_daemon.csv" >/dev/null
cmp "${build_dir}/n1_local.csv" "${build_dir}/n1_daemon.csv" ||
  { echo "FAIL: daemon-served network grid differs from in-process"; exit 1; }

records=$(wc -l < "${ledger}")
if [[ "${records}" -lt 100 ]]; then
  echo "FAIL: expected >= 100 ledger records, got ${records}"
  exit 1
fi
grep -q '"served_from_cache": 1' "${ledger}" ||
  { echo "FAIL: no cache-served record in the ledger"; exit 1; }
grep -q '"served_from_cache": 0' "${ledger}" ||
  { echo "FAIL: no computed record in the ledger"; exit 1; }
"${flow}" ledger show --cache --ledger="${ledger}" | tail -3

# Clean SIGTERM drain: exit code 0 and the socket unlinked.
kill -TERM "${serve_pid}"
drain_rc=0
wait "${serve_pid}" || drain_rc=$?
trap - EXIT
if [[ "${drain_rc}" -ne 0 ]]; then
  echo "FAIL: daemon drain exited ${drain_rc}"
  exit 1
fi
if [[ -e "${sock}" ]]; then
  echo "FAIL: daemon left its socket behind"
  exit 1
fi
echo "smoke: OK (${records} ledger records, clean drain)"

# 3. EXP-P9 perf guard and EXP-N1 networked-control guard (write
# BENCH_p9.json / BENCH_n1.json into the build dir).
ctest --test-dir "${build_dir}" -C bench \
  -R '(bench_p9_service_guard|bench_n1_network_guard)' --output-on-failure

# 4. svc suites under ASan+UBSan.
cmake -S "${repo_root}" -B "${asan_dir}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DECSIM_SANITIZE=ON
cmake --build "${asan_dir}" -j "${JOBS}" --target test_svc test_obs
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir "${asan_dir}" --output-on-failure -R "${svc_suites}"

echo "run_service_guard: OK"
