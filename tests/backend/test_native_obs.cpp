// ABI v2 observability guards (DESIGN.md §3.6/§3.7): a native run with a
// Tracer and MetricsRegistry attached must no longer fall back — and must
// report the interpreter's observability bit for bit. Compared here:
//  - the sim::Trace (signal doubles, event order) — exact equality;
//  - every metric instrument value — exact equality (JSON snapshot);
//  - every *sim-domain* tracer record — exact equality after resolving
//    interned ids to strings (ids shift by one between the two paths
//    because the interpreter interns "sim.compile" first).
// Wall-domain spans carry real timestamps and are compared structurally
// (same names, same order) but not by value.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "backend/kind.hpp"
#include "blocks/examples.hpp"
#include "mathlib/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "properties/random_graphs.hpp"

namespace {

using namespace ecsim;

/// A tracer record with ids resolved to strings: comparable across tracers
/// whose intern order differs.
struct ResolvedEvent {
  std::string name;
  std::string track;
  obs::Domain domain = obs::Domain::kWall;
  double ts = 0.0;
  double dur = 0.0;
  std::string arg_name;
  double arg = 0.0;
  obs::Phase phase = obs::Phase::kSpan;

  friend bool operator==(const ResolvedEvent&, const ResolvedEvent&) = default;
};

std::vector<ResolvedEvent> resolve(const obs::Tracer& t, obs::Domain domain) {
  std::vector<ResolvedEvent> out;
  for (const obs::TraceEvent& e : t.snapshot()) {
    if (t.track_domain(e.track) != domain) continue;
    ResolvedEvent r;
    r.name = t.name(e.name);
    r.track = t.track_name(e.track);
    r.domain = domain;
    r.ts = e.ts;
    r.dur = e.dur;
    if (e.arg_name != obs::kNoArg) r.arg_name = t.name(e.arg_name);
    r.arg = e.arg;
    r.phase = e.phase;
    out.push_back(std::move(r));
  }
  return out;
}

backend::RunOptions obs_opts(backend::Kind k, double end_time,
                             std::uint64_t seed, obs::Tracer* t,
                             obs::MetricsRegistry* m) {
  backend::RunOptions o;
  o.kind = k;
  o.sim.end_time = end_time;
  o.sim.seed = seed;
  o.sim.tracer = t;
  o.sim.metrics = m;
  return o;
}

/// Both backends with full observability attached: native must actually run
/// natively and reproduce trace, metric values and sim-domain records.
void expect_obs_identical(sim::Model& model, double end_time,
                          std::uint64_t seed = 1) {
  obs::Tracer interp_tr(1u << 16);
  interp_tr.set_enabled(true);
  obs::MetricsRegistry interp_reg;
  backend::RunResult interp = backend::run(
      model,
      obs_opts(backend::Kind::kInterp, end_time, seed, &interp_tr,
               &interp_reg));

  obs::Tracer native_tr(1u << 16);
  native_tr.set_enabled(true);
  obs::MetricsRegistry native_reg;
  backend::RunResult native = backend::run(
      model,
      obs_opts(backend::Kind::kNative, end_time, seed, &native_tr,
               &native_reg));

  ASSERT_EQ(native.used, backend::Kind::kNative)
      << "fell back: " << native.fallback_reason;
  EXPECT_EQ(native.events_dispatched, interp.events_dispatched);
  EXPECT_TRUE(native.trace == interp.trace);

  // Metric values match instrument for instrument.
  EXPECT_EQ(native_reg.to_json(), interp_reg.to_json());

  // Sim-domain tracer records (event-dispatch instants on "sim/events")
  // match exactly — timestamps are simulated time, fully deterministic.
  const auto interp_sim = resolve(interp_tr, obs::Domain::kSim);
  const auto native_sim = resolve(native_tr, obs::Domain::kSim);
  ASSERT_FALSE(interp_sim.empty());
  ASSERT_EQ(native_sim.size(), interp_sim.size());
  for (std::size_t i = 0; i < interp_sim.size(); ++i) {
    EXPECT_EQ(native_sim[i], interp_sim[i]) << "sim-domain record " << i;
  }

  // Wall-domain spans: the native run carries no "sim.compile" span (it
  // compiled into a module instead); everything else appears in the same
  // order with the same names.
  std::vector<std::string> interp_wall, native_wall;
  for (const ResolvedEvent& e : resolve(interp_tr, obs::Domain::kWall)) {
    if (e.name == "sim.compile") continue;
    interp_wall.push_back(e.name);
  }
  for (const ResolvedEvent& e : resolve(native_tr, obs::Domain::kWall)) {
    native_wall.push_back(e.name);
  }
  EXPECT_EQ(native_wall, interp_wall);
}

TEST(NativeObs, ChainsTraceMetricsAndSpansIdentical) {
  sim::Model m = blocks::examples::make_chains(8);
  expect_obs_identical(m, 0.25);
}

TEST(NativeObs, ServoTraceMetricsAndSpansIdentical) {
  sim::Model m = blocks::examples::make_servo();
  expect_obs_identical(m, 1.0);
}

TEST(NativeObs, RandomHybridDiagramsIdentical) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    math::Rng rng(seed);
    sim::Model m = ecsim::testing::random_block_model(rng);
    SCOPED_TRACE("model seed " + std::to_string(seed));
    expect_obs_identical(m, 0.5, seed * 17 + 1);
  }
}

// Attached-but-disabled: the hooks stay dormant (tracer records nothing)
// but metrics still flow — exactly the interpreter's contract.
TEST(NativeObs, DisabledTracerRecordsNothingMetricsStillFlow) {
  sim::Model m = blocks::examples::make_chains(4);
  obs::Tracer tr(1u << 12);  // never enabled
  obs::MetricsRegistry reg;
  backend::RunResult r = backend::run(
      m, obs_opts(backend::Kind::kNative, 0.25, 1, &tr, &reg));
  ASSERT_EQ(r.used, backend::Kind::kNative)
      << "fell back: " << r.fallback_reason;
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_GT(reg.counter("sim.events_dispatched").value(), 0u);
  EXPECT_EQ(reg.counter("sim.events_dispatched").value(),
            r.events_dispatched);
}

// Tracer-only attachment (no registry): spans and instants still flow.
TEST(NativeObs, TracerOnlyAttachment) {
  sim::Model m = blocks::examples::make_chains(4);

  obs::Tracer interp_tr(1u << 14);
  interp_tr.set_enabled(true);
  backend::run(m, obs_opts(backend::Kind::kInterp, 0.25, 1, &interp_tr,
                           nullptr));

  obs::Tracer native_tr(1u << 14);
  native_tr.set_enabled(true);
  backend::RunResult r = backend::run(
      m, obs_opts(backend::Kind::kNative, 0.25, 1, &native_tr, nullptr));
  ASSERT_EQ(r.used, backend::Kind::kNative)
      << "fell back: " << r.fallback_reason;
  EXPECT_EQ(resolve(native_tr, obs::Domain::kSim),
            resolve(interp_tr, obs::Domain::kSim));
}

}  // namespace
