#include "aaa/architecture_graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecsim::aaa {

Time Medium::earliest_start(Time ready) const {
  if (arbitration != Arbitration::kTdma || tdma_slot <= 0.0) return ready;
  // Next slot boundary at or after `ready` (boundary hits count, with a
  // tolerance so k*slot computed two ways agrees).
  const double k = std::ceil(ready / tdma_slot - 1e-9);
  return std::max(0.0, k) * tdma_slot;
}

Time Medium::earliest_start(Time ready, std::size_t priority) const {
  if (arbitration != Arbitration::kTdma || tdma_slot <= 0.0 ||
      tdma_slots <= 1) {
    return earliest_start(ready);
  }
  // Owner slot s = priority % n starts at t = k*n*slot + s*slot. Next such
  // instant at or after `ready` (same boundary tolerance as above).
  const double round = static_cast<double>(tdma_slots) * tdma_slot;
  const double offset =
      static_cast<double>(priority % tdma_slots) * tdma_slot;
  const double k = std::ceil((ready - offset) / round - 1e-9);
  return std::max(0.0, k) * round + offset;
}

void ArchitectureGraph::set_tdma(MediumId m, Time slot, std::size_t slots) {
  if (m >= media_.size()) throw std::out_of_range("set_tdma: bad medium");
  if (slot <= 0.0) throw std::invalid_argument("set_tdma: slot must be > 0");
  if (slots == 0) throw std::invalid_argument("set_tdma: slots must be >= 1");
  media_[m].arbitration = Arbitration::kTdma;
  media_[m].tdma_slot = slot;
  media_[m].tdma_slots = slots;
}

void ArchitectureGraph::set_can(MediumId m, Time blocking) {
  if (m >= media_.size()) throw std::out_of_range("set_can: bad medium");
  if (blocking < 0.0) {
    throw std::invalid_argument("set_can: negative blocking time");
  }
  media_[m].arbitration = Arbitration::kCanPriority;
  media_[m].can_blocking = blocking;
}

void ArchitectureGraph::set_background_load(MediumId m, double load) {
  if (m >= media_.size()) {
    throw std::out_of_range("set_background_load: bad medium");
  }
  if (load < 0.0 || load >= 1.0) {
    throw std::invalid_argument(
        "set_background_load: load must be in [0, 1)");
  }
  media_[m].background_load = load;
}

ProcId ArchitectureGraph::add_processor(std::string name, std::string type) {
  if (name.empty()) throw std::invalid_argument("add_processor: empty name");
  for (const Processor& p : procs_) {
    if (p.name == name) {
      throw std::invalid_argument("add_processor: duplicate name '" + name + "'");
    }
  }
  procs_.push_back(Processor{std::move(name), std::move(type)});
  proc_media_.emplace_back();
  return procs_.size() - 1;
}

MediumId ArchitectureGraph::add_medium(std::string name, double bandwidth,
                                       Time latency) {
  if (bandwidth <= 0.0) {
    throw std::invalid_argument("add_medium: bandwidth must be > 0");
  }
  if (latency < 0.0) throw std::invalid_argument("add_medium: negative latency");
  media_.push_back(Medium{std::move(name), bandwidth, latency});
  medium_procs_.emplace_back();
  return media_.size() - 1;
}

void ArchitectureGraph::attach(ProcId p, MediumId m) {
  if (p >= procs_.size() || m >= media_.size()) {
    throw std::out_of_range("attach: id out of range");
  }
  auto& pm = proc_media_[p];
  if (std::find(pm.begin(), pm.end(), m) != pm.end()) return;  // idempotent
  pm.push_back(m);
  medium_procs_[m].push_back(p);
}

ProcId ArchitectureGraph::find_processor(const std::string& name) const {
  for (ProcId i = 0; i < procs_.size(); ++i) {
    if (procs_[i].name == name) return i;
  }
  throw std::out_of_range("find_processor: no processor named '" + name + "'");
}

MediumId ArchitectureGraph::find_medium(const std::string& name) const {
  for (MediumId i = 0; i < media_.size(); ++i) {
    if (media_[i].name == name) return i;
  }
  throw std::out_of_range("find_medium: no medium named '" + name + "'");
}

ArchitectureGraph ArchitectureGraph::bus_architecture(std::size_t n,
                                                      double bandwidth,
                                                      Time latency,
                                                      const std::string& type) {
  if (n == 0) throw std::invalid_argument("bus_architecture: n must be >= 1");
  ArchitectureGraph arch("bus-" + std::to_string(n));
  const MediumId bus =
      n > 1 ? arch.add_medium("bus", bandwidth, latency) : kNone;
  for (std::size_t i = 0; i < n; ++i) {
    const ProcId p = arch.add_processor("P" + std::to_string(i), type);
    if (bus != kNone) arch.attach(p, bus);
  }
  return arch;
}

}  // namespace ecsim::aaa
