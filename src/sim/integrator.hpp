// ODE integration strategies for the continuous part of the hybrid model.
// The simulator integrates the packed continuous state between event times;
// derivative evaluation re-runs the combinational (feedthrough) network.
//
// Hot-path memory discipline (DESIGN.md §3.4): the stage buffers (k1..k6,
// tmp, x5) live in an IntegratorWorkspace owned by the caller and reused
// across every inter-event interval, and the derivative callback is passed
// as a non-owning ecsim::function_ref. After the workspace has grown to the
// state dimension once, an integrate() call performs zero heap allocations.
#pragma once

#include <functional>
#include <vector>

#include "mathlib/function_ref.hpp"
#include "sim/trace.hpp"

namespace ecsim::sim {

/// dxdt(t, x, dx): write the derivative of `x` at time `t` into `dx`.
/// Non-owning view used on the hot path; see function_ref lifetime rules.
using DerivRef = ecsim::function_ref<void(Time, const std::vector<double>&,
                                          std::vector<double>&)>;

/// Owning flavour for callers that store a derivative function (tests,
/// hand-rolled drivers). Converts implicitly to DerivRef at the call site.
using DerivFn =
    std::function<void(Time, const std::vector<double>&, std::vector<double>&)>;

enum class IntegratorKind {
  kRk4,    // classic fixed-step Runge-Kutta 4
  kRkf45,  // Runge-Kutta-Fehlberg 4(5) with adaptive step
};

struct IntegratorOptions {
  IntegratorKind kind = IntegratorKind::kRk4;
  double max_step = 1e-3;   // upper bound on any step (both kinds)
  double rel_tol = 1e-8;    // RKF45 only
  double abs_tol = 1e-10;   // RKF45 only
  double min_step = 1e-12;  // RKF45 safety floor
};

/// Reusable stage buffers for integrate(). Owned by the runner (one per
/// Simulator / CompiledModel run state), sized on first use and then reused
/// so the steady-state loop never allocates. resize() only touches the heap
/// when growing beyond the high-water dimension.
class IntegratorWorkspace {
 public:
  void resize(std::size_t n) {
    if (n == n_) return;
    k1.resize(n);
    k2.resize(n);
    k3.resize(n);
    k4.resize(n);
    k5.resize(n);
    k6.resize(n);
    tmp.resize(n);
    x5.resize(n);
    n_ = n;
  }
  std::size_t size() const { return n_; }

  // Stage buffers, exposed directly: this is scratch memory, not state.
  // RKF45 swaps x5 with the caller's state vector on accepted steps, so x5
  // must always match the state's length (resize() maintains that).
  std::vector<double> k1, k2, k3, k4, k5, k6, tmp, x5;

 private:
  std::size_t n_ = 0;
};

/// Advance `x` from t0 to t1 (t1 >= t0) under the chosen scheme. The final
/// step is shortened to land exactly on t1, so event times are never
/// overstepped. Allocation-free once `ws` has reached the state dimension
/// (RKF45 may swap x's buffer with ws.x5; capacities are equal, values are
/// what the maths demand).
void integrate(const IntegratorOptions& opts, DerivRef dxdt, Time t0, Time t1,
               std::vector<double>& x, IntegratorWorkspace& ws);

/// Convenience overload with a throwaway workspace (tests, one-shot use).
void integrate(const IntegratorOptions& opts, DerivRef dxdt, Time t0, Time t1,
               std::vector<double>& x);

/// Bench-only A/B baseline: the pre-workspace path that allocates every
/// stage buffer per call, dispatches through std::function and copies
/// x = x5 on each accepted RKF45 step. Kept so bench_p4_hotpath can measure
/// the optimisation against the real legacy cost inside one binary
/// (SimOptions::legacy_integrator_alloc routes here). Bit-identical results
/// to integrate() — asserted by the hot-path equivalence property test.
void integrate_legacy_alloc(const IntegratorOptions& opts, const DerivFn& dxdt,
                            Time t0, Time t1, std::vector<double>& x);

}  // namespace ecsim::sim
