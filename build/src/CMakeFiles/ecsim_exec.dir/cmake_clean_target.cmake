file(REMOVE_RECURSE
  "libecsim_exec.a"
)
