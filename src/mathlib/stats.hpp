// Descriptive statistics used by latency/jitter analysis and benchmarks.
#pragma once

#include <cstddef>
#include <vector>

namespace ecsim::math {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;  // 95th percentile (nearest-rank on sorted sample)
};

Summary summarize(const std::vector<double>& sample);

/// q-quantile (0<=q<=1) by linear interpolation on the sorted sample.
double quantile(std::vector<double> sample, double q);

/// Peak-to-peak jitter: max - min.
double peak_to_peak(const std::vector<double>& sample);

/// Histogram with `bins` equal-width bins over [lo, hi]; values outside are
/// clamped into the end bins.
std::vector<std::size_t> histogram(const std::vector<double>& sample,
                                   double lo, double hi, std::size_t bins);

}  // namespace ecsim::math
