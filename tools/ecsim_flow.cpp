// ecsim_flow — command-line driver for the AAA flow on text specs:
//
//   ecsim_flow schedule  spec.txt   static schedule + makespan/utilization
//   ecsim_flow codegen   spec.txt   generated distributed executives (C-like)
//   ecsim_flow simulate  spec.txt   executive VM run: latencies + conformance
//   ecsim_flow validate  spec.txt   exit 0 iff schedulable within the period
//   ecsim_flow dot-alg   spec.txt   Graphviz DOT of the algorithm graph
//   ecsim_flow dot-arch  spec.txt   Graphviz DOT of the architecture
//   ecsim_flow dot-gantt spec.txt   Graphviz DOT of the schedule
//
// The spec format is documented in src/io/spec.hpp; see
// examples/specs/*.spec for ready-to-run inputs.
#include <cstdio>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "exec/conformance.hpp"
#include "io/dot.hpp"
#include "io/spec.hpp"
#include "latency/latency.hpp"

using namespace ecsim;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ecsim_flow <schedule|codegen|simulate|validate|"
               "dot-alg|dot-arch|dot-gantt> <spec-file>\n");
  return 2;
}

struct Flow {
  io::ParsedSpec spec;
  aaa::Schedule sched{0, 0};

  explicit Flow(const std::string& path) : spec(io::load_spec(path)) {
    if (!spec.has_algorithm) {
      throw std::runtime_error("spec has no [algorithm] section");
    }
    if (!spec.has_architecture) {
      throw std::runtime_error("spec has no [architecture] section");
    }
    sched = aaa::adequate(spec.algorithm, spec.architecture);
    sched.validate(spec.algorithm, spec.architecture);
  }
};

int cmd_schedule(const Flow& f) {
  std::printf("%s", f.sched.to_string(f.spec.algorithm, f.spec.architecture)
                        .c_str());
  const double period = f.spec.algorithm.period();
  if (period > 0.0) {
    std::printf("period %.6g, utilization %.1f%%%s\n", period,
                100.0 * f.sched.makespan() / period,
                f.sched.makespan() > period ? "  ** OVER PERIOD **" : "");
  }
  return 0;
}

int cmd_codegen(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  std::printf("%s", code.source.c_str());
  return 0;
}

int cmd_simulate(const Flow& f) {
  const aaa::GeneratedCode code =
      aaa::generate_executives(f.spec.algorithm, f.spec.architecture, f.sched);
  const double period = f.spec.algorithm.period() > 0.0
                            ? f.spec.algorithm.period()
                            : f.sched.makespan();
  exec::VmOptions opts;
  opts.iterations = 50;
  opts.period = period;
  opts.branch_chooser = exec::worst_case_branch_chooser();
  const exec::VmResult wcet_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, opts);
  const exec::ConformanceReport conf = exec::check_wcet_conformance(
      f.spec.algorithm, f.spec.architecture, f.sched, wcet_run, period);
  std::printf("WCET run: deadlock=%s conformance=%s (max error %.2e)\n",
              wcet_run.deadlock ? "YES" : "no", conf.ok ? "exact" : "VIOLATED",
              conf.max_time_error);

  exec::VmOptions rnd = opts;
  rnd.exec_time = exec::uniform_fraction_exec_time(0.5);
  rnd.branch_chooser = exec::uniform_branch_chooser();
  const exec::VmResult rnd_run = exec::run_executives(
      f.spec.algorithm, f.spec.architecture, f.sched, code, rnd);
  std::printf("random-times run: deadlock=%s, order preserved=%s\n",
              rnd_run.deadlock ? "YES" : "no",
              exec::check_order_preservation(f.spec.algorithm,
                                             f.spec.architecture, f.sched,
                                             rnd_run)
                      .ok
                  ? "yes"
                  : "NO");
  for (aaa::OpId op = 0; op < f.spec.algorithm.num_operations(); ++op) {
    const aaa::Operation& o = f.spec.algorithm.op(op);
    if (o.kind == aaa::OpKind::kCompute) continue;
    const auto series = latency::analyze_instants(
        o.name, rnd_run.completions(op), period);
    std::printf("%-12s %s latency: mean=%.6f max=%.6f jitter=%.6f\n",
                o.name.c_str(),
                o.kind == aaa::OpKind::kSensor ? "sampling " : "actuation",
                series.summary.mean, series.summary.max, series.jitter);
  }
  return 0;
}

int cmd_validate(const Flow& f) {
  const double period = f.spec.algorithm.period();
  if (period > 0.0 && f.sched.makespan() > period) {
    std::printf("INVALID: makespan %.6g exceeds period %.6g\n",
                f.sched.makespan(), period);
    return 1;
  }
  std::printf("OK: makespan %.6g within period %.6g\n", f.sched.makespan(),
              period);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return usage();
  const std::string command = argv[1];
  try {
    const Flow flow(argv[2]);
    if (command == "schedule") return cmd_schedule(flow);
    if (command == "codegen") return cmd_codegen(flow);
    if (command == "simulate") return cmd_simulate(flow);
    if (command == "validate") return cmd_validate(flow);
    if (command == "dot-alg") {
      std::printf("%s", io::to_dot(flow.spec.algorithm).c_str());
      return 0;
    }
    if (command == "dot-arch") {
      std::printf("%s", io::to_dot(flow.spec.architecture).c_str());
      return 0;
    }
    if (command == "dot-gantt") {
      std::printf("%s", io::schedule_to_dot(flow.spec.algorithm,
                                            flow.spec.architecture, flow.sched)
                            .c_str());
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ecsim_flow: %s\n", e.what());
    return 1;
  }
}
