// End-to-end daemon tests (ISSUE PR-9): fork a real server process, talk to
// it over its unix socket, and check the headline guarantees — daemon-served
// results are BIT-IDENTICAL to the in-process reference, repeats are served
// from the memo cache, a crashed worker is survived with one re-dispatch,
// and SIGTERM drains to exit code 0 with the socket unlinked.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/warm_cache.hpp"

namespace ecsim::svc {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

constexpr const char* kServoSpec = R"([algorithm]
name   servo-loop
period 0.01
op  sense sensor   2e-4 @P0
op  ctrl  compute  3e-3 @P1
op  act   actuator 2e-4 @P0
dep sense ctrl 8
dep ctrl  act  8

[architecture]
name  two-ecu
proc  P0 cpu
proc  P1 cpu
bus   can 2e4 2e-4 P0 P1
)";

/// A daemon forked for one test: run_server in a child process, SIGTERM +
/// reap on stop. Unique socket/ledger paths per instance (the parent pid is
/// stable across the fixture's lifetime, the counter distinguishes tests).
struct ServerHandle {
  pid_t pid = -1;
  std::string socket_path;
  std::string ledger_path;

  static int& instance_counter() {
    static int n = 0;
    return n;
  }

  void start(std::size_t workers, std::size_t cache_mb = 8) {
    const int id = instance_counter()++;
    const std::string base = "/tmp/ecsim_svc_test_" +
                             std::to_string(::getpid()) + "_" +
                             std::to_string(id);
    socket_path = base + ".sock";
    ledger_path = base + ".ledger.jsonl";
    ::unlink(socket_path.c_str());
    ::unlink(ledger_path.c_str());
    pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      ServeOptions opts;
      opts.socket_path = socket_path;
      opts.workers = workers;
      opts.cache_mb = cache_mb;
      opts.ledger_path = ledger_path;
      ::_exit(run_server(opts));
    }
    // Wait (up to ~5 s) for the socket to accept connections.
    for (int i = 0; i < 100; ++i) {
      Client probe;
      if (probe.connect(socket_path)) return;
      ::usleep(50 * 1000);
    }
    FAIL() << "daemon did not come up on " << socket_path;
  }

  /// SIGTERM, reap, and return the daemon's exit status (-1 on abnormal
  /// termination).
  int stop() {
    if (pid <= 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~ServerHandle() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status_, 0);
    }
    ::unlink(socket_path.c_str());
    ::unlink(ledger_path.c_str());
  }

 private:
  int status_ = 0;
};

Request small_timing_request() {
  Request req;
  req.verb = Verb::kSweepTiming;
  req.t_end = 0.2;  // short horizon keeps each cell ~1 ms
  req.rows = {0.0, 0.4, 0.8};
  req.cols = {0.0, 0.2};
  return req;
}

/// In-process reference: the same evaluation routine the workers run,
/// executed serially here. Bit-equality against this is the memoization
/// soundness check.
std::vector<sweep::SweepCell> reference_cells(const Request& req) {
  WarmCache warm(nullptr);
  std::vector<sweep::SweepCell> cells;
  for (std::size_t u = 0; u < req.units(); ++u) {
    sweep::SweepCell c;
    EXPECT_TRUE(decode_cell(evaluate_unit(req, u, warm), c));
    cells.push_back(c);
  }
  return cells;
}

TEST(ServiceE2E, ShardedSweepIsBitIdenticalToInProcessReference) {
  ServerHandle server;
  server.start(/*workers=*/2);
  const Request req = small_timing_request();
  const std::vector<sweep::SweepCell> want = reference_cells(req);

  Client client;
  ASSERT_TRUE(client.connect(server.socket_path)) << client.last_error();
  std::vector<sweep::SweepCell> got;
  ResponseMeta meta;
  ASSERT_TRUE(remote_sweep(client, req, got, meta)) << client.last_error();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(same_bits(got[i].iae, want[i].iae)) << "cell " << i;
    EXPECT_TRUE(same_bits(got[i].cost, want[i].cost)) << "cell " << i;
    EXPECT_TRUE(same_bits(got[i].act_jitter, want[i].act_jitter));
    EXPECT_EQ(got[i].stable, want[i].stable);
  }
  EXPECT_FALSE(meta.served_from_cache) << "first request must compute";
  EXPECT_EQ(meta.cache_units, req.units());
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, RepeatRequestIsServedEntirelyFromCache) {
  ServerHandle server;
  server.start(/*workers=*/1);
  const Request req = small_timing_request();

  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));
  std::vector<sweep::SweepCell> first, second;
  ResponseMeta m1, m2;
  ASSERT_TRUE(remote_sweep(client, req, first, m1));
  ASSERT_TRUE(remote_sweep(client, req, second, m2));
  EXPECT_EQ(m1.cache_hits, 0u);
  EXPECT_TRUE(m2.served_from_cache);
  EXPECT_EQ(m2.cache_hits, req.units());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_bits(second[i].cost, first[i].cost));
  }
  EXPECT_EQ(server.stop(), 0);

  // Both requests were stamped into the ledger with the cache disposition.
  const std::vector<obs::LedgerRecord> records =
      obs::read_ledger_file(server.ledger_path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].served_from_cache, 0);
  EXPECT_EQ(records[1].served_from_cache, 1);
  const obs::CacheSummary summary = obs::summarize_cache(records);
  EXPECT_EQ(summary.served, 1u);
  EXPECT_EQ(summary.computed, 1u);
  EXPECT_EQ(summary.untagged, 0u);
}

TEST(ServiceE2E, OverlappingFaultMcSeedRangesShareCacheEntries) {
  ServerHandle server;
  server.start(/*workers=*/1);
  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));

  Request lo;
  lo.verb = Verb::kFaultMc;
  lo.t_end = 0.2;
  lo.seed = 100;
  lo.trials = 4;
  lo.loss = 0.2;
  Request hi = lo;
  hi.seed = 102;  // trials {102,103} overlap lo's {100..103}

  sweep::FaultMonteCarloResult r1, r2;
  ResponseMeta m1, m2;
  ASSERT_TRUE(remote_fault_mc(client, lo, r1, m1)) << client.last_error();
  ASSERT_TRUE(remote_fault_mc(client, hi, r2, m2)) << client.last_error();
  EXPECT_EQ(m1.cache_hits, 0u);
  EXPECT_EQ(m2.cache_hits, 2u) << "trial aliasing must share entries";
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, VmMonteCarloRoundTripMatchesAndCaches) {
  ServerHandle server;
  server.start(/*workers=*/1);
  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));

  Request req;
  req.verb = Verb::kVmMc;
  req.trials = 20;
  req.iterations = 10;
  req.seed = 7;
  req.spec_text = kServoSpec;

  sweep::MonteCarloResult got, again;
  ResponseMeta m1, m2;
  ASSERT_TRUE(remote_vm_mc(client, req, got, m1)) << client.last_error();
  EXPECT_EQ(got.trials, 20u);
  EXPECT_EQ(m1.model_hash.rfind("spec:", 0), 0u);

  WarmCache warm(nullptr);
  sweep::MonteCarloResult want;
  ASSERT_TRUE(decode_mc(evaluate_unit(req, 0, warm), want));
  EXPECT_TRUE(same_bits(got.makespan.mean, want.makespan.mean));
  EXPECT_TRUE(same_bits(got.makespan.p95, want.makespan.p95));
  ASSERT_EQ(got.io_ops.size(), want.io_ops.size());
  for (std::size_t i = 0; i < want.io_ops.size(); ++i) {
    EXPECT_TRUE(same_bits(got.io_ops[i].mean_latency.mean,
                          want.io_ops[i].mean_latency.mean));
  }

  ASSERT_TRUE(remote_vm_mc(client, req, again, m2));
  EXPECT_TRUE(m2.served_from_cache);
  EXPECT_TRUE(same_bits(again.makespan.mean, got.makespan.mean));
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, CrashedWorkerIsSurvivedWithOneRedispatch) {
  ServerHandle server;
  server.start(/*workers=*/2);
  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));

  // Ask the daemon to crash one worker, then immediately send real work:
  // the dead lane's units must be re-dispatched and the merged grid must
  // still be bit-identical to the reference.
  Request kill;
  kill.verb = Verb::kKillWorker;
  Fields reply;
  ResponseMeta kmeta;
  ASSERT_TRUE(client.request(kill, reply, kmeta)) << client.last_error();

  const Request req = small_timing_request();
  const std::vector<sweep::SweepCell> want = reference_cells(req);
  std::vector<sweep::SweepCell> got;
  ResponseMeta meta;
  ASSERT_TRUE(remote_sweep(client, req, got, meta)) << client.last_error();
  EXPECT_GE(meta.redispatches, 1u) << "the crash must have been recovered";
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(same_bits(got[i].cost, want[i].cost)) << "cell " << i;
    EXPECT_TRUE(same_bits(got[i].iae, want[i].iae)) << "cell " << i;
  }

  // The replacement worker is in place: a further request works without any
  // re-dispatch and is served from cache.
  std::vector<sweep::SweepCell> again;
  ResponseMeta m2;
  ASSERT_TRUE(remote_sweep(client, req, again, m2));
  EXPECT_EQ(m2.redispatches, 0u);
  EXPECT_TRUE(m2.served_from_cache);
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, UnitErrorDoesNotLeakStaleRepliesIntoNextRequest) {
  ServerHandle server;
  server.start(/*workers=*/2);
  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));

  // Every unit of this request throws in the worker (negative latency
  // fraction makes run_latency_loop reject la < ls), but the request itself
  // validates fine, so all 12 units are dispatched across both lanes. The
  // master sees the first error reply while both lanes still hold in-flight
  // replies; without the drain those stale frames were consumed by the NEXT
  // request and matched to the wrong units.
  Request bad = small_timing_request();
  bad.rows = {-1.0, -1.0, -1.0};
  bad.cols = {0.0, 0.1, 0.2, 0.3};
  std::vector<sweep::SweepCell> cells;
  ResponseMeta bmeta;
  EXPECT_FALSE(remote_sweep(client, bad, cells, bmeta));
  EXPECT_FALSE(client.last_error().empty());

  // The follow-up request must compute clean, bit-identical results on the
  // same connection and the same (drained) workers.
  const Request good = small_timing_request();
  const std::vector<sweep::SweepCell> want = reference_cells(good);
  std::vector<sweep::SweepCell> got;
  ResponseMeta meta;
  ASSERT_TRUE(remote_sweep(client, good, got, meta)) << client.last_error();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_TRUE(same_bits(got[i].cost, want[i].cost)) << "cell " << i;
    EXPECT_TRUE(same_bits(got[i].iae, want[i].iae)) << "cell " << i;
    EXPECT_TRUE(same_bits(got[i].act_jitter, want[i].act_jitter))
        << "cell " << i;
  }
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, SigtermDrainUnlinksSocketAndExitsZero) {
  ServerHandle server;
  server.start(/*workers=*/2);
  struct stat st;
  EXPECT_EQ(::stat(server.socket_path.c_str(), &st), 0);
  EXPECT_EQ(server.stop(), 0);
  EXPECT_NE(::stat(server.socket_path.c_str(), &st), 0)
      << "drain must unlink the socket";
}

TEST(ServiceE2E, StatsAndPingVerbs) {
  ServerHandle server;
  server.start(/*workers=*/2);
  Client client;
  ASSERT_TRUE(client.connect(server.socket_path));

  Request ping;
  ping.verb = Verb::kPing;
  Fields reply;
  ResponseMeta meta;
  ASSERT_TRUE(client.request(ping, reply, meta));

  std::vector<sweep::SweepCell> cells;
  ResponseMeta sweep_meta;
  ASSERT_TRUE(remote_sweep(client, small_timing_request(), cells, sweep_meta));

  Request stats;
  stats.verb = Verb::kStats;
  ASSERT_TRUE(client.request(stats, reply, meta));
  std::uint64_t workers = 0, requests = 0, misses = 0;
  ASSERT_TRUE(reply.get_u64("workers", workers));
  ASSERT_TRUE(reply.get_u64("requests", requests));
  ASSERT_TRUE(reply.get_u64("misses", misses));
  EXPECT_EQ(workers, 2u);
  EXPECT_EQ(requests, 1u) << "only WORK requests count; ping/stats don't";
  EXPECT_EQ(misses, small_timing_request().units());
  EXPECT_EQ(server.stop(), 0);
}

TEST(ServiceE2E, ConnectFailureReportsReasonForFallback) {
  Client client;
  EXPECT_FALSE(client.connect("/tmp/ecsim_svc_no_such_socket.sock"));
  EXPECT_FALSE(client.last_error().empty());
  EXPECT_FALSE(client.connected());
}

}  // namespace
}  // namespace ecsim::svc
