#include "sim/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecsim::sim {
namespace {

// dx/dt = -x, x(0) = 1 -> x(t) = e^{-t}
const DerivFn kDecay = [](Time, const std::vector<double>& x,
                          std::vector<double>& dx) { dx[0] = -x[0]; };

TEST(Integrator, Rk4Accuracy) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRk4;
  opts.max_step = 1e-3;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 1.0, x);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-10);
}

TEST(Integrator, Rk4LandsExactlyOnEndTime) {
  // Interval not divisible by max_step: final partial step must be taken.
  IntegratorOptions opts;
  opts.max_step = 0.3;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 1.0, x);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-4);
}

TEST(Integrator, Rkf45AdaptsAndMeetsTolerance) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  opts.max_step = 0.5;
  opts.rel_tol = 1e-9;
  opts.abs_tol = 1e-12;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 2.0, x);
  EXPECT_NEAR(x[0], std::exp(-2.0), 1e-7);
}

TEST(Integrator, HarmonicOscillatorEnergyPreserved) {
  const DerivFn osc = [](Time, const std::vector<double>& x,
                         std::vector<double>& dx) {
    dx[0] = x[1];
    dx[1] = -x[0];
  };
  IntegratorOptions opts;
  opts.max_step = 1e-3;
  std::vector<double> x{1.0, 0.0};
  integrate(opts, osc, 0.0, 2.0 * std::numbers::pi, x);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 0.0, 1e-8);
}

TEST(Integrator, TimeDependentDerivative) {
  // dx/dt = t -> x(T) = T^2/2
  const DerivFn ramp = [](Time t, const std::vector<double>&,
                          std::vector<double>& dx) { dx[0] = t; };
  IntegratorOptions opts;
  opts.max_step = 1e-2;
  std::vector<double> x{0.0};
  integrate(opts, ramp, 0.0, 3.0, x);
  EXPECT_NEAR(x[0], 4.5, 1e-9);
}

TEST(Integrator, EmptyStateIsNoOp) {
  IntegratorOptions opts;
  std::vector<double> x;
  integrate(opts, kDecay, 0.0, 1.0, x);  // must not call dxdt
  EXPECT_TRUE(x.empty());
}

TEST(Integrator, BackwardIntervalThrows) {
  IntegratorOptions opts;
  std::vector<double> x{1.0};
  EXPECT_THROW(integrate(opts, kDecay, 1.0, 0.0, x), std::invalid_argument);
}

TEST(Integrator, ZeroLengthIntervalLeavesStateUntouched) {
  IntegratorOptions opts;
  std::vector<double> x{3.0};
  integrate(opts, kDecay, 1.0, 1.0, x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(Integrator, Rkf45ZeroLengthIntervalLeavesStateUntouched) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  std::vector<double> x{3.0};
  integrate(opts, kDecay, 2.0, 2.0, x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST(Integrator, Rkf45BackwardIntervalThrows) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  std::vector<double> x{1.0};
  EXPECT_THROW(integrate(opts, kDecay, 1.0, 0.0, x), std::invalid_argument);
  EXPECT_THROW(integrate_legacy_alloc(opts, kDecay, 1.0, 0.0, x),
               std::invalid_argument);
}

TEST(Integrator, Rkf45ForcedAcceptAtMinStepMakesProgress) {
  // Tolerance no step size can meet, with min_step == max_step pinning h.
  // Every attempt "fails" the error test, so only the h <= min_step
  // forced-accept branch lets time advance; without it this would loop
  // forever retrying the same step.
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  opts.max_step = 0.25;
  opts.min_step = 0.25;
  opts.rel_tol = 1e-16;
  opts.abs_tol = 1e-18;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 1.0, x);
  // Forced accepts take the 5th-order solution: four fixed h=0.25 steps.
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-6);
}

TEST(Integrator, Rkf45ZeroErrorEstimateGrowsStepAndCompletes) {
  // dx/dt = 0: the embedded 4th/5th-order solutions agree exactly, so the
  // scaled error is 0.0. The controller must treat that as "grow by the
  // cap" (the old code computed the growth factor from a stale err value);
  // either way the run must terminate quickly with the state untouched.
  const DerivFn zero = [](Time, const std::vector<double>&,
                          std::vector<double>& dx) { dx[0] = 0.0; };
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  opts.max_step = 0.5;
  std::vector<double> x{2.5};
  integrate(opts, zero, 0.0, 100.0, x);
  EXPECT_DOUBLE_EQ(x[0], 2.5);
}

TEST(Integrator, MinStepClampKeepsStepAboveFloor) {
  // A violently stiff interval start: the controller shrinks h, but the
  // min_step clamp must keep it from collapsing to denormal sizes — the run
  // completes in bounded work because h >= min_step always.
  const DerivFn stiff = [](Time, const std::vector<double>& x,
                           std::vector<double>& dx) { dx[0] = -1e6 * x[0]; };
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  opts.max_step = 1e-2;
  opts.min_step = 1e-7;
  opts.rel_tol = 1e-10;
  opts.abs_tol = 1e-12;
  std::vector<double> x{1.0};
  integrate(opts, stiff, 0.0, 1e-5, x);
  EXPECT_NEAR(x[0], std::exp(-10.0), 1e-4);
}

TEST(IntegratorWorkspace, ResizeGrowsOnceAndIsIdempotent) {
  IntegratorWorkspace ws;
  EXPECT_EQ(ws.size(), 0u);
  ws.resize(3);
  EXPECT_EQ(ws.size(), 3u);
  ASSERT_EQ(ws.k1.size(), 3u);
  ASSERT_EQ(ws.x5.size(), 3u);
  const double* k1 = ws.k1.data();
  ws.resize(3);  // same dimension: must not touch the buffers
  EXPECT_EQ(ws.k1.data(), k1);
}

TEST(Integrator, WorkspacePathMatchesLegacyBitExact) {
  // The workspace/function_ref path and the legacy allocating path must
  // produce byte-identical states: same stage kernels, same accumulation
  // order, only the buffer ownership differs.
  const DerivFn osc = [](Time, const std::vector<double>& x,
                         std::vector<double>& dx) {
    dx[0] = x[1];
    dx[1] = -x[0] - 0.3 * x[1];
  };
  for (const IntegratorKind kind :
       {IntegratorKind::kRk4, IntegratorKind::kRkf45}) {
    IntegratorOptions opts;
    opts.kind = kind;
    opts.max_step = 7e-3;
    std::vector<double> x_ws{1.0, 0.5};
    std::vector<double> x_legacy = x_ws;
    IntegratorWorkspace ws;
    integrate(opts, osc, 0.0, 1.7, x_ws, ws);
    integrate_legacy_alloc(opts, osc, 0.0, 1.7, x_legacy);
    EXPECT_EQ(x_ws, x_legacy);  // bitwise, not approximate

    // Reusing the warmed workspace for a second interval stays identical.
    std::vector<double> x_ws2{1.0, 0.5};
    std::vector<double> x_legacy2 = x_ws2;
    integrate(opts, osc, 0.3, 2.0, x_ws2, ws);
    integrate_legacy_alloc(opts, osc, 0.3, 2.0, x_legacy2);
    EXPECT_EQ(x_ws2, x_legacy2);
  }
}

}  // namespace
}  // namespace ecsim::sim
