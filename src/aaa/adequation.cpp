#include "aaa/adequation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ecsim::aaa {

namespace {

struct Placement {
  ProcId proc = kNone;
  Time est = 0.0;  // earliest start time
  Time eft = 0.0;  // earliest finish time
};

/// Busy-interval timeline with gap-aware insertion. Release offsets (the
/// multirate hyperperiod expansion) make append-only timelines useless: a
/// late-released instance committed early must not block the idle time
/// before its release.
class Timeline {
 public:
  /// Earliest start >= ready such that [start, start+dur) fits in a gap,
  /// with each candidate snapped by `snap` (TDMA grids; identity for
  /// processors and immediate media).
  template <typename Snap>
  Time fit(Time ready, Time dur, Snap&& snap) const {
    Time candidate = snap(ready);
    for (const auto& [s, e] : busy_) {
      if (candidate + dur <= s + kEps) return candidate;
      if (candidate < e) candidate = snap(e);
    }
    return candidate;
  }
  Time fit(Time ready, Time dur) const {
    return fit(ready, dur, [](Time t) { return t; });
  }

  void insert(Time start, Time end) {
    auto it = std::lower_bound(
        busy_.begin(), busy_.end(), start,
        [](const std::pair<Time, Time>& iv, Time t) { return iv.first < t; });
    busy_.insert(it, {start, end});
  }

 private:
  static constexpr Time kEps = 1e-12;
  std::vector<std::pair<Time, Time>> busy_;  // sorted by start
};

}  // namespace

Schedule adequate(const AlgorithmGraph& alg, const ArchitectureGraph& arch,
                  const AdequationOptions& opts) {
  obs::ScopedSpan span(opts.tracer, "aaa.adequate", obs::Domain::kWall,
                       "runtime/aaa");
  obs::Counter* c_candidates = nullptr;
  obs::Counter* c_ops = nullptr;
  obs::Counter* c_comms = nullptr;
  if (opts.metrics != nullptr) {
    c_candidates = &opts.metrics->counter("aaa.candidates_evaluated");
    c_ops = &opts.metrics->counter("aaa.ops_scheduled");
    c_comms = &opts.metrics->counter("aaa.comms_committed");
  }

  const std::size_t n_ops = alg.num_operations();
  const std::size_t n_procs = arch.num_processors();
  const RouteTable routes(arch);
  const std::vector<Time> level = alg.tail_levels(opts.tail_comm_weight);
  const auto& deps = alg.dependencies();

  Schedule sched(n_procs, arch.num_media());
  std::vector<Timeline> proc_busy(n_procs);
  std::vector<Timeline> medium_busy(arch.num_media());
  std::vector<ProcId> placed(n_ops, kNone);
  std::vector<Time> op_end(n_ops, 0.0);

  std::vector<std::size_t> unsat_preds(n_ops, 0);
  for (const DataDep& d : deps) ++unsat_preds[d.to];
  std::vector<bool> ready(n_ops, false), done(n_ops, false);
  for (OpId i = 0; i < n_ops; ++i) ready[i] = unsat_preds[i] == 0;

  // Earliest data-ready instant of `op` on `proc` under current timelines
  // (release offset + producer completions + the communications the
  // placement would require). When `commit` is true the communications are
  // written into the schedule and onto the media timelines; otherwise this
  // is a pure estimate. Processor availability is handled by the caller via
  // gap-aware fitting.
  auto data_ready = [&](OpId op, ProcId proc, bool commit,
                        bool charge_comms) -> Time {
    Time ready = alg.op(op).release;
    for (std::size_t di = 0; di < deps.size(); ++di) {
      const DataDep& d = deps[di];
      if (d.to != op) continue;
      const ProcId src = placed[d.from];
      Time arrival = op_end[d.from];
      if (src != proc && charge_comms) {
        Time t = arrival;
        std::size_t hop_index = 0;
        for (const Hop& hop : routes.route(src, proc)) {
          const Medium& medium = arch.medium(hop.medium);
          const Time dur = medium.transfer_time(d.size);
          const std::size_t prio = alg.dep_priority(di);
          // Non-preemptive CAN blocking: a just-started lower-priority (or
          // background) frame can hold the bus for up to can_blocking after
          // this message becomes ready — charged once, before gap fitting;
          // interference from committed frames is the timeline's job.
          const Time req = medium.arbitration == Arbitration::kCanPriority
                               ? t + medium.can_blocking
                               : t;
          const Time start = medium_busy[hop.medium].fit(
              req, dur, [&](Time x) { return medium.earliest_start(x, prio); });
          const Time end = start + dur;
          if (commit) {
            sched.add_comm(ScheduledComm{di, hop, hop_index, start, end});
            medium_busy[hop.medium].insert(start, end);
            if (c_comms != nullptr) c_comms->add();
          }
          t = end;
          ++hop_index;
        }
        arrival = t;
      }
      ready = std::max(ready, arrival);
    }
    return ready;
  };

  auto feasible_procs = [&](OpId op) {
    const Operation& o = alg.op(op);
    std::vector<ProcId> out;
    for (ProcId p = 0; p < n_procs; ++p) {
      const Processor& proc = arch.processor(p);
      if (!o.runs_on(proc.type)) continue;
      if (o.bound_processor && *o.bound_processor != proc.name) continue;
      bool reachable = true;
      for (const DataDep& d : deps) {
        if (d.to == op && placed[d.from] != p &&
            !routes.connected(placed[d.from], p)) {
          reachable = false;
          break;
        }
      }
      if (reachable) out.push_back(p);
    }
    return out;
  };

  // Best placement + selection score of one ready operation against the
  // *committed* timelines only (commit=false throughout), so concurrent
  // evaluations of different operations never touch shared mutable state.
  auto evaluate = [&](OpId op) -> std::pair<Placement, double> {
    const Operation& o = alg.op(op);
    Placement best;
    best.eft = std::numeric_limits<double>::infinity();
    for (ProcId p : feasible_procs(op)) {
      const Time ready = data_ready(op, p, /*commit=*/false,
                                    /*charge_comms=*/opts.comm_aware);
      const Time wcet = o.wcet_on(arch.processor(p).type);
      const Time est = proc_busy[p].fit(ready, wcet);
      const Time eft = est + wcet;
      if (eft < best.eft) best = Placement{p, est, eft};
      if (c_candidates != nullptr) c_candidates->add();
    }
    if (best.proc == kNone) {
      throw std::runtime_error("adequate: no feasible processor for '" +
                               o.name + "'");
    }
    // Selection score (higher = scheduled first). Schedule pressure:
    // projected completion of the critical path through this operation if
    // placed now on its best processor. Earliest-finish: negated EFT.
    const double pressure = opts.rule == SelectionRule::kSchedulePressure
                                ? best.est + level[op]
                                : -best.eft;
    return {best, pressure};
  };

  std::vector<OpId> frontier;
  std::vector<std::pair<Placement, double>> scored;
  std::size_t remaining = n_ops;
  while (remaining > 0) {
    // Evaluate every ready candidate on its best processor. The frontier is
    // ascending by operation id; the evaluations are independent, so they
    // can fan out on the borrowed pool.
    frontier.clear();
    for (OpId op = 0; op < n_ops; ++op) {
      if (ready[op] && !done[op]) frontier.push_back(op);
    }
    scored.assign(frontier.size(), {});
    if (opts.pool != nullptr && frontier.size() >= opts.parallel_min_ready) {
      opts.pool->for_each(frontier.size(),
                          [&](std::size_t i, std::size_t /*worker*/) {
                            scored[i] = evaluate(frontier[i]);
                          });
    } else {
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        scored[i] = evaluate(frontier[i]);
      }
    }
    // Serial reduction in ascending operation order: strict > keeps the
    // lowest-id operation among equal pressures — the exact serial
    // tie-break — regardless of how the evaluations were scheduled.
    OpId chosen = kNone;
    Placement chosen_place;
    double chosen_pressure = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (scored[i].second > chosen_pressure) {
        chosen = frontier[i];
        chosen_place = scored[i].first;
        chosen_pressure = scored[i].second;
      }
    }

    // Commit: schedule communications for real (always charged, even in the
    // comm-blind ablation — physics does not go away), then the operation
    // into the earliest processor gap that fits.
    const Operation& o = alg.op(chosen);
    const ProcId p = chosen_place.proc;
    const Time ready_at =
        data_ready(chosen, p, /*commit=*/true, /*charge_comms=*/true);
    const Time wcet = o.wcet_on(arch.processor(p).type);
    const Time start = proc_busy[p].fit(ready_at, wcet);
    const Time end = start + wcet;
    sched.add_op(ScheduledOp{chosen, p, start, end});
    if (c_ops != nullptr) c_ops->add();
    proc_busy[p].insert(start, end);
    placed[chosen] = p;
    op_end[chosen] = end;
    done[chosen] = true;
    --remaining;
    for (const DataDep& d : deps) {
      if (d.from == chosen && --unsat_preds[d.to] == 0) ready[d.to] = true;
    }
  }
  return sched;
}

}  // namespace ecsim::aaa
