#include "io/dot.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"

namespace ecsim::io {
namespace {

TEST(Dot, ModelExportListsBlocksAndWireStyles) {
  sim::Model m;
  auto& c = m.add<blocks::Constant>("source\"x\"", 1.0);
  auto& g = m.add<blocks::Gain>("gain", 2.0);
  auto& clk = m.add<blocks::Clock>("clk", 1.0);
  auto& sh = m.add<blocks::SampleHold>("sh", 1);
  m.connect(c, 0, g, 0);
  m.connect(g, 0, sh, 0);
  m.connect_event(clk, 0, sh, 0);
  const std::string dot = to_dot(m, "loop");
  EXPECT_NE(dot.find("digraph \"loop\""), std::string::npos);
  EXPECT_NE(dot.find("source\\\"x\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(dot.find("style=dashed, color=red"), std::string::npos);
  // All four blocks present.
  for (const char* n : {"gain", "clk", "sh"}) {
    EXPECT_NE(dot.find(n), std::string::npos) << n;
  }
}

TEST(Dot, AlgorithmExportMarksKindsAndConditions) {
  aaa::AlgorithmGraph alg("demo", 0.01);
  const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
  aaa::Operation cond;
  cond.name = "ctrl";
  cond.branches = {aaa::Branch{"a", {{"cpu", 1e-4}}},
                   aaa::Branch{"b", {{"cpu", 2e-4}}}};
  const aaa::OpId c = alg.add_operation(std::move(cond));
  alg.add_dependency(s, c, 8.0);
  const std::string dot = to_dot(alg);
  EXPECT_NE(dot.find("invhouse"), std::string::npos);  // sensor shape
  EXPECT_NE(dot.find("2 branches"), std::string::npos);
  EXPECT_NE(dot.find("@P0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"8\""), std::string::npos);
}

TEST(Dot, ArchitectureExportShowsTdma) {
  auto arch = aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-4);
  arch.set_tdma(0, 0.001);
  const std::string dot = to_dot(arch);
  EXPECT_NE(dot.find("graph \"bus-2\""), std::string::npos);
  EXPECT_NE(dot.find("tdma="), std::string::npos);
  EXPECT_NE(dot.find("p0 -- m0"), std::string::npos);
  EXPECT_NE(dot.find("p1 -- m0"), std::string::npos);
}

TEST(Dot, ScheduleGantt) {
  aaa::AlgorithmGraph alg("chain", 0.01);
  const aaa::OpId s = alg.add_simple("sense", aaa::OpKind::kSensor, 1e-4, "P0");
  const aaa::OpId c = alg.add_simple("ctrl", aaa::OpKind::kCompute, 5e-4, "P1");
  alg.add_dependency(s, c, 8.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(2, 1e4, 1e-5);
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  const std::string dot = schedule_to_dot(alg, arch, sched);
  EXPECT_NE(dot.find("proc0"), std::string::npos);
  EXPECT_NE(dot.find("medium0"), std::string::npos);
  EXPECT_NE(dot.find("sense"), std::string::npos);
  EXPECT_NE(dot.find("sense\\>ctrl"), std::string::npos);
}

}  // namespace
}  // namespace ecsim::io
