// Coupled two-tank level process (linearized) — a slow chemical-process
// plant contrasting with the fast electromechanical benchmarks.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::plants {

struct CoupledTanksParams {
  double a1 = 0.05;    // tank 1 outflow rate [1/s]
  double a2 = 0.04;    // tank 2 outflow rate [1/s]
  double pump_gain = 0.1;  // inflow per unit pump command
};

/// States: [level h1, level h2]; input: pump command; output: h2.
control::StateSpace coupled_tanks(const CoupledTanksParams& p = {});

}  // namespace ecsim::plants
