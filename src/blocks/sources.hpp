// Signal and event sources: activation clocks (the paper's "clock generator"
// of Fig. 2), timetable clocks (precomputed activation instants extracted
// from a SynDEx schedule), and standard test signals.
#pragma once

#include <vector>

#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;
using sim::Time;

/// Periodic activation clock: emits an event on its single event output
/// every `period`, starting at `offset`. This is the stroboscopic-model
/// activation source that the graph of delays replaces.
class Clock : public Block {
 public:
  Clock(std::string name, Time period, Time offset = 0.0);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // Pure function of time: emit now, rearm one period ahead.
  EventUniformity event_uniformity() const override {
    return EventUniformity::kPure;
  }

  std::size_t event_out() const { return 0; }

 private:
  Time period_;
  Time offset_;
};

/// Emits events at fixed offsets within a repeating hyperperiod:
/// t = k*period + offsets[i] for all k >= 0 and all i. Used in "timetable
/// mode" to replay the completion instants of a static SynDEx schedule.
class TimetableClock : public Block {
 public:
  /// `offsets` must be non-decreasing and each < period.
  TimetableClock(std::string name, Time period, std::vector<Time> offsets);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;
  // The (next_, cycle_) cursor advances deterministically per activation.
  EventUniformity event_uniformity() const override {
    return EventUniformity::kLockstep;
  }

  std::size_t event_out() const { return 0; }

 private:
  Time period_;
  std::vector<Time> offsets_;
  std::size_t next_ = 0;  // index of next offset
  std::size_t cycle_ = 0;
};

/// Constant signal source.
class Constant : public Block {
 public:
  Constant(std::string name, std::vector<double> value);
  Constant(std::string name, double value)
      : Constant(std::move(name), std::vector<double>{value}) {}

  void compute_outputs(Context& ctx) override;
  void describe(ir::BlockIr& out) const override;

 private:
  std::vector<double> value_;
};

/// Step: y = initial before step_time, final after.
class Step : public Block {
 public:
  Step(std::string name, double initial, double final_value, Time step_time);

  void compute_outputs(Context& ctx) override;
  bool output_depends_on_time() const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  double initial_;
  double final_;
  Time step_time_;
};

/// Sine: y = amplitude * sin(2*pi*frequency*t + phase) + bias.
class Sine : public Block {
 public:
  Sine(std::string name, double amplitude, double frequency, double phase = 0.0,
       double bias = 0.0);

  void compute_outputs(Context& ctx) override;
  bool output_depends_on_time() const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  double amplitude_, frequency_, phase_, bias_;
};

/// Square/pulse wave with duty cycle in (0,1): `high` for the first
/// duty*period of each cycle, `low` for the rest.
class Pulse : public Block {
 public:
  Pulse(std::string name, double low, double high, Time period, double duty);

  void compute_outputs(Context& ctx) override;
  bool output_depends_on_time() const override { return true; }
  void describe(ir::BlockIr& out) const override;

 private:
  double low_, high_;
  Time period_;
  double duty_;
};

/// Sampled Gaussian noise: on each activation event the held output is
/// redrawn from N(mean, stddev). Models measurement noise / disturbances at
/// the sampling instants. Emits a done event after redrawing, so a sampler
/// chained behind it sees the fresh draw within the same instant.
class NoiseHold : public Block {
 public:
  NoiseHold(std::string name, double mean, double stddev);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t event_in() const { return 0; }
  std::size_t done_event_out() const { return 0; }

 private:
  double mean_, stddev_;
};

}  // namespace ecsim::blocks
