#include "exec/channel.hpp"

// Channel is header-only; this translation unit anchors the library target.
