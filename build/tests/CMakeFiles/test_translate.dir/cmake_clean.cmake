file(REMOVE_RECURSE
  "CMakeFiles/test_translate.dir/translate/test_conditioning.cpp.o"
  "CMakeFiles/test_translate.dir/translate/test_conditioning.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate/test_cosim.cpp.o"
  "CMakeFiles/test_translate.dir/translate/test_cosim.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate/test_extract.cpp.o"
  "CMakeFiles/test_translate.dir/translate/test_extract.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate/test_graph_of_delays.cpp.o"
  "CMakeFiles/test_translate.dir/translate/test_graph_of_delays.cpp.o.d"
  "test_translate"
  "test_translate.pdb"
  "test_translate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
