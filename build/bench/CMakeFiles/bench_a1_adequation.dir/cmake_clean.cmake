file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_adequation.dir/bench_a1_adequation.cpp.o"
  "CMakeFiles/bench_a1_adequation.dir/bench_a1_adequation.cpp.o.d"
  "bench_a1_adequation"
  "bench_a1_adequation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_adequation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
