// Property sweep of the fault-injection determinism contract (DESIGN.md
// §3.5): for random workloads, random architectures and random fault plans,
// (a) a zero-probability plan is bit-transparent, (b) same-seed replays are
// bit-identical, and (c) fault sweeps on par::BatchRunner are serial-
// identical for any thread count.
#include <gtest/gtest.h>

#include <cstring>

#include "aaa/adequation.hpp"
#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "exec/executive_vm.hpp"
#include "par/fault_sweep.hpp"
#include "plants/dc_servo.hpp"
#include "random_graphs.hpp"

namespace ecsim::fault {
namespace {

class FaultProperty : public ::testing::TestWithParam<std::uint64_t> {};

struct Workload {
  aaa::AlgorithmGraph alg;
  aaa::ArchitectureGraph arch;
  aaa::Schedule sched{0, 0};
  aaa::GeneratedCode code;
};

Workload random_workload(math::Rng& rng) {
  Workload w;
  w.alg = ecsim::testing::random_dag(rng, 8, 1.0);
  w.arch = ecsim::testing::random_bus(rng);
  w.sched = aaa::adequate(w.alg, w.arch);
  w.code = aaa::generate_executives(w.alg, w.arch, w.sched);
  return w;
}

FaultPlan random_plan(math::Rng& rng) {
  // Target "" (every medium / operation): random_bus may be a single node
  // with no media at all, and the contract must hold there too.
  FaultPlan plan;
  plan.seed = rng.uniform_int(1, 1 << 20);
  plan.message_loss("", 0.5 * rng.uniform());
  plan.message_delay("", 0.5 * rng.uniform(), 0.05 * rng.uniform());
  plan.message_duplicate("", 0.3 * rng.uniform(), 1);
  plan.op_overrun("", 0.3 * rng.uniform(), 1.0 + rng.uniform());
  return plan;
}

bool traces_identical(const exec::VmResult& a, const exec::VmResult& b) {
  if (a.ops.size() != b.ops.size() || a.comms.size() != b.comms.size() ||
      a.injections.size() != b.injections.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (std::memcmp(&a.ops[i], &b.ops[i], sizeof(exec::OpInstance)) != 0) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.comms.size(); ++i) {
    if (std::memcmp(&a.comms[i], &b.comms[i], sizeof(exec::CommInstance)) !=
        0) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    // Field-wise: Injection has padding after the enum, so memcmp would
    // compare indeterminate bytes.
    const Injection& x = a.injections[i];
    const Injection& y = b.injections[i];
    if (x.kind != y.kind || x.fault != y.fault || x.comm != y.comm ||
        x.op != y.op || x.iteration != y.iteration || x.at != y.at) {
      return false;
    }
  }
  return true;
}

TEST_P(FaultProperty, ZeroProbabilityPlansAreBitTransparent) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    const Workload w = random_workload(rng);
    exec::VmOptions plain;
    plain.iterations = 6;
    plain.period = 1.0;
    plain.exec_time = exec::uniform_fraction_exec_time(0.3);
    plain.seed = GetParam() * 7 + static_cast<std::uint64_t>(trial);
    exec::VmOptions armed = plain;
    armed.fault_plan.message_loss("", 0.0);
    armed.fault_plan.message_delay("", 0.0, 0.01);
    armed.fault_plan.op_overrun("", 0.0, 2.0);
    const exec::VmResult a =
        exec::run_executives(w.alg, w.arch, w.sched, w.code, plain);
    const exec::VmResult b =
        exec::run_executives(w.alg, w.arch, w.sched, w.code, armed);
    EXPECT_TRUE(traces_identical(a, b));
    EXPECT_TRUE(b.injections.empty());
  }
}

TEST_P(FaultProperty, SameSeedReplaysAreBitIdentical) {
  math::Rng rng(GetParam() * 13);
  for (int trial = 0; trial < 3; ++trial) {
    const Workload w = random_workload(rng);
    exec::VmOptions opts;
    opts.iterations = 6;
    opts.period = 1.0;
    opts.exec_time = exec::uniform_fraction_exec_time(0.3);
    opts.seed = GetParam() * 11 + static_cast<std::uint64_t>(trial);
    opts.fault_plan = random_plan(rng);
    opts.fault_policy = trial % 2 == 0 ? DegradationPolicy::kHoldLastSample
                                       : DegradationPolicy::kSkipCycle;
    const exec::VmResult a =
        exec::run_executives(w.alg, w.arch, w.sched, w.code, opts);
    const exec::VmResult b =
        exec::run_executives(w.alg, w.arch, w.sched, w.code, opts);
    ASSERT_FALSE(a.deadlock) << a.deadlock_info;
    EXPECT_TRUE(traces_identical(a, b));
    EXPECT_EQ(a.messages_lost, b.messages_lost);
    EXPECT_EQ(a.stale_reads, b.stale_reads);
  }
}

translate::LoopSpec servo_spec() {
  const control::StateSpace servo_ct = [] {
    control::StateSpace s = plants::dc_servo();
    s.c = math::Matrix::identity(2);
    s.d = math::Matrix::zeros(2, 1);
    return s;
  }();
  const double ts = 0.01;
  const control::StateSpace servo_dt = control::c2d(servo_ct, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_dt, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace tracking = servo_dt;
  tracking.c = math::Matrix{{1.0, 0.0}};
  tracking.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(tracking, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo_ct;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 0.3;
  spec.input = translate::ControllerInput::kStateRef;
  return spec;
}

TEST_P(FaultProperty, FaultSweepIsThreadCountInvariant) {
  // ISSUE acceptance: the sweep grid must be bit-identical at 1, 2 and 7
  // threads — the injection decisions are pure functions of their
  // coordinates, never of the work-stealing interleaving.
  sweep::FaultGrid grid;
  grid.loop = servo_spec();
  grid.dist.bind_ctrl = "P1";
  grid.loss_rates = {0.0, 0.25};
  grid.delays = {0.0, 0.001};
  grid.fault_seed = GetParam();

  std::vector<std::vector<sweep::FaultCell>> runs;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    par::BatchOptions opts;
    opts.threads = threads;
    runs.push_back(sweep::run_fault_sweep(grid, opts));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[0].size(), runs[r].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[0][i].cost, runs[r][i].cost) << "cell " << i;
      EXPECT_EQ(runs[0][i].iae, runs[r][i].iae) << "cell " << i;
      EXPECT_EQ(runs[0][i].messages_lost, runs[r][i].messages_lost);
      EXPECT_EQ(runs[0][i].messages_deferred, runs[r][i].messages_deferred);
      EXPECT_EQ(runs[0][i].stable, runs[r][i].stable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperty,
                         ::testing::Values(31u, 32u, 33u));

}  // namespace
}  // namespace ecsim::fault
