// Sampling/actuation latency analysis — the quantities of Section 2:
//   Ls_j(k) = I_j(k) - k*Ts   (eq. 1, sampling latency)
//   La_j(k) = O_j(k) - k*Ts   (eq. 2, actuation latency)
// where I_j(k) / O_j(k) are the instants at which the j-th input sampling /
// output actuation completed in period k. Instants come either from a sim
// Trace (graph-of-delays co-simulation) or from an executive VM run.
#pragma once

#include <string>
#include <vector>

#include "mathlib/stats.hpp"
#include "sim/trace.hpp"

namespace ecsim::latency {

using sim::Time;

/// Per-period latencies of one input or output channel.
struct LatencySeries {
  std::string channel;        // e.g. "y0 sampling" or "u0 actuation"
  std::vector<Time> instants; // I_j(k) or O_j(k), ordered by k
  std::vector<Time> latencies;  // instants[k] - k*Ts
  math::Summary summary;      // over latencies
  double jitter = 0.0;        // peak-to-peak of latencies
};

/// Compute latencies from raw completion instants. Each instant is assigned
/// to its period k = round(instant / ts) when `assign_by_rounding` is true
/// (robust to instants slightly after the period boundary), otherwise
/// instant i is period i (strict ordering, the SynDEx case where every
/// period produces exactly one instant).
LatencySeries analyze_instants(std::string channel,
                               const std::vector<Time>& instants, Time ts,
                               bool assign_by_rounding = false);

/// Extract the activation instants of a named block's event input from a
/// trace and run analyze_instants. For a SampleHold named `block`, event
/// input 0 activations are exactly the I/O instants of eqs. (1)-(2).
LatencySeries analyze_block_activations(const sim::Trace& trace,
                                        const std::string& block, Time ts,
                                        std::string channel = "");

/// Formatted table: k | instant | latency, followed by the summary row.
std::string to_table(const LatencySeries& s, std::size_t max_rows = 20);

/// Input-to-output latency per period: L_io(k) = O(k) - I(k), the delay the
/// control signal actually experiences between measure and reaction (the
/// quantity Cervin et al. call the input-output latency). Both series must
/// have one instant per period; the shorter length wins.
LatencySeries io_latency(const std::vector<Time>& sampling_instants,
                         const std::vector<Time>& actuation_instants,
                         Time ts);

}  // namespace ecsim::latency
