// Monte Carlo execution-time analysis over the executive VM (DESIGN.md
// §3.3): many VM runs of one static schedule, each drawing actual execution
// times (and optionally branches) from its own decorrelated RNG stream, and
// the per-trial latency/jitter statistics reduced across trials in trial
// order. This turns the single "actual times" run of EXP-F1 into a
// distributional statement — how much latency/jitter does the
// implementation *typically* exhibit, not just in one draw — and it is
// embarrassingly parallel.
#pragma once

#include <string>
#include <vector>

#include "aaa/codegen.hpp"
#include "mathlib/stats.hpp"
#include "par/batch_runner.hpp"

namespace ecsim::sweep {

struct MonteCarloSpec {
  std::size_t trials = 100;
  std::size_t iterations = 50;  // VM iterations per trial
  /// Actual execution time ~ uniform(bcet_fraction, 1.0) * WCET.
  double bcet_fraction = 0.5;
  /// Conditional ops draw a uniformly random branch per iteration (else the
  /// worst-case branch the schedule reserves).
  bool random_branches = true;
  /// Sensor release period; 0 = the algorithm's period, falling back to the
  /// schedule makespan for aperiodic graphs.
  aaa::Time period = 0.0;
  /// Trials per BatchRunner task (0 = simd::preferred_batch_width()).
  /// Seeds are drawn per *trial*, never per task, so the statistics are
  /// bit-identical for any batch width — the width only sets the task
  /// granularity the runner shards over.
  std::size_t batch_width = 0;
};

/// Distribution over trials of one I/O operation's per-trial statistics.
struct MonteCarloOpStats {
  aaa::OpId op = 0;
  std::string name;
  bool sensor = false;             // else actuator
  math::Summary mean_latency;      // per-trial mean of eq.(1)/(2) latencies
  math::Summary max_latency;       // per-trial max
  math::Summary jitter;            // per-trial peak-to-peak
};

struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t deadlocks = 0;       // trials that deadlocked (excluded below)
  math::Summary makespan;          // per-trial last completion instant
  std::vector<MonteCarloOpStats> io_ops;  // sensors + actuators, op order
  std::size_t batch_width = 1;     // effective trials-per-task granularity
  double wall_s = 0.0;
  double trials_per_s = 0.0;       // throughput over the whole batch
};

/// Run the trials on a BatchRunner (batch.seed roots the per-trial stream
/// family). Results are bit-identical for any thread count.
MonteCarloResult run_monte_carlo(const aaa::AlgorithmGraph& alg,
                                 const aaa::ArchitectureGraph& arch,
                                 const aaa::Schedule& sched,
                                 const aaa::GeneratedCode& code,
                                 const MonteCarloSpec& spec,
                                 const par::BatchOptions& batch = {});

/// Printable per-operation table of the distributions.
std::string to_string(const MonteCarloResult& result);

}  // namespace ecsim::sweep
