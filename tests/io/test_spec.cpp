#include "io/spec.hpp"

#include <gtest/gtest.h>

#include "aaa/adequation.hpp"

namespace ecsim::io {
namespace {

constexpr const char* kServoSpec = R"(
# comment line
[algorithm]
name   servo
period 0.01
op  sense sensor   2e-4 @P0   # trailing comment
op  ctrl  compute  3e-3 @P1
op  act   actuator 2e-4 @P0
dep sense ctrl 8
dep ctrl  act  8

[architecture]
name  two-ecu
proc  P0 cpu
proc  P1 cpu
bus   can 2e4 2e-4 P0 P1
)";

TEST(Spec, ParsesFullFlow) {
  const ParsedSpec spec = parse_spec(kServoSpec);
  ASSERT_TRUE(spec.has_algorithm);
  ASSERT_TRUE(spec.has_architecture);
  EXPECT_EQ(spec.algorithm.name(), "servo");
  EXPECT_DOUBLE_EQ(spec.algorithm.period(), 0.01);
  EXPECT_EQ(spec.algorithm.num_operations(), 3u);
  EXPECT_EQ(spec.algorithm.op(spec.algorithm.find("sense")).kind,
            aaa::OpKind::kSensor);
  EXPECT_EQ(spec.algorithm.op(spec.algorithm.find("ctrl")).bound_processor,
            "P1");
  EXPECT_EQ(spec.algorithm.dependencies().size(), 2u);
  EXPECT_DOUBLE_EQ(spec.algorithm.dependencies()[0].size, 8.0);
  EXPECT_EQ(spec.architecture.num_processors(), 2u);
  EXPECT_EQ(spec.architecture.num_media(), 1u);
  EXPECT_DOUBLE_EQ(spec.architecture.medium(0).bandwidth, 2e4);
  // The parsed artifacts feed the pipeline directly.
  const aaa::Schedule sched =
      aaa::adequate(spec.algorithm, spec.architecture);
  EXPECT_NO_THROW(sched.validate(spec.algorithm, spec.architecture));
}

TEST(Spec, ParsesConditionalOps) {
  const ParsedSpec spec = parse_spec(R"(
[algorithm]
period 0.02
op ctrl compute branch fast 5e-4 branch slow 6e-3
)");
  const aaa::Operation& op = spec.algorithm.op(0);
  ASSERT_TRUE(op.is_conditional());
  ASSERT_EQ(op.branches.size(), 2u);
  EXPECT_EQ(op.branches[1].name, "slow");
  EXPECT_DOUBLE_EQ(op.branches[1].wcet.at("cpu"), 6e-3);
}

TEST(Spec, RateDirectiveExpandsHyperperiod) {
  const ParsedSpec spec = parse_spec(R"(
[algorithm]
period 0.002
op s sensor 1e-4
op o compute 9e-4
dep s o
rate o 4
)");
  EXPECT_DOUBLE_EQ(spec.algorithm.period(), 0.008);
  // 4 sensor instances + 1 outer instance.
  EXPECT_EQ(spec.algorithm.num_operations(), 5u);
  EXPECT_NO_THROW(spec.algorithm.find("s@3"));
  EXPECT_NO_THROW(spec.algorithm.find("o@0"));
}

TEST(Spec, TdmaDirective) {
  const ParsedSpec spec = parse_spec(R"(
[architecture]
proc P0
proc P1
bus ttp 5e4 1e-4 P0 P1
tdma ttp 1e-3
)");
  EXPECT_EQ(spec.architecture.medium(0).arbitration, aaa::Arbitration::kTdma);
  EXPECT_DOUBLE_EQ(spec.architecture.medium(0).tdma_slot, 1e-3);
}

TEST(Spec, ErrorsCarryLineNumbers) {
  try {
    parse_spec("[algorithm]\nperiod 0.01\nop bad wrongkind 1e-4\n");
    FAIL() << "expected SpecParseError";
  } catch (const SpecParseError& e) {
    EXPECT_EQ(e.line_number, 3u);
    EXPECT_NE(std::string(e.what()).find("wrongkind"), std::string::npos);
  }
}

TEST(Spec, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec("op x compute 1e-4\n"), SpecParseError);  // no section
  EXPECT_THROW(parse_spec("[bogus]\n"), SpecParseError);
  EXPECT_THROW(parse_spec("[algorithm]\nop x compute notanumber\n"),
               SpecParseError);
  EXPECT_THROW(parse_spec("[algorithm]\nop x compute 1e-4 P0\n"),
               SpecParseError);  // missing @
  EXPECT_THROW(parse_spec("[algorithm]\nop x compute 1e-4\nrate y 2\n"),
               SpecParseError);  // unknown op
  EXPECT_THROW(parse_spec("[algorithm]\nop x compute 1e-4\nrate x 2.5\n"),
               SpecParseError);  // non-integer divisor
  EXPECT_THROW(parse_spec("[architecture]\ntdma nobus 1e-3\n"),
               SpecParseError);
  EXPECT_THROW(
      parse_spec("[algorithm]\nperiod 0.01\n"
                 "op c compute branch a 1e-4 branch b 2e-4\nrate c 2\n"),
      SpecParseError);  // conditional + multirate unsupported
}

TEST(Spec, NetworkMediumDirectives) {
  const ParsedSpec spec = parse_spec(R"(
[algorithm]
period 0.02
op s sensor 1e-4 @P0
op c compute 5e-4 @P1
op a actuator 1e-4 @P0
dep s c 8 prio 3
dep c a 8

[architecture]
proc P0
proc P1
bus can0 1e5 1e-5 P0 P1
can can0 2e-3
load can0 0.4
)");
  const aaa::Medium& m = spec.architecture.medium(0);
  EXPECT_EQ(m.arbitration, aaa::Arbitration::kCanPriority);
  EXPECT_DOUBLE_EQ(m.can_blocking, 2e-3);
  EXPECT_DOUBLE_EQ(m.background_load, 0.4);
  EXPECT_DOUBLE_EQ(m.effective_bandwidth(), 1e5 * 0.6);
  // Explicit priority on dep 0; dep 1 falls back to its index.
  EXPECT_EQ(spec.algorithm.dependencies()[0].priority, 3u);
  EXPECT_EQ(spec.algorithm.dep_priority(0), 3u);
  EXPECT_EQ(spec.algorithm.dep_priority(1), 1u);
}

TEST(Spec, TdmaOwnerSlotDirective) {
  const ParsedSpec spec = parse_spec(R"(
[architecture]
proc P0
proc P1
bus ttp 5e4 1e-4 P0 P1
tdma ttp 1e-3 4
)");
  const aaa::Medium& m = spec.architecture.medium(0);
  EXPECT_EQ(m.arbitration, aaa::Arbitration::kTdma);
  EXPECT_DOUBLE_EQ(m.tdma_slot, 1e-3);
  EXPECT_EQ(m.tdma_slots, 4u);
}

TEST(Spec, RejectsBadNetworkDirectives) {
  const std::string arch_head =
      "[architecture]\nproc P0\nproc P1\nbus b 1e5 0 P0 P1\n";
  // CAN and TDMA on the same bus are mutually exclusive.
  EXPECT_THROW(parse_spec(arch_head + "can b 1e-3\ntdma b 1e-3\n"),
               SpecParseError);
  // Directives must name a declared bus.
  EXPECT_THROW(parse_spec(arch_head + "can nobus\n"), SpecParseError);
  EXPECT_THROW(parse_spec(arch_head + "load nobus 0.5\n"), SpecParseError);
  // Load outside [0, 1) is rejected (by set_background_load).
  EXPECT_THROW(parse_spec(arch_head + "load b 1.0\n"), std::invalid_argument);
  // Priorities must be non-negative integers.
  EXPECT_THROW(parse_spec("[algorithm]\nop x sensor 1e-4\nop y compute 1e-4\n"
                          "dep x y 8 prio 1.5\n"),
               SpecParseError);
  EXPECT_THROW(parse_spec("[algorithm]\nop x sensor 1e-4\nop y compute 1e-4\n"
                          "dep x y 8 prio -1\n"),
               SpecParseError);
  // Explicit priorities are incompatible with the multirate expansion.
  EXPECT_THROW(parse_spec("[algorithm]\nperiod 0.002\nop s sensor 1e-4\n"
                          "op o compute 9e-4\ndep s o 8 prio 0\nrate o 4\n"),
               SpecParseError);
}

TEST(Spec, LoadSpecMissingFileThrows) {
  EXPECT_THROW(load_spec("/nonexistent/file.spec"), std::runtime_error);
}

}  // namespace
}  // namespace ecsim::io
