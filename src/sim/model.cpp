#include "sim/model.hpp"

namespace ecsim::sim {

Block& Model::add_block(std::unique_ptr<Block> b) {
  if (!b) throw std::invalid_argument("Model::add_block: null block");
  blocks_.push_back(std::move(b));
  return *blocks_.back();
}

std::size_t Model::index_of(const Block& b) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == &b) return i;
  }
  throw std::invalid_argument("Model::index_of: block not owned by this model");
}

std::size_t Model::index_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i]->name() == name) return i;
  }
  throw std::out_of_range("Model::index_by_name: no block named '" + name + "'");
}

void Model::connect(const Block& from, std::size_t out, const Block& to,
                    std::size_t in) {
  const std::size_t fi = index_of(from);
  const std::size_t ti = index_of(to);
  if (out >= from.num_outputs()) {
    throw std::out_of_range("Model::connect: output port out of range on '" +
                            from.name() + "'");
  }
  if (in >= to.num_inputs()) {
    throw std::out_of_range("Model::connect: input port out of range on '" +
                            to.name() + "'");
  }
  if (from.output_width(out) != to.input_width(in)) {
    throw std::invalid_argument("Model::connect: width mismatch between '" +
                                from.name() + "' and '" + to.name() + "'");
  }
  for (const auto& w : data_wires_) {
    if (w.to.block == ti && w.to.port == in) {
      throw std::invalid_argument("Model::connect: input already driven on '" +
                                  to.name() + "'");
    }
  }
  data_wires_.push_back(DataWire{{fi, out}, {ti, in}});
}

void Model::connect_event(const Block& from, std::size_t evt_out,
                          const Block& to, std::size_t evt_in) {
  const std::size_t fi = index_of(from);
  const std::size_t ti = index_of(to);
  if (evt_out >= from.num_event_outputs()) {
    throw std::out_of_range(
        "Model::connect_event: event output out of range on '" + from.name() +
        "'");
  }
  if (evt_in >= to.num_event_inputs()) {
    throw std::out_of_range(
        "Model::connect_event: event input out of range on '" + to.name() +
        "'");
  }
  event_wires_.push_back(EventWire{{fi, evt_out}, {ti, evt_in}});
}

}  // namespace ecsim::sim
