file(REMOVE_RECURSE
  "CMakeFiles/ecsim_aaa.dir/aaa/adequation.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/adequation.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/algorithm_graph.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/algorithm_graph.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/architecture_graph.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/architecture_graph.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/codegen.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/codegen.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/multirate.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/multirate.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/routing.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/routing.cpp.o.d"
  "CMakeFiles/ecsim_aaa.dir/aaa/schedule.cpp.o"
  "CMakeFiles/ecsim_aaa.dir/aaa/schedule.cpp.o.d"
  "libecsim_aaa.a"
  "libecsim_aaa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_aaa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
