# Empty compiler generated dependencies file for bench_c1_timing_sensitivity.
# This may be replaced when dependencies are built.
