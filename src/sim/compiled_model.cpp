#include "sim/compiled_model.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ecsim::sim {

CompiledModel::CompiledModel(Model& model)
    : model_(model), num_blocks_(model.num_blocks()) {
  block_names_.reserve(num_blocks_);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    block_names_.push_back(model_.block(b).name());
  }
  layout_arena();
  resolve_inputs();
  pack_states();
  flatten_event_wires();
  order_feedthrough();
  build_cones();
}

void CompiledModel::bounds_check(std::size_t index, std::size_t count,
                                 const char* what) {
  if (index >= count) throw std::out_of_range(what);
}

void CompiledModel::layout_arena() {
  // The arena starts with a zero prefix wide enough for any input, backing
  // unconnected inputs; no output slice maps there, so it is never written.
  std::size_t max_input_width = 0;
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const Block& blk = model_.block(b);
    for (std::size_t p = 0; p < blk.num_inputs(); ++p) {
      max_input_width = std::max(max_input_width, blk.input_width(p));
    }
  }
  arena_size_ = max_input_width;

  out_base_.assign(num_blocks_ + 1, 0);
  out_slices_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const Block& blk = model_.block(b);
    out_base_[b] = out_slices_.size();
    for (std::size_t p = 0; p < blk.num_outputs(); ++p) {
      out_slices_.push_back(ArenaSlice{arena_size_, blk.output_width(p)});
      arena_size_ += blk.output_width(p);
    }
  }
  out_base_[num_blocks_] = out_slices_.size();
}

void CompiledModel::resolve_inputs() {
  in_base_.assign(num_blocks_ + 1, 0);
  in_slices_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const Block& blk = model_.block(b);
    in_base_[b] = in_slices_.size();
    for (std::size_t p = 0; p < blk.num_inputs(); ++p) {
      // Unconnected: read the zero prefix at the input's declared width.
      in_slices_.push_back(ArenaSlice{0, blk.input_width(p)});
    }
  }
  in_base_[num_blocks_] = in_slices_.size();

  for (const DataWire& w : model_.data_wires()) {
    const Block& from = model_.block(w.from.block);
    const Block& to = model_.block(w.to.block);
    const std::size_t produced = from.output_width(w.from.port);
    const std::size_t consumed = to.input_width(w.to.port);
    if (produced != consumed) {
      throw std::invalid_argument(
          "CompiledModel: width mismatch on wire '" + from.name() +
          "' output " + std::to_string(w.from.port) + " (width " +
          std::to_string(produced) + ") -> '" + to.name() + "' input " +
          std::to_string(w.to.port) + " (width " + std::to_string(consumed) +
          ")");
    }
    in_slices_[in_base_[w.to.block] + w.to.port] =
        out_slices_[out_base_[w.from.block] + w.from.port];
  }
}

void CompiledModel::pack_states() {
  state_offset_.assign(num_blocks_, 0);
  stateful_blocks_.clear();
  total_state_ = 0;
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    state_offset_[b] = total_state_;
    const std::size_t nx = model_.block(b).continuous_state_size();
    total_state_ += nx;
    if (nx > 0) stateful_blocks_.push_back(b);
  }
}

void CompiledModel::flatten_event_wires() {
  sink_base_.assign(num_blocks_ + 1, 0);
  std::size_t slots = 0;
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    sink_base_[b] = slots;
    slots += model_.block(b).num_event_outputs();
  }
  sink_base_[num_blocks_] = slots;

  // CSR: count per (block, event_out), prefix-sum, then fill.
  std::vector<std::size_t> counts(slots, 0);
  for (const EventWire& w : model_.event_wires()) {
    ++counts[sink_base_[w.from.block] + w.from.port];
  }
  sink_ptr_.assign(slots + 1, 0);
  for (std::size_t s = 0; s < slots; ++s) {
    sink_ptr_[s + 1] = sink_ptr_[s] + counts[s];
  }
  event_sinks_.assign(sink_ptr_[slots], PortRef{});
  std::vector<std::size_t> fill(slots, 0);
  for (const EventWire& w : model_.event_wires()) {
    const std::size_t slot = sink_base_[w.from.block] + w.from.port;
    event_sinks_[sink_ptr_[slot] + fill[slot]++] = w.to;
  }
}

void CompiledModel::order_feedthrough() {
  // Kahn's algorithm over producer -> consumer edges where the consumer's
  // input has direct feedthrough.
  std::vector<std::vector<std::size_t>> succ(num_blocks_);
  std::vector<std::size_t> indeg(num_blocks_, 0);
  for (const DataWire& w : model_.data_wires()) {
    if (model_.block(w.to.block).input_feedthrough(w.to.port)) {
      succ[w.from.block].push_back(w.to.block);
      ++indeg[w.to.block];
    }
  }
  eval_order_.clear();
  eval_order_.reserve(num_blocks_);
  std::vector<std::size_t> ready;
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    if (indeg[b] == 0) ready.push_back(b);
  }
  while (!ready.empty()) {
    const std::size_t b = ready.back();
    ready.pop_back();
    eval_order_.push_back(b);
    for (std::size_t s : succ[b]) {
      if (--indeg[s] == 0) ready.push_back(s);
    }
  }
  if (eval_order_.size() != num_blocks_) {
    std::string loop_members;
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      if (indeg[b] != 0) loop_members += " '" + model_.block(b).name() + "'";
    }
    throw std::runtime_error("CompiledModel: algebraic loop involving:" +
                             loop_members);
  }
  topo_pos_.assign(num_blocks_, 0);
  for (std::size_t i = 0; i < eval_order_.size(); ++i) {
    topo_pos_[eval_order_[i]] = i;
  }
}

void CompiledModel::build_cones() {
  // Feedthrough successors, deduplicated (parallel wires between the same
  // pair of blocks would otherwise inflate the DFS).
  std::vector<std::vector<std::size_t>> succ(num_blocks_);
  for (const DataWire& w : model_.data_wires()) {
    if (model_.block(w.to.block).input_feedthrough(w.to.port)) {
      auto& s = succ[w.from.block];
      if (std::find(s.begin(), s.end(), w.to.block) == s.end()) {
        s.push_back(w.to.block);
      }
    }
  }

  const std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> stamp(num_blocks_, npos);
  std::vector<std::size_t> stack;
  std::vector<std::size_t> members;
  auto closure_of = [&](std::size_t root, std::size_t mark) {
    members.clear();
    stack.assign(1, root);
    stamp[root] = mark;
    members.push_back(root);
    while (!stack.empty()) {
      const std::size_t b = stack.back();
      stack.pop_back();
      for (std::size_t s : succ[b]) {
        if (stamp[s] != mark) {
          stamp[s] = mark;
          members.push_back(s);
          stack.push_back(s);
        }
      }
    }
    std::sort(members.begin(), members.end(),
              [&](std::size_t a, std::size_t b) {
                return topo_pos_[a] < topo_pos_[b];
              });
  };

  cone_base_.assign(num_blocks_ + 1, 0);
  cone_blocks_.clear();
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    cone_base_[b] = cone_blocks_.size();
    closure_of(b, b);
    cone_blocks_.insert(cone_blocks_.end(), members.begin(), members.end());
  }
  cone_base_[num_blocks_] = cone_blocks_.size();

  // Dynamic cone: union of the cones of every block whose outputs drift
  // between events without any event being dispatched — continuous state
  // (moved by the integrator) and declared time dependence.
  dynamic_cone_.clear();
  const std::size_t union_mark = num_blocks_;  // distinct from per-block marks
  std::vector<std::size_t> in_union(num_blocks_, npos);
  for (std::size_t b = 0; b < num_blocks_; ++b) {
    const Block& blk = model_.block(b);
    if (blk.continuous_state_size() == 0 && !blk.output_depends_on_time()) {
      continue;
    }
    closure_of(b, union_mark + b + 1);
    for (std::size_t m : members) {
      if (in_union[m] == npos) {
        in_union[m] = 0;
        dynamic_cone_.push_back(m);
      }
    }
  }
  std::sort(dynamic_cone_.begin(), dynamic_cone_.end(),
            [&](std::size_t a, std::size_t b) {
              return topo_pos_[a] < topo_pos_[b];
            });
}

}  // namespace ecsim::sim
