// Simulator: executes a Model. Hybrid semantics following Scicos:
//  - event queue orders discrete activations (deterministic FIFO among ties);
//  - between event instants the packed continuous state is integrated, with
//    the combinational (direct-feedthrough) network re-evaluated at every
//    integration stage in topological order;
//  - at an event instant, pending events are dispatched one at a time and the
//    combinational network is refreshed after each, so zero-delay event
//    chains (the paper's graph of delays) see causally consistent values.
//
// The structural work (wiring resolution, arena layout, topological orders,
// re-evaluation cones) lives in CompiledModel; the Simulator owns only the
// run state (arena values, continuous state, event queue, trace). By default
// re-evaluation is *incremental*: after dispatching an event on block b only
// b's feedthrough cone is refreshed, and between events only the dynamic
// (time/state-dependent) cone is refreshed. SimOptions::full_refresh
// restores the whole-network sweep for A/B equivalence checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mathlib/rng.hpp"
#include "sim/compiled_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/integrator.hpp"
#include "sim/model.hpp"
#include "sim/trace.hpp"

namespace ecsim::sim {

struct SimOptions {
  Time end_time = 1.0;
  IntegratorOptions integrator;
  std::uint64_t seed = 1;
  /// Hard cap on dispatched events; exceeding it aborts the run with an
  /// exception (guards against runaway zero-delay loops).
  std::size_t max_events = 20'000'000;
  /// Debug flag: re-evaluate the whole feedthrough network at every refresh
  /// point (the pre-compiled-core behaviour) instead of only the affected
  /// cone. The two paths must produce bit-identical traces; keeping the old
  /// sweep behind a flag makes that an assertable property.
  bool full_refresh = false;
};

class Simulator {
 public:
  /// Compiles the model (see CompiledModel for what that entails; throws on
  /// algebraic loops and width mismatches) and prepares a runner. The model
  /// must outlive the simulator and must not be structurally modified
  /// afterwards.
  explicit Simulator(Model& model, SimOptions opts = {});

  /// Run against an existing compile artifact (moved in). Lets callers
  /// compile once and build any number of runners from copies of the
  /// artifact without re-deriving orders and cones.
  Simulator(CompiledModel compiled, SimOptions opts = {});

  /// Run from t=0 to opts.end_time. May be called repeatedly; each call
  /// restarts from a clean initial state (blocks re-initialize).
  Trace& run();

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }
  Time current_time() const { return time_; }
  std::size_t events_dispatched() const { return events_dispatched_; }

  /// Final (or current) value of a data output lane — test convenience.
  double output_value(const Block& b, std::size_t port,
                      std::size_t lane = 0) const;

  const Model& model() const { return compiled_.model(); }
  const CompiledModel& compiled() const { return compiled_; }

 private:
  friend class Context;

  void refresh_blocks(std::span<const std::size_t> order, Time t);
  /// Refresh everything whose value can have drifted since the last refresh:
  /// the full network under full_refresh, the dynamic cone otherwise.
  void refresh_dynamic(Time t);
  void dispatch(const ScheduledEvent& e);
  void evaluate_derivatives(Time t, const std::vector<double>& x,
                            std::vector<double>& dx);

  // Context backends.
  std::span<const double> ctx_input(std::size_t block, std::size_t port) const;
  std::span<double> ctx_output(std::size_t block, std::size_t port);
  std::span<const double> ctx_state(std::size_t block) const;
  std::span<double> ctx_state_mut(std::size_t block);
  void ctx_emit(std::size_t block, std::size_t event_out, Time at);
  void ctx_schedule_self(std::size_t block, std::size_t event_in, Time at);

  CompiledModel compiled_;
  Model& model_;
  SimOptions opts_;
  math::Rng rng_;
  Trace trace_;
  EventQueue queue_;

  // Run state.
  std::vector<double> arena_;           // all output values (flat)
  Time time_ = 0.0;
  std::vector<double> x_;               // committed continuous state
  const double* active_x_ = nullptr;    // state viewed by blocks right now
  bool in_integration_ = false;
  std::size_t events_dispatched_ = 0;
};

}  // namespace ecsim::sim
