#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ecsim::sim {

// ---- Context methods (declared in block.hpp) --------------------------------

std::span<const double> Context::input(std::size_t port) const {
  return sim_->ctx_input(block_, port);
}

std::span<double> Context::output(std::size_t port) {
  return sim_->ctx_output(block_, port);
}

std::span<const double> Context::state() const {
  return sim_->ctx_state(block_);
}

std::span<double> Context::state_mut() { return sim_->ctx_state_mut(block_); }

void Context::emit(std::size_t event_out, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::emit: events may only be emitted from initialize()/on_event()");
  }
  if (delay < 0.0) throw std::invalid_argument("Context::emit: negative delay");
  sim_->ctx_emit(block_, event_out, time_ + delay);
}

void Context::schedule_self(std::size_t event_in, Time delay) {
  if (!in_event_) {
    throw std::logic_error(
        "Context::schedule_self: only from initialize()/on_event()");
  }
  if (delay < 0.0) {
    throw std::invalid_argument("Context::schedule_self: negative delay");
  }
  sim_->ctx_schedule_self(block_, event_in, time_ + delay);
}

math::Rng& Context::rng() { return sim_->rng_; }

Trace& Context::trace() { return sim_->trace_; }

// ---- Simulator ---------------------------------------------------------------

Simulator::Simulator(Model& model, SimOptions opts)
    : Simulator(CompiledModel(model), opts) {}

Simulator::Simulator(CompiledModel compiled, SimOptions opts)
    : compiled_(std::move(compiled)),
      model_(compiled_.model()),
      opts_(opts),
      rng_(opts.seed),
      arena_(compiled_.arena_size(), 0.0) {}

std::span<const double> Simulator::ctx_input(std::size_t block,
                                             std::size_t port) const {
  const ArenaSlice s = compiled_.input_slice(block, port);
  return std::span<const double>(arena_.data() + s.offset, s.width);
}

std::span<double> Simulator::ctx_output(std::size_t block, std::size_t port) {
  const ArenaSlice s = compiled_.output_slice(block, port);
  return std::span<double>(arena_.data() + s.offset, s.width);
}

std::span<const double> Simulator::ctx_state(std::size_t block) const {
  return std::span<const double>(active_x_ + compiled_.state_offset(block),
                                 model_.block(block).continuous_state_size());
}

std::span<double> Simulator::ctx_state_mut(std::size_t block) {
  if (in_integration_) {
    throw std::logic_error(
        "Context::state_mut: continuous state is read-only during integration");
  }
  return std::span<double>(x_.data() + compiled_.state_offset(block),
                           model_.block(block).continuous_state_size());
}

void Simulator::ctx_emit(std::size_t block, std::size_t event_out, Time at) {
  for (const PortRef& sink : compiled_.event_sinks(block, event_out)) {
    queue_.push(at, sink.block, sink.port);
  }
}

void Simulator::ctx_schedule_self(std::size_t block, std::size_t event_in,
                                  Time at) {
  if (event_in >= model_.block(block).num_event_inputs()) {
    throw std::out_of_range("schedule_self: event input out of range");
  }
  queue_.push(at, block, event_in);
}

void Simulator::refresh_blocks(std::span<const std::size_t> order, Time t) {
  for (std::size_t b : order) {
    Context ctx(this, b, t, /*in_event=*/false);
    model_.block(b).compute_outputs(ctx);
  }
}

void Simulator::refresh_dynamic(Time t) {
  refresh_blocks(
      opts_.full_refresh ? compiled_.eval_order() : compiled_.dynamic_cone(),
      t);
}

void Simulator::dispatch(const ScheduledEvent& e) {
  Block& blk = model_.block(e.block);
  trace_.record_event(e.time, e.block, e.event_in, blk.name());
  Context ctx(this, e.block, e.time, /*in_event=*/true);
  blk.on_event(ctx, e.event_in);
}

void Simulator::evaluate_derivatives(Time t, const std::vector<double>& x,
                                     std::vector<double>& dx) {
  active_x_ = x.data();
  refresh_dynamic(t);
  std::fill(dx.begin(), dx.end(), 0.0);
  for (std::size_t b : compiled_.stateful_blocks()) {
    Block& blk = model_.block(b);
    Context ctx(this, b, t, /*in_event=*/false);
    blk.derivatives(ctx,
                    std::span<double>(dx.data() + compiled_.state_offset(b),
                                      blk.continuous_state_size()));
  }
}

Trace& Simulator::run() {
  // Reset run state (including the RNG: same seed => same realization).
  rng_ = math::Rng(opts_.seed);
  time_ = 0.0;
  x_.assign(compiled_.total_state(), 0.0);
  active_x_ = x_.data();
  queue_.clear();
  trace_.clear();
  events_dispatched_ = 0;
  std::fill(arena_.begin(), arena_.end(), 0.0);

  // Initialize every block (may write state/outputs and schedule events),
  // then establish output consistency with one full sweep. From here on the
  // incremental path refreshes exactly the blocks whose value sources
  // (time, continuous state, discrete activations) changed.
  for (std::size_t b = 0; b < model_.num_blocks(); ++b) {
    Context ctx(this, b, 0.0, /*in_event=*/true);
    model_.block(b).initialize(ctx);
  }
  refresh_blocks(compiled_.eval_order(), 0.0);

  const Time t_end = opts_.end_time;
  while (true) {
    Time t_next = t_end;
    bool have_event = false;
    if (!queue_.empty() && queue_.next_time() <= t_end) {
      t_next = queue_.next_time();
      have_event = true;
    }
    if (t_next > time_) {
      if (compiled_.total_state() > 0) {
        in_integration_ = true;
        integrate(
            opts_.integrator,
            [this](Time t, const std::vector<double>& x,
                   std::vector<double>& dx) { evaluate_derivatives(t, x, dx); },
            time_, t_next, x_);
        in_integration_ = false;
        active_x_ = x_.data();
      }
      time_ = t_next;
      refresh_dynamic(time_);
    }
    if (!have_event) break;
    // Dispatch exactly one event, then re-examine the queue: zero-delay
    // emissions land behind already-pending simultaneous events (FIFO seq).
    const ScheduledEvent e = queue_.pop();
    dispatch(e);
    refresh_blocks(opts_.full_refresh ? compiled_.eval_order()
                                      : compiled_.cone(e.block),
                   time_);
    if (++events_dispatched_ > opts_.max_events) {
      throw std::runtime_error("Simulator: max_events exceeded (runaway loop?)");
    }
  }
  return trace_;
}

double Simulator::output_value(const Block& b, std::size_t port,
                               std::size_t lane) const {
  const std::size_t idx = model_.index_of(b);
  const ArenaSlice s = compiled_.output_slice(idx, port);
  if (lane >= s.width) {
    throw std::out_of_range("Simulator::output_value: lane out of range");
  }
  return arena_[s.offset + lane];
}

}  // namespace ecsim::sim
