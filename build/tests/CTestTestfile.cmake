# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_mathlib[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_blocks[1]_include.cmake")
include("/root/repo/build/tests/test_control[1]_include.cmake")
include("/root/repo/build/tests/test_plants[1]_include.cmake")
include("/root/repo/build/tests/test_aaa[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_latency[1]_include.cmake")
include("/root/repo/build/tests/test_translate[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
