#include "support/alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Relaxed ordering: the guard tests only read the counters before and after
// a single-threaded region, and TSan builds don't define ECSIM_ALLOC_GUARD.
std::atomic<std::size_t> g_allocs{0};
std::atomic<std::size_t> g_frees{0};

}  // namespace

namespace ecsim::testing {

bool alloc_guard_enabled() {
#ifdef ECSIM_ALLOC_GUARD
  return true;
#else
  return false;
#endif
}

std::size_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

std::size_t deallocation_count() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace ecsim::testing

#ifdef ECSIM_ALLOC_GUARD

// Replace every global allocation entry point. All variants funnel through
// these helpers; the full set (array, nothrow, aligned, sized) is provided
// so no call can slip past the counter or pair a counted new with an
// uncounted delete.

namespace {

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n == 0 ? 1 : n);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // ECSIM_ALLOC_GUARD
