// Model IR (DESIGN.md §3.6): the versioned, canonically-serialized, hashable
// compile artifact sitting between the front ends (block-diagram assembly,
// io::spec parsing + adequation) and the back ends (the interpreting
// Simulator, the native code generator, the executive VM).
//
// An ir::Model captures everything a backend needs and nothing it must
// re-derive:
//  - the block table: one BlockIr per block, with the structural contract
//    (port widths, event arity, continuous-state size, feedthrough flags,
//    time dependence) and — for blocks that describe() themselves — the kind
//    tag and the full parameter set as typed attributes. Blocks whose
//    behaviour lives in user closures stay `opaque`: structurally complete
//    (the interpreter can still lay them out and run them) but not
//    regenerable, so code generation refuses them and falls back.
//  - the wire lists (data + event), exactly as authored;
//  - the derived LayoutIr: arena offsets, input-resolution table, packed
//    state layout, event fan-out CSR, feedthrough topological order and
//    re-evaluation cones. finalize() derives it with the exact algorithms
//    the interpreter used to own, so every backend agrees on layout;
//  - optionally the AAA ScheduleIr: the executive VM's precompiled program
//    (instruction streams with WCETs resolved against processor types).
//
// Determinism contract: serialize() is canonical — the same Model value
// always produces the same bytes (doubles in hexfloat, fixed field order,
// no locale, no pointers, no timestamps) — and parse(serialize(m)) == m.
// hash() is FNV-1a 64 over those bytes, so it is stable across processes,
// platforms with IEEE-754 doubles, and thread counts, and changes whenever
// any semantic field (a parameter, a WCET, a wire) changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ecsim::ir {

inline constexpr int kIrVersion = 1;

/// One typed block parameter. The tag says which payload field is live.
struct Attr {
  enum class Kind { kInt, kReal, kRealVec, kMatrix, kString };

  std::string key;
  Kind kind = Kind::kInt;
  long long i = 0;            // kInt
  double r = 0.0;             // kReal
  std::vector<double> vec;    // kRealVec, kMatrix (row-major)
  std::size_t rows = 0;       // kMatrix
  std::size_t cols = 0;       // kMatrix
  std::string s;              // kString

  static Attr of_int(std::string key, long long v);
  static Attr of_real(std::string key, double v);
  static Attr of_vec(std::string key, std::vector<double> v);
  static Attr of_matrix(std::string key, std::size_t rows, std::size_t cols,
                        std::vector<double> row_major);
  static Attr of_string(std::string key, std::string v);

  bool operator==(const Attr&) const = default;
};

/// One block: structural contract + (when not opaque) the parameters needed
/// to regenerate its behaviour.
struct BlockIr {
  std::string kind;   // block type tag ("Gain", "EventDelay", ...); "" opaque
  std::string name;
  std::vector<std::size_t> in_widths;
  std::vector<std::size_t> out_widths;
  std::size_t n_event_in = 0;
  std::size_t n_event_out = 0;
  std::size_t state_size = 0;
  std::vector<bool> feedthrough;  // per data input
  bool time_dependent = false;
  /// True when the block's behaviour is not reconstructible from `attrs`
  /// (user closures: custom samplers, condition mappings, fault deciders).
  bool opaque = false;
  std::vector<Attr> attrs;

  const Attr* find(const std::string& key) const;
  bool operator==(const BlockIr&) const = default;
};

struct PortRefIr {
  std::size_t block = 0;
  std::size_t port = 0;
  bool operator==(const PortRefIr&) const = default;
};

struct SliceIr {
  std::size_t offset = 0;
  std::size_t width = 0;
  bool operator==(const SliceIr&) const = default;
};

struct WireIr {
  PortRefIr from;
  PortRefIr to;
  bool operator==(const WireIr&) const = default;
};

/// Derived layout tables (finalize()). Mirrors what the interpreter's
/// CompiledModel exposes; every backend adopts these instead of re-deriving.
struct LayoutIr {
  std::size_t arena_size = 0;
  std::vector<std::size_t> out_base;   // [num_blocks + 1]
  std::vector<SliceIr> out_slices;     // out_base[b] + port
  std::vector<std::size_t> in_base;    // [num_blocks + 1]
  std::vector<SliceIr> in_slices;      // in_base[b] + port
  std::vector<std::size_t> state_offset;  // [num_blocks]
  std::size_t total_state = 0;
  std::vector<std::size_t> stateful_blocks;
  std::vector<std::size_t> eval_order;  // full feedthrough topo order
  std::vector<std::size_t> topo_pos;    // inverse of eval_order
  std::vector<std::size_t> cone_base;   // [num_blocks + 1]
  std::vector<std::size_t> cone_blocks;
  std::vector<std::size_t> dynamic_cone;
  std::vector<std::size_t> sink_base;   // [num_blocks + 1]
  std::vector<std::size_t> sink_ptr;    // CSR over event_sinks
  std::vector<PortRefIr> event_sinks;

  bool operator==(const LayoutIr&) const = default;
};

// --- AAA schedule side (the executive VM's precompiled program) -------------

inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// One executive instruction with its timing resolved: mirrors
/// aaa::Instr plus the per-host-type WCET lookups the VM used to do at
/// compile_programs() time.
struct InstrIr {
  enum class Kind { kCompute, kSend, kRecv };
  Kind kind = Kind::kCompute;
  std::size_t op = kNoIndex;    // kCompute: operation id
  std::size_t comm = kNoIndex;  // kSend/kRecv: index into the comm list
  std::string label;
  bool release_gated = false;   // sensor or multirate release offset
  double release = 0.0;
  double wcet = 0.0;                 // unconditional ops
  std::vector<double> branch_wcets;  // conditional ops (empty otherwise)

  bool operator==(const InstrIr&) const = default;
};

/// Statically ordered program of one processor.
struct ExecutiveIr {
  std::size_t proc = 0;
  std::string resource;  // processor name
  std::vector<InstrIr> instrs;
  bool operator==(const ExecutiveIr&) const = default;
};

/// Transfer sequence of one medium.
struct CommunicatorIr {
  std::size_t medium = 0;
  std::string resource;  // medium name
  std::vector<std::size_t> comms;  // comm indices, in schedule order
  bool operator==(const CommunicatorIr&) const = default;
};

struct ScheduleIr {
  double period = 0.0;
  double makespan = 0.0;
  std::vector<ExecutiveIr> executives;
  std::vector<CommunicatorIr> communicators;
  bool operator==(const ScheduleIr&) const = default;
};

// --- the model --------------------------------------------------------------

struct Model {
  int version = kIrVersion;
  std::string name;

  // Block-diagram side (may be empty for schedule-only IRs).
  std::vector<BlockIr> blocks;
  std::vector<WireIr> data_wires;
  std::vector<WireIr> event_wires;
  LayoutIr layout;

  // AAA side (present when the model came through the adequation).
  bool has_schedule = false;
  ScheduleIr schedule;

  std::size_t num_blocks() const { return blocks.size(); }
  bool operator==(const Model&) const = default;
};

/// (Re)derives `m.layout` from blocks + wires: arena layout, input
/// resolution (throws std::invalid_argument on width mismatches), packed
/// states, event fan-out CSR, feedthrough topological order (throws
/// std::runtime_error on algebraic loops) and the re-evaluation cones.
/// These are the exact algorithms the interpreter executes — backends adopt
/// the result instead of re-deriving it.
void finalize(Model& m);

/// True when every block carries a kind tag and no block is opaque — i.e.
/// the model's behaviour is fully regenerable from the IR (code generation
/// and blocks::to_model() require this).
bool fully_described(const Model& m);

/// Canonical text form. Deterministic: field order fixed, doubles printed
/// as hexfloats, strings quoted/escaped. parse(serialize(m)) == m and
/// serialize(parse(text)) == text for any serialize()-produced text.
std::string serialize(const Model& m);

/// Parses the canonical text form; throws std::runtime_error with a line
/// context on malformed input or an unsupported version.
Model parse(const std::string& text);

/// Human/tool-readable JSON rendering (dump only; not parsed back).
std::string to_json(const Model& m);

/// FNV-1a 64 over serialize(m): stable across processes and platforms.
std::uint64_t hash(const Model& m);
/// hash() in fixed "0x%016llx" form — the spelling used by `ecsim_flow ir
/// hash`, BENCH_*.json stamps and the native-backend cache key.
std::string hash_hex(const Model& m);

}  // namespace ecsim::ir
