// Block: the unit of behaviour in the hybrid simulator, modeled on Scicos
// basic blocks. A block has regular (data) input/output ports, event input/
// output ports, an optional continuous state, and an optional discrete state
// held in its own members. Discrete blocks execute when they receive an
// activation event on an event input (paper §3.1); continuous blocks expose
// derivatives that the simulator integrates between events.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "mathlib/rng.hpp"
#include "sim/port.hpp"
#include "sim/trace.hpp"

namespace ecsim::sim {

class Context;

/// Backend a Context delegates to. The scalar Simulator implements it
/// directly; the batched SIMD engine (src/simd/batched_sim.hpp) implements it
/// once per lane, which is what lets unchanged Block code run under either
/// driver. The virtual hop replaces what was already an out-of-line
/// cross-TU call per Context operation, so the scalar hot path pays nothing
/// measurable for the indirection.
class ExecHost {
 public:
  virtual ~ExecHost() = default;

 protected:
  friend class Context;
  virtual std::span<const double> ctx_input(std::size_t block,
                                            std::size_t port) const = 0;
  virtual std::span<double> ctx_output(std::size_t block,
                                       std::size_t port) = 0;
  virtual std::span<const double> ctx_state(std::size_t block) const = 0;
  virtual std::span<double> ctx_state_mut(std::size_t block) = 0;
  virtual void ctx_emit(std::size_t block, std::size_t event_out, Time at) = 0;
  virtual void ctx_schedule_self(std::size_t block, std::size_t event_in,
                                 Time at) = 0;
  virtual math::Rng& ctx_rng() = 0;
  virtual Trace& ctx_trace() = 0;
};

/// Execution context handed to a block's computational functions. Resolves
/// data-port reads through the model wiring, exposes the block's continuous
/// state slice, and lets event handlers emit/schedule events.
class Context {
 public:
  Time time() const { return time_; }

  /// Current value of data input `port` (the connected producer's output,
  /// or zeros if unconnected).
  std::span<const double> input(std::size_t port) const;
  /// Scalar convenience for width-1 inputs.
  double in1(std::size_t port) const { return input(port)[0]; }

  /// This block's output buffer for data output `port`.
  std::span<double> output(std::size_t port);
  /// Scalar convenience for width-1 outputs.
  void set_out1(std::size_t port, double v) { output(port)[0] = v; }

  /// Continuous state slice of this block (read).
  std::span<const double> state() const;
  /// Continuous state slice of this block (write; allowed in initialize()
  /// and on_event() only — discrete jumps of the continuous state).
  std::span<double> state_mut();

  /// Emit an event on event output `event_out`, delivered to all connected
  /// event inputs after `delay` (>= 0) time units. Allowed in initialize()
  /// and on_event() only.
  void emit(std::size_t event_out, Time delay = 0.0);

  /// Schedule an activation of this block's own event input `event_in`
  /// after `delay` time units (self-clocking, e.g. periodic sources).
  void schedule_self(std::size_t event_in, Time delay);

  math::Rng& rng();
  Trace& trace();
  std::size_t block_index() const { return block_; }

  /// Built by an ExecHost (Simulator, batched lane host) around one call
  /// into a Block's computational functions. Blocks never construct these.
  Context(ExecHost* host, std::size_t block, Time time, bool in_event)
      : host_(host), block_(block), time_(time), in_event_(in_event) {}

 private:
  ExecHost* host_;
  std::size_t block_;
  Time time_;
  bool in_event_;  // true when events may be emitted (init / on_event)
};

/// Base class for all simulation blocks. Subclasses declare their ports and
/// state sizes in their constructor via the protected add_* functions, then
/// override the computational functions they need.
class Block {
 public:
  explicit Block(std::string name) : name_(std::move(name)) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  const std::string& name() const { return name_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_event_inputs() const { return event_inputs_; }
  std::size_t num_event_outputs() const { return event_outputs_; }
  std::size_t input_width(std::size_t port) const { return inputs_.at(port).width; }
  std::size_t output_width(std::size_t port) const { return outputs_.at(port).width; }
  std::size_t continuous_state_size() const { return nx_; }

  // --- computational functions (Scicos "jobs") -----------------------------

  /// Called once at the start of a run. Reset discrete state members, write
  /// initial outputs, set the initial continuous state, and schedule any
  /// initial events here.
  virtual void initialize(Context& ctx) { compute_outputs(ctx); }

  /// Refresh data outputs from inputs/state at ctx.time(). Called by the
  /// simulator in feedthrough-topological order whenever signal values are
  /// needed (integration stages, before event dispatch). Must be
  /// side-effect-free apart from writing outputs: no event emission, no
  /// discrete-state mutation.
  virtual void compute_outputs(Context& ctx) { (void)ctx; }

  /// Activation: an event arrived on event input `event_in`. Read inputs,
  /// update discrete state, write outputs, emit events.
  virtual void on_event(Context& ctx, std::size_t event_in) {
    (void)ctx;
    (void)event_in;
  }

  /// Time derivative of the continuous state; `dx` has
  /// continuous_state_size() entries.
  virtual void derivatives(Context& ctx, std::span<double> dx) {
    (void)ctx;
    (void)dx;
  }

  /// True if data output values depend instantaneously on data input `port`
  /// (direct feedthrough). Drives combinational evaluation ordering and
  /// algebraic-loop detection.
  virtual bool input_feedthrough(std::size_t port) const {
    (void)port;
    return false;
  }

  /// IR description (DESIGN.md §3.6): fill `out` with this block's kind tag
  /// and the typed attributes a backend needs to regenerate its behaviour
  /// (blocks::to_model, the native code generator). Structural fields —
  /// ports, event arity, state size, feedthrough, time dependence — are
  /// filled by sim::build_ir from the base-class API; describe() must only
  /// set `kind`, `attrs` and `opaque`. The default marks the block opaque:
  /// it still lays out and simulates, but cannot be regenerated from IR
  /// (blocks parameterized by user closures stay this way).
  virtual void describe(ir::BlockIr& out) const { out.opaque = true; }

  /// True if compute_outputs() reads ctx.time() — i.e. outputs drift as time
  /// advances even with unchanged inputs and state (signal generators such
  /// as Sine/Step/Pulse). Together with input_feedthrough() this drives the
  /// incremental re-evaluation cones: a block that reads the clock without
  /// declaring it here will hold stale outputs between events under the
  /// default incremental refresh (SimOptions::full_refresh restores the
  /// whole-network sweep). Blocks with continuous state are implicitly
  /// treated as time-varying and need not override this.
  virtual bool output_depends_on_time() const { return false; }

  /// How this block's event handling varies across lockstep Monte Carlo
  /// lanes (simd::BatchedSim, DESIGN.md §3.8). A uniform block's on_event
  /// runs ONCE per batch instead of once per lane, so declare the strongest
  /// class that truly holds:
  ///  - kVarying  (default): behaviour may differ between trials — it reads
  ///    the rng, data inputs, or state influenced by either. Always safe.
  ///  - kLockstep: on_event is a deterministic function of the activation
  ///    history and time only (mutable state allowed — e.g. a fixed-duration
  ///    EventDelay's busy window). Valid while every activation reaches all
  ///    live lanes; the batched driver evicts on the first partial-mask
  ///    activation.
  ///  - kPure: on_event is a pure function of (time, event_in) — no mutable
  ///    state at all (Clock, TdmaGate, EventMerge). Valid under any mask.
  /// Contract for both uniform classes: no ctx.rng(), no data-input reads,
  /// no data-output writes, no continuous state, no trace records. The
  /// lane-identity property suite runs every stock block through both the
  /// batched and the scalar engine, so a wrong declaration shows up as a
  /// digest mismatch.
  enum class EventUniformity { kVarying, kLockstep, kPure };
  virtual EventUniformity event_uniformity() const {
    return EventUniformity::kVarying;
  }

 protected:
  std::size_t add_input(std::size_t width = 1) {
    inputs_.push_back(PortSpec{width});
    return inputs_.size() - 1;
  }
  std::size_t add_output(std::size_t width = 1) {
    outputs_.push_back(PortSpec{width});
    return outputs_.size() - 1;
  }
  std::size_t add_event_input() { return event_inputs_++; }
  std::size_t add_event_output() { return event_outputs_++; }
  void set_continuous_state_size(std::size_t nx) { nx_ = nx; }

 private:
  std::string name_;
  std::vector<PortSpec> inputs_;
  std::vector<PortSpec> outputs_;
  std::size_t event_inputs_ = 0;
  std::size_t event_outputs_ = 0;
  std::size_t nx_ = 0;
};

}  // namespace ecsim::sim
