// EXP-P4: zero-allocation steady-state hot path (DESIGN.md §3.4). Measures
// the PR-4 optimisation — integrator workspaces + function_ref dispatch,
// flat 4-ary event queue with batched tie draining, preallocated block/
// matrix scratch — against the pre-change allocating path kept alive inside
// this binary behind SimOptions::legacy_integrator_alloc /
// legacy_event_queue. Same compiled model, same binary, interleaved
// repetitions, so the A/B is apples-to-apples.
//
// GUARD: the 200-chain event workload (the EXP-P1 scenario) must run
// >= 1.25x the legacy events/s. The guard runs via `ctest -C bench`
// (bench_p4_hotpath_guard); the process exits nonzero on failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

/// The EXP-P1/EXP-P4 event workload: one clock fanning out to `chains`
/// delay chains (clock -> d1 -> d2 -> counter), 1 ms tick. Large
/// simultaneous batches, no continuous state: isolates queue + dispatch.
sim::Model make_chains(std::size_t chains) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d1 = m.add<blocks::EventDelay>("d1_" + std::to_string(c), 1e-4);
    auto& d2 = m.add<blocks::EventDelay>("d2_" + std::to_string(c), 2e-4);
    auto& n = m.add<blocks::EventCounter>("n_" + std::to_string(c));
    m.connect_event(clk, 0, d1, d1.event_in());
    m.connect_event(d1, d1.event_out(), d2, d2.event_in());
    m.connect_event(d2, d2.event_out(), n, 0);
  }
  return m;
}

/// Sampled-data servo loop (continuous plant + S/H + discrete controller +
/// probe): integration-dominated, exercises the workspace/function_ref path
/// and the trace signal pool.
sim::Model make_servo() {
  sim::Model m;
  auto& plant = m.add<blocks::StateSpaceCont>(
      "plant", math::Matrix{{0.0, 1.0}, {-4.0, -1.2}},
      math::Matrix{{0.0}, {4.0}}, math::Matrix{{1.0, 0.0}},
      math::Matrix{{0.0}});
  auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
  auto& sense = m.add<blocks::SampleHold>("sense", 1);
  m.connect(plant, 0, sense, 0);
  auto& err = m.add<blocks::Sum>("err", std::vector<double>{1.0, -1.0}, 1);
  m.connect(ref, 0, err, 0);
  m.connect(sense, 0, err, 1);
  auto& ctrl = m.add<blocks::StateSpaceDisc>(
      "ctrl", math::Matrix{{1.0}}, math::Matrix{{0.02}}, math::Matrix{{1.0}},
      math::Matrix{{1.8}});
  m.connect(err, 0, ctrl, 0);
  auto& act = m.add<blocks::SampleHold>("act", 1);
  m.connect(ctrl, 0, act, 0);
  m.connect(act, 0, plant, 0);
  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, 1e-3);
  m.connect(plant, 0, probe_y, 0);
  auto& clock = m.add<blocks::Clock>("clock", 1e-3);
  m.connect_event(clock, clock.event_out(), sense, sense.event_in());
  m.connect_event(sense, sense.done_event_out(), ctrl, ctrl.event_in());
  m.connect_event(ctrl, ctrl.done_event_out(), act, act.event_in());
  return m;
}

struct ModeStats {
  std::size_t events = 0;
  double best_events_per_s = 0.0;
  std::size_t allocs_steady = 0;  // one post-warm-up run, ECSIM_ALLOC_GUARD
};

double timed_events_per_s(sim::Simulator& s) {
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(s.events_dispatched()) / secs;
}

/// Best-of-`reps`, strictly interleaved (legacy, hot, legacy, hot, ...) so
/// thermal/frequency drift hits both modes equally. Both simulators share
/// one compiled model; each gets a warm-up run before timing.
void ab_compare(const sim::CompiledModel& compiled, const sim::SimOptions& base,
                int reps, ModeStats& legacy, ModeStats& hot,
                bool& traces_identical) {
  sim::SimOptions legacy_opts = base;
  legacy_opts.legacy_integrator_alloc = true;
  legacy_opts.legacy_event_queue = true;
  sim::Simulator sl(compiled, legacy_opts);
  sim::Simulator sh(compiled, base);

  sl.run();
  const sim::Trace hot_trace = sh.run();  // copy for the A/B check below
  traces_identical = sl.trace() == hot_trace;
  legacy.events = sl.events_dispatched();
  hot.events = sh.events_dispatched();
  {
    testing::AllocProbe probe;
    sl.run();
    legacy.allocs_steady = probe.allocations();
  }
  {
    testing::AllocProbe probe;
    sh.run();
    hot.allocs_steady = probe.allocations();
  }
  for (int r = 0; r < reps; ++r) {
    legacy.best_events_per_s =
        std::max(legacy.best_events_per_s, timed_events_per_s(sl));
    hot.best_events_per_s =
        std::max(hot.best_events_per_s, timed_events_per_s(sh));
  }
}

void report_mode(bench::JsonReport& report, const char* scenario,
                 const char* mode, const ModeStats& s) {
  report.begin_object();
  report.field("scenario", std::string(scenario));
  report.field("mode", std::string(mode));
  report.field("events", s.events);
  report.field("best_events_per_s", s.best_events_per_s);
  report.field("allocs_steady_state_run", s.allocs_steady);
  report.field("allocs_per_event",
               s.events > 0 ? static_cast<double>(s.allocs_steady) /
                                  static_cast<double>(s.events)
                            : 0.0);
  report.end_object();
}

int experiment() {
  bench::banner("EXP-P4", "(hot-path memory discipline, DESIGN.md §3.4)",
                "Steady-state throughput: workspace integrator + 4-ary "
                "batched event queue vs the legacy allocating path, A/B in "
                "one binary.");
  bench::JsonReport report("EXP-P4");
  {
    sim::Model chains = make_chains(200);
    report.model_ir_hash("chains_200", chains);
    sim::Model servo = make_servo();
    report.model_ir_hash("servo_rk4", servo);
  }
  report.begin_array("hot_path");
  std::printf("%-18s %10s %15s %15s %9s %10s %12s\n", "scenario", "events",
              "legacy [ev/s]", "hot [ev/s]", "speedup", "traces",
              "hot allocs");

  constexpr int kReps = 7;
  constexpr double kGuard = 1.25;
  double chains_speedup = 0.0;
  bool all_identical = true;

  {
    sim::Model m = make_chains(200);
    const sim::CompiledModel compiled(m);
    sim::SimOptions opts;
    opts.end_time = 1.0;
    opts.reserve_queue = 1024;
    ModeStats legacy, hot;
    bool identical = false;
    ab_compare(compiled, opts, kReps, legacy, hot, identical);
    all_identical = all_identical && identical;
    chains_speedup = hot.best_events_per_s / legacy.best_events_per_s;
    std::printf("%-18s %10zu %15.0f %15.0f %8.2fx %10s %12zu\n",
                "chains_200", hot.events, legacy.best_events_per_s,
                hot.best_events_per_s, chains_speedup,
                identical ? "identical" : "DIVERGED", hot.allocs_steady);
    report_mode(report, "chains_200", "legacy", legacy);
    report_mode(report, "chains_200", "hot", hot);
  }
  {
    sim::Model m = make_servo();
    const sim::CompiledModel compiled(m);
    sim::SimOptions opts;
    opts.end_time = 5.0;
    opts.integrator.kind = sim::IntegratorKind::kRk4;
    opts.integrator.max_step = 2e-4;
    ModeStats legacy, hot;
    bool identical = false;
    ab_compare(compiled, opts, kReps, legacy, hot, identical);
    all_identical = all_identical && identical;
    const double speedup = hot.best_events_per_s / legacy.best_events_per_s;
    std::printf("%-18s %10zu %15.0f %15.0f %8.2fx %10s %12zu\n",
                "servo_rk4", hot.events, legacy.best_events_per_s,
                hot.best_events_per_s, speedup,
                identical ? "identical" : "DIVERGED", hot.allocs_steady);
    report_mode(report, "servo_rk4", "legacy", legacy);
    report_mode(report, "servo_rk4", "hot", hot);
  }
  report.end_array();
  report.begin_array("guard");
  report.begin_object();
  report.field("scenario", std::string("chains_200"));
  report.field("min_speedup", kGuard);
  report.field("measured_speedup", chains_speedup);
  report.field("traces_identical", std::string(all_identical ? "yes" : "NO"));
  report.field("pass",
               std::string(chains_speedup >= kGuard && all_identical ? "yes"
                                                                     : "NO"));
  report.end_object();
  report.end_array();
  std::printf("\nguard: chains_200 speedup %.2fx (need >= %.2fx) — %s\n\n",
              chains_speedup, kGuard,
              chains_speedup >= kGuard && all_identical ? "PASS" : "FAIL");
  report.write("BENCH_p4.json");
  return chains_speedup >= kGuard && all_identical ? 0 : 1;
}

void BM_SteadyStateRun(benchmark::State& state) {
  const bool legacy = state.range(0) != 0;
  sim::Model m = make_chains(static_cast<std::size_t>(state.range(1)));
  sim::SimOptions opts;
  opts.end_time = 1.0;
  opts.legacy_integrator_alloc = legacy;
  opts.legacy_event_queue = legacy;
  sim::Simulator s(sim::CompiledModel(m), opts);
  s.run();  // warm capacities out of the measurement
  for (auto _ : state) {
    s.run();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(s.events_dispatched() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SteadyStateRun)
    ->ArgsProduct({{0, 1}, {16, 200}})
    ->ArgNames({"legacy", "chains"})
    ->Unit(benchmark::kMillisecond);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto impl = state.range(0) == 0 ? sim::EventQueue::Impl::kQuad
                                        : sim::EventQueue::Impl::kLegacyBinary;
  const auto depth = static_cast<std::size_t>(state.range(1));
  sim::EventQueue q;
  q.set_impl(impl);
  q.reserve(depth);
  // Steady churn at constant depth: push a scattered time, pop the min.
  std::uint64_t s = 0x2545f4914f6cdd1dull;
  for (std::size_t i = 0; i < depth; ++i) {
    q.push(static_cast<sim::Time>(i % 97), i, 0);
  }
  for (auto _ : state) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    q.push(static_cast<sim::Time>(s % 97), 0, 0);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_EventQueuePushPop)
    ->ArgsProduct({{0, 1}, {64, 4096}})
    ->ArgNames({"legacy", "depth"});

}  // namespace

int main(int argc, char** argv) {
  const int guard = experiment();
  const int bench_rc = bench::run_benchmarks(argc, argv);
  return guard != 0 ? guard : bench_rc;
}
