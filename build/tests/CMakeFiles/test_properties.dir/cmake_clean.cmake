file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/test_property_adequation.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_adequation.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_multirate.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_multirate.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_numerics.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_numerics.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_sync.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_sync.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_timing.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_timing.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_property_vm.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_property_vm.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
