// EXP-F2 (paper Fig. 2): the ideal stroboscopic simulation — plant and
// controller interconnected through S/H blocks all activated by the same
// periodic clock. Establishes the reference performance that later
// experiments degrade. Expected shape: designed performance achieved;
// latencies identically zero (I(k) = O(k) = kTs).
#include "bench_common.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-F2", "Fig. 2 / Section 3.1",
                "Ideal (stroboscopic-model) closed loop of the DC servo: the "
                "control engineer's reference simulation.");
  std::printf("%8s %10s %10s %12s %12s %12s %12s\n", "Ts [ms]", "IAE", "ISE",
              "overshoot%", "settle [s]", "Ls mean", "La mean");
  for (const double ts : {0.002, 0.005, 0.01, 0.02, 0.04}) {
    const translate::CosimOutcome out =
        translate::run_ideal_loop(bench::servo_loop(ts));
    std::printf("%8.1f %10.5f %10.5f %12.2f %12.4f %12.2e %12.2e\n", 1e3 * ts,
                out.iae, out.ise, out.step.overshoot_pct,
                out.step.settling_time, out.sense_latency.summary.mean,
                out.act_latency.summary.mean);
  }
  std::printf("\nLatencies are exactly zero: sampling, control and actuation "
              "all happen at kTs (the stroboscopic hypothesis).\n\n");
}

void BM_IdealLoop(benchmark::State& state) {
  const translate::LoopSpec spec =
      bench::servo_loop(0.01, static_cast<double>(state.range(0)) / 10.0);
  for (auto _ : state) {
    auto out = translate::run_ideal_loop(spec);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IdealLoop)->Arg(5)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_LqrDesign(benchmark::State& state) {
  control::StateSpace servo = plants::dc_servo();
  const control::StateSpace servo_d = control::c2d(servo, 0.01);
  for (auto _ : state) {
    auto r = control::dlqr(servo_d, math::Matrix::diag({100.0, 0.01}),
                           math::Matrix{{1e-3}});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LqrDesign);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
