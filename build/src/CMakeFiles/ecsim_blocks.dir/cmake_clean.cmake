file(REMOVE_RECURSE
  "CMakeFiles/ecsim_blocks.dir/blocks/continuous.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/continuous.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/discrete.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/discrete.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/event_blocks.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/event_blocks.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/math_blocks.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/math_blocks.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/probe.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/probe.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/sample_hold.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/sample_hold.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/sources.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/sources.cpp.o.d"
  "CMakeFiles/ecsim_blocks.dir/blocks/synchronization.cpp.o"
  "CMakeFiles/ecsim_blocks.dir/blocks/synchronization.cpp.o.d"
  "libecsim_blocks.a"
  "libecsim_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
