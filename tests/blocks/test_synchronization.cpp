// Tests of the paper's proposed Synchronization block (§3.2.3): "The block
// must be executed at the reception of an activation event. It generates an
// event in output and resets (to zero) all its internal variables when each
// of its event inputs have received at least one event since the last reset."
#include "blocks/synchronization.hpp"

#include <gtest/gtest.h>

#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::Model;
using sim::SimOptions;
using sim::Simulator;

TEST(Synchronization, Validation) {
  EXPECT_THROW(Synchronization("s", 0), std::invalid_argument);
}

TEST(Synchronization, SingleInputForwardsEveryEvent) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sync = m.add<Synchronization>("sync", 1);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, sync, 0);
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 3.0});
  s.run();
  EXPECT_EQ(n.count(), 4u);
}

TEST(Synchronization, FiresOnlyWhenAllInputsSeen) {
  // Input 0 ticks every 1.0; input 1 every 2.0: output fires every 2.0 at
  // the instant the *later* input arrives.
  Model m;
  auto& fast = m.add<Clock>("fast", 1.0);
  auto& slow = m.add<Clock>("slow", 2.0, 0.25);
  auto& sync = m.add<Synchronization>("sync", 2);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(fast, 0, sync, 0);
  m.connect_event(slow, 0, sync, 1);
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 5.0});
  s.run();
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.25, 1e-12);
  EXPECT_NEAR(times[1], 2.25, 1e-12);
  EXPECT_NEAR(times[2], 4.25, 1e-12);
}

TEST(Synchronization, RepeatedEventsOnSameInputDontFire) {
  Model m;
  auto& fast = m.add<Clock>("fast", 0.1);
  auto& sync = m.add<Synchronization>("sync", 2);  // input 1 never wired
  auto& n = m.add<EventCounter>("n");
  m.connect_event(fast, 0, sync, 0);
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 5.0});
  s.run();
  EXPECT_EQ(n.count(), 0u);
}

TEST(Synchronization, ResetsAfterFiring) {
  Model m;
  auto& a = m.add<Clock>("a", 1.0);
  auto& b = m.add<Clock>("b", 1.0, 0.5);
  auto& sync = m.add<Synchronization>("sync", 2);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(a, 0, sync, 0);
  m.connect_event(b, 0, sync, 1);
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 3.2});
  s.run();
  // Pairs complete at 0.5, 1.5, 2.5 (a at k, b at k+0.5); a(3.0) is left
  // pending because b provides no partner before the horizon ends.
  const auto times = s.trace().activation_times_by_name("n");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.5, 1e-12);
  EXPECT_NEAR(times[1], 1.5, 1e-12);
  EXPECT_NEAR(times[2], 2.5, 1e-12);
}

TEST(Synchronization, SimultaneousEventsAtSameInstant) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sync = m.add<Synchronization>("sync", 2);
  auto& n = m.add<EventCounter>("n");
  m.connect_event(clk, 0, sync, 0);
  m.connect_event(clk, 0, sync, 1);  // same tick fans out to both inputs
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  EXPECT_EQ(n.count(), 3u);
  EXPECT_EQ(sync.fire_count(), 3u);
}

TEST(Synchronization, WideJoin) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0);
  auto& sync = m.add<Synchronization>("sync", 8);
  auto& n = m.add<EventCounter>("n");
  for (std::size_t i = 0; i < 8; ++i) m.connect_event(clk, 0, sync, i);
  m.connect_event(sync, sync.event_out(), n, 0);
  Simulator s(m, SimOptions{.end_time = 0.0});
  s.run();
  EXPECT_EQ(n.count(), 1u);
}

}  // namespace
}  // namespace ecsim::blocks
