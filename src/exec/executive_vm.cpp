#include "exec/executive_vm.hpp"

#include <algorithm>
#include <sstream>

#include "exec/channel.hpp"
#include "exec/schedule_ir.hpp"

namespace ecsim::exec {

using aaa::DataDep;
using aaa::ExecutiveProgram;

std::vector<Time> VmResult::completions(OpId op) const {
  std::vector<Time> out;
  for (const OpInstance& oi : ops) {
    if (oi.op == op) out.push_back(oi.end);
  }
  return out;
}

std::vector<Time> VmResult::starts(OpId op) const {
  std::vector<Time> out;
  for (const OpInstance& oi : ops) {
    if (oi.op == op) out.push_back(oi.start);
  }
  return out;
}

ExecTimeFn uniform_fraction_exec_time(double lo_frac) {
  return [lo_frac](const Operation&, Time wcet, math::Rng& rng) {
    return wcet * rng.uniform(lo_frac, 1.0);
  };
}

BranchFn uniform_branch_chooser() {
  return [](const Operation& op, std::size_t, math::Rng& rng) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(op.branches.size()) - 1));
  };
}

BranchFn worst_case_branch_chooser() {
  return [](const Operation& op, std::size_t, math::Rng&) {
    std::size_t worst = 0;
    Time worst_wcet = -1.0;
    for (std::size_t b = 0; b < op.branches.size(); ++b) {
      Time w = 0.0;
      for (const auto& [type, t] : op.branches[b].wcet) w = std::max(w, t);
      if (w > worst_wcet) {
        worst_wcet = w;
        worst = b;
      }
    }
    return worst;
  };
}

namespace {

/// Sequencer cursor over a processor program or a medium communicator.
struct Cursor {
  std::size_t pc = 0;    // instruction / transfer index within one iteration
  std::size_t iter = 0;  // current iteration
  Time t = 0.0;          // local time: everything before this has finished
  // Iteration being abandoned under DegradationPolicy::kSkipCycle (kNone
  // when none): computes are suppressed, sends still fire the stale buffer.
  std::size_t skip_iter = kNone;
  bool done(std::size_t length, std::size_t iterations) const {
    return iter >= iterations || length == 0;
  }
};

}  // namespace

VmResult run_executives(const AlgorithmGraph& alg,
                        const ArchitectureGraph& arch, const Schedule& sched,
                        const GeneratedCode& code, const VmOptions& opts) {
  VmResult result;
  math::Rng rng(opts.seed);
  const std::size_t iters = opts.iterations;

  // Fault injection (DESIGN.md §3.5): arm once against this schedule. An
  // empty plan leaves `armed` inactive and every hook below short-circuits,
  // keeping the fault-free path bit-identical to a plan-less run.
  fault::ArmedFaultPlan armed;
  if (!opts.fault_plan.empty()) {
    armed = fault::ArmedFaultPlan(opts.fault_plan, alg, arch, sched);
  }
  const bool faulting = armed.active();

  // Observability: resolve metric instruments and intern track/name ids up
  // front so the interpreter loop only tests cached pointers.
  obs::Counter* c_ops = nullptr;
  obs::Counter* c_comms = nullptr;
  obs::Counter* c_wcet = nullptr;
  if (opts.metrics != nullptr) {
    c_ops = &opts.metrics->counter("exec.ops_executed");
    c_comms = &opts.metrics->counter("exec.comms_executed");
    c_wcet = &opts.metrics->counter("exec.wcet_lookups");
  }

  // Compile step: lower the executives to the IR's schedule section. All
  // string-keyed WCET maps are resolved here; the sequencer loop below only
  // reads the flat InstrIr tables (mirrors sim::CompiledModel — compile the
  // structure, interpret only the dynamics).
  const ir::ScheduleIr sir = build_schedule_ir(alg, arch, sched, code, c_wcet);

  obs::ScopedSpan vm_span(opts.tracer, "vm.run", obs::Domain::kWall,
                          "runtime/vm");
  const bool tracing = obs::active(opts.tracer);
  std::vector<std::uint32_t> proc_track, op_name, medium_track, comm_name;
  std::uint32_t a_iter = 0;
  std::uint32_t n_loss = 0, n_delay = 0, n_dup = 0, n_overrun = 0,
                 n_stall = 0, n_stale = 0, n_skip = 0;
  if (tracing) {
    obs::Tracer& t = *opts.tracer;
    a_iter = t.intern("iteration");
    if (faulting) {
      n_loss = t.intern("fault/loss");
      n_delay = t.intern("fault/delay");
      n_dup = t.intern("fault/duplicate");
      n_overrun = t.intern("fault/overrun");
      n_stall = t.intern("fault/node-stall");
      n_stale = t.intern("fault/stale-read");
      n_skip = t.intern("fault/skip-cycle");
    }
    proc_track.resize(code.programs.size());
    for (std::size_t pi = 0; pi < code.programs.size(); ++pi) {
      proc_track[pi] =
          t.track(opts.track_prefix + "proc/" +
                      arch.processor(code.programs[pi].proc).name,
                  obs::Domain::kSim);
    }
    op_name.resize(alg.num_operations());
    for (OpId op = 0; op < alg.num_operations(); ++op) {
      op_name[op] = t.intern(alg.op(op).name);
    }
    medium_track.resize(code.communicators.size());
    for (std::size_t mi = 0; mi < code.communicators.size(); ++mi) {
      medium_track[mi] =
          t.track(opts.track_prefix + "medium/" +
                      arch.medium(code.communicators[mi].medium).name,
                  obs::Domain::kSim);
    }
    comm_name.resize(sched.comms().size());
    for (std::size_t ci = 0; ci < sched.comms().size(); ++ci) {
      const DataDep& dep = alg.dependencies()[sched.comms()[ci].dep_index];
      comm_name[ci] =
          t.intern(alg.op(dep.from).name + "->" + alg.op(dep.to).name);
    }
  }

  std::vector<Channel> channels(sched.comms().size(), Channel(iters));
  std::vector<Cursor> proc_cur(sir.executives.size());
  std::vector<Cursor> medium_cur(sir.communicators.size());

  // The instance counts are known exactly up front (one op instance per
  // kCompute instruction per iteration, one comm instance per scheduled
  // communication per iteration), so reserve once and never grow inside the
  // sequencer loop (DESIGN.md §3.4).
  std::size_t compute_instrs = 0;
  for (const ir::ExecutiveIr& prog : sir.executives) {
    for (const ir::InstrIr& ins : prog.instrs) {
      if (ins.kind == ir::InstrIr::Kind::kCompute) ++compute_instrs;
    }
  }
  result.ops.reserve(compute_instrs * iters);
  result.comms.reserve(sched.comms().size() * iters);

  // Pre-sample execution times and branches would couple RNG draws to the
  // interleaving of the advancing loop; instead draw on first execution of
  // each instance, which happens exactly once.
  auto exec_time = [&](const Operation& op, Time wcet) {
    return opts.exec_time ? opts.exec_time(op, wcet, rng) : wcet;
  };

  auto advance_proc = [&](std::size_t pi) -> bool {
    Cursor& cur = proc_cur[pi];
    const ir::ExecutiveIr& prog = sir.executives[pi];
    if (cur.done(prog.instrs.size(), iters)) return false;
    const ir::InstrIr& ins = prog.instrs[cur.pc];
    switch (ins.kind) {
      case ir::InstrIr::Kind::kCompute: {
        // Skip-cycle degradation: the iteration was abandoned at a lost
        // Recv, so computations are suppressed (no op instance, no time
        // spent) while the pc still advances toward the next iteration.
        if (cur.skip_iter == cur.iter) break;
        const Operation& op = alg.op(ins.op);
        const ir::InstrIr& ci = ins;  // timing fields live on the instruction
        Time start = cur.t;
        // Release gating: sensors wait for the period tick; any op with a
        // release offset (multirate instances) additionally waits for
        // k*period + release.
        if (opts.period > 0.0 && ci.release_gated) {
          start = std::max(start, static_cast<Time>(cur.iter) * opts.period +
                                      ci.release);
        }
        // Node outage: a start falling inside a stop window defers to the
        // restart instant.
        if (faulting && armed.node_has_outages(prog.proc)) {
          const Time released = armed.node_release(prog.proc, start);
          if (released > start) {
            ++result.node_stalls;
            result.injections.push_back(fault::Injection{
                fault::FaultKind::kNodeStop, kNone, kNone, ins.op, cur.iter,
                released});
            if (tracing) {
              opts.tracer->instant(n_stall, proc_track[pi],
                                   obs::sim_us(released), a_iter,
                                   static_cast<double>(cur.iter));
            }
            start = released;
          }
        }
        std::size_t branch = kNone;
        Time wcet;
        if (op.is_conditional()) {
          branch = opts.branch_chooser ? opts.branch_chooser(op, cur.iter, rng)
                                       : 0;
          wcet = ci.branch_wcets.at(branch);
        } else {
          wcet = ci.wcet;
        }
        Time dur = exec_time(op, wcet);
        // Transient overrun: inflate the actual execution time.
        if (faulting) {
          std::size_t fi = kNone;
          const double factor = armed.op_factor(ins.op, cur.iter, &fi);
          if (factor > 1.0) {
            dur *= factor;
            ++result.op_overruns;
            result.injections.push_back(fault::Injection{
                fault::FaultKind::kOpOverrun, fi, kNone, ins.op, cur.iter,
                start});
            if (tracing) {
              opts.tracer->instant(n_overrun, proc_track[pi],
                                   obs::sim_us(start), a_iter,
                                   static_cast<double>(cur.iter));
            }
          }
        }
        result.ops.push_back(
            OpInstance{ins.op, cur.iter, prog.proc, start, start + dur, branch});
        if (tracing) {
          opts.tracer->span(op_name[ins.op], proc_track[pi],
                            obs::sim_us(start), obs::sim_us(start + dur),
                            a_iter, static_cast<double>(cur.iter));
        }
        if (c_ops != nullptr) c_ops->add();
        cur.t = start + dur;
        break;
      }
      case ir::InstrIr::Kind::kSend:
        // Under kSkipCycle the send still fires (with the stale buffer) so
        // downstream processors and communicators never deadlock on it.
        channels[ins.comm].mark_sent(cur.iter, cur.t);
        break;
      case ir::InstrIr::Kind::kRecv: {
        const auto delivered = channels[ins.comm].delivered(cur.iter);
        if (delivered) {
          cur.t = std::max(cur.t, *delivered);
          break;
        }
        const auto lost = channels[ins.comm].lost(cur.iter);
        if (!lost) return false;  // blocked on message
        // The message was dropped: degrade instead of deadlocking. Either
        // way local time advances to the instant the loss is knowable.
        cur.t = std::max(cur.t, *lost);
        if (opts.fault_policy == fault::DegradationPolicy::kSkipCycle) {
          if (cur.skip_iter != cur.iter) {
            cur.skip_iter = cur.iter;
            ++result.cycles_skipped;
            if (tracing) {
              opts.tracer->instant(n_skip, proc_track[pi], obs::sim_us(cur.t),
                                   a_iter, static_cast<double>(cur.iter));
            }
          }
        } else {
          ++result.stale_reads;  // proceed on the held sample
          if (tracing) {
            opts.tracer->instant(n_stale, proc_track[pi], obs::sim_us(cur.t),
                                 a_iter, static_cast<double>(cur.iter));
          }
        }
        break;
      }
    }
    if (++cur.pc == prog.instrs.size()) {
      cur.pc = 0;
      ++cur.iter;
    }
    return true;
  };

  // For multi-hop routes the communicators forward autonomously: hop k > 0
  // becomes ready when hop k-1 delivered, without the intermediate
  // processor's sequencer in the path.
  std::vector<std::size_t> prev_hop(sched.comms().size(), kNone);
  for (std::size_t ci = 0; ci < sched.comms().size(); ++ci) {
    const aaa::ScheduledComm& sc = sched.comms()[ci];
    if (sc.hop_index == 0) continue;
    for (std::size_t cj = 0; cj < sched.comms().size(); ++cj) {
      const aaa::ScheduledComm& other = sched.comms()[cj];
      if (other.dep_index == sc.dep_index &&
          other.hop_index + 1 == sc.hop_index) {
        prev_hop[ci] = cj;
        break;
      }
    }
  }

  // Occupy medium `mi` with comm `ci`, whose send signal is known at time
  // `signal`: resolves the start instant under the medium's arbitration
  // (owner-slot-aware for TDMA; under CAN every frame first waits out the
  // worst-case non-preemptive blocking of unmodeled background traffic, the
  // same charge the adequation timeline carries, so the WCET run reproduces
  // the static schedule), applies fault effects, and records the transfer.
  // Shared by the static-order path and the CAN arbitration path.
  auto transmit = [&](std::size_t mi, std::size_t ci, Time signal) {
    Cursor& cur = medium_cur[mi];
    const aaa::ScheduledComm& sc = sched.comms()[ci];
    const DataDep& dep = alg.dependencies()[sc.dep_index];
    const aaa::Medium& medium = arch.medium(sir.communicators[mi].medium);
    if (medium.arbitration == aaa::Arbitration::kCanPriority) {
      signal += medium.can_blocking;
    }
    const Time start = medium.earliest_start(
        std::max(cur.t, signal), alg.dep_priority(sc.dep_index));
    Time end = start + medium.transfer_time(dep.size);
    fault::ArmedFaultPlan::CommEffect eff;
    if (faulting) eff = armed.comm_effect(ci, cur.iter);
    if (eff.lost) {
      // The corrupted frame still occupied its slot; the loss is knowable
      // at the would-be delivery end (e.g. a CRC check failing there).
      channels[ci].mark_lost(cur.iter, end);
      ++result.messages_lost;
      result.injections.push_back(fault::Injection{
          fault::FaultKind::kMessageLoss, eff.loss_fault, ci, kNone, cur.iter,
          end});
      if (tracing) {
        opts.tracer->instant(n_loss, medium_track[mi], obs::sim_us(end),
                             a_iter, static_cast<double>(cur.iter));
      }
    } else {
      // Extra copies occupy the medium (retransmissions); extra delay only
      // postpones the delivery instant (e.g. gateway queueing).
      if (eff.extra_copies > 0) {
        end += static_cast<Time>(eff.extra_copies) *
               medium.transfer_time(dep.size);
        ++result.messages_duplicated;
        result.injections.push_back(fault::Injection{
            fault::FaultKind::kMessageDuplicate, eff.dup_fault, ci, kNone,
            cur.iter, end});
        if (tracing) {
          opts.tracer->instant(n_dup, medium_track[mi], obs::sim_us(end),
                               a_iter, static_cast<double>(cur.iter));
        }
      }
      Time delivery = end;
      if (eff.extra_delay > 0.0) {
        delivery += eff.extra_delay;
        ++result.messages_delayed;
        result.injections.push_back(fault::Injection{
            fault::FaultKind::kMessageDelay, eff.delay_fault, ci, kNone,
            cur.iter, delivery});
        if (tracing) {
          opts.tracer->instant(n_delay, medium_track[mi],
                               obs::sim_us(delivery), a_iter,
                               static_cast<double>(cur.iter));
        }
      }
      channels[ci].mark_delivered(cur.iter, delivery);
    }
    result.comms.push_back(CommInstance{ci, cur.iter, start, end});
    if (tracing) {
      opts.tracer->span(comm_name[ci], medium_track[mi], obs::sim_us(start),
                        obs::sim_us(end), a_iter,
                        static_cast<double>(cur.iter));
    }
    if (c_comms != nullptr) c_comms->add();
    cur.t = end;
  };

  // CAN priority arbitration replaces the static program-order cursor with
  // dynamic per-iteration selection. Precomputed cross-references let the
  // arbitration reason about senders that have not signalled yet.
  const bool any_can = [&] {
    for (const ir::CommunicatorIr& c : sir.communicators) {
      if (arch.medium(c.medium).arbitration ==
          aaa::Arbitration::kCanPriority) {
        return true;
      }
    }
    return false;
  }();
  // Processor program that owns each comm's kSend (hop-0 comms only).
  std::vector<std::size_t> send_proc;
  // (communicator index, slot within its comm list) of every comm.
  std::vector<std::pair<std::size_t, std::size_t>> comm_slot;
  // Per CAN medium: which slots already transferred in the current
  // iteration, and how many remain.
  std::vector<std::vector<std::uint8_t>> can_done(sir.communicators.size());
  std::vector<std::size_t> can_left(sir.communicators.size(), 0);
  if (any_can) {
    send_proc.assign(sched.comms().size(), kNone);
    for (std::size_t pi = 0; pi < sir.executives.size(); ++pi) {
      for (const ir::InstrIr& ins : sir.executives[pi].instrs) {
        if (ins.kind == ir::InstrIr::Kind::kSend) send_proc[ins.comm] = pi;
      }
    }
    comm_slot.assign(sched.comms().size(), {kNone, kNone});
    for (std::size_t mi = 0; mi < sir.communicators.size(); ++mi) {
      const auto& comms = sir.communicators[mi].comms;
      for (std::size_t k = 0; k < comms.size(); ++k) {
        comm_slot[comms[k]] = {mi, k};
      }
      if (arch.medium(sir.communicators[mi].medium).arbitration ==
          aaa::Arbitration::kCanPriority) {
        can_done[mi].assign(comms.size(), 0);
        can_left[mi] = comms.size();
      }
    }
  }
  constexpr Time kArbEps = 1e-12;

  // One arbitration round on CAN medium `mi`: among the pending frames whose
  // send signal is known, the earliest-ready one wins the bus, ties resolved
  // by message priority then comm index (CAN identifier order). The commit
  // is deferred while a frame with an unknown signal could still become
  // ready no later than the chosen start — unless its sender provably cannot
  // contest (it is blocked on a reception that is itself pending on this
  // medium, so its send follows a delivery we have not made yet). `force`
  // (used only at global quiescence, when no signal can appear without the
  // bus moving) commits the winner regardless. Both paths are driven by the
  // same fixed sweep order, so arbitration outcomes are pure functions of
  // (model, seed, scenario).
  auto advance_can = [&](std::size_t mi, bool force) -> bool {
    Cursor& cur = medium_cur[mi];
    const ir::CommunicatorIr& prog = sir.communicators[mi];
    if (cur.done(prog.comms.size(), iters)) return false;
    auto finish_slot = [&](std::size_t k) {
      can_done[mi][k] = 1;
      cur.pc = prog.comms.size() - --can_left[mi];
      if (can_left[mi] == 0) {
        std::fill(can_done[mi].begin(), can_done[mi].end(), 0);
        can_left[mi] = prog.comms.size();
        cur.pc = 0;
        ++cur.iter;
      }
    };
    // Lost predecessor hops propagate without occupying the bus.
    for (std::size_t k = 0; k < prog.comms.size(); ++k) {
      if (can_done[mi][k] != 0) continue;
      const std::size_t ci = prog.comms[k];
      if (prev_hop[ci] == kNone) continue;
      if (channels[prev_hop[ci]].delivered(cur.iter)) continue;
      const auto prev_lost = channels[prev_hop[ci]].lost(cur.iter);
      if (!prev_lost) continue;
      channels[ci].mark_lost(cur.iter, *prev_lost);
      finish_slot(k);
      return true;
    }
    // Arbitration among the frames whose signal is known. Ranking uses the
    // same effective start transmit() will resolve — including the
    // worst-case background-blocking charge, a constant shift that never
    // reorders candidates.
    const Time blocking =
        arch.medium(prog.medium).arbitration == aaa::Arbitration::kCanPriority
            ? arch.medium(prog.medium).can_blocking
            : 0.0;
    std::size_t best = kNone;
    std::size_t best_slot = kNone;
    std::size_t best_prio = 0;
    Time best_start = 0.0;
    Time best_signal = 0.0;
    for (std::size_t k = 0; k < prog.comms.size(); ++k) {
      if (can_done[mi][k] != 0) continue;
      const std::size_t ci = prog.comms[k];
      const auto signal = prev_hop[ci] == kNone
                              ? channels[ci].sent(cur.iter)
                              : channels[prev_hop[ci]].delivered(cur.iter);
      if (!signal) continue;
      const Time start = std::max(cur.t, *signal + blocking);
      const std::size_t prio = alg.dep_priority(sched.comms()[ci].dep_index);
      if (best == kNone || start < best_start - kArbEps ||
          (start <= best_start + kArbEps &&
           (prio < best_prio || (prio == best_prio && ci < best)))) {
        best = ci;
        best_slot = k;
        best_prio = prio;
        best_start = start;
        best_signal = *signal;
      }
    }
    if (best == kNone) return false;
    if (!force) {
      for (std::size_t k = 0; k < prog.comms.size(); ++k) {
        if (can_done[mi][k] != 0) continue;
        const std::size_t ci = prog.comms[k];
        if (ci == best) continue;
        const auto signal = prev_hop[ci] == kNone
                                ? channels[ci].sent(cur.iter)
                                : channels[prev_hop[ci]].delivered(cur.iter);
        if (signal) continue;  // known candidate: it lost the arbitration
        Time bound;
        if (prev_hop[ci] != kNone) {
          // Predecessor hop pending on this very medium delivers only after
          // a commit we have not made — it cannot contest.
          const std::size_t pmi = comm_slot[prev_hop[ci]].first;
          if (pmi == mi) continue;
          bound = medium_cur[pmi].t;
        } else {
          const std::size_t pi = send_proc[ci];
          if (pi == kNone) continue;
          const Cursor& sender = proc_cur[pi];
          if (sender.done(sir.executives[pi].instrs.size(), iters)) continue;
          const ir::InstrIr& ins = sir.executives[pi].instrs[sender.pc];
          if (ins.kind == ir::InstrIr::Kind::kRecv &&
              comm_slot[ins.comm].first == mi && sender.iter == cur.iter &&
              can_done[mi][comm_slot[ins.comm].second] == 0 &&
              !channels[ins.comm].delivered(sender.iter) &&
              !channels[ins.comm].lost(sender.iter)) {
            continue;  // blocked on a frame this bus has yet to deliver
          }
          bound = sender.t;
        }
        if (bound <= best_start + kArbEps) return false;  // could contest
      }
    }
    transmit(mi, best, best_signal);
    finish_slot(best_slot);
    return true;
  };

  auto advance_medium = [&](std::size_t mi) -> bool {
    Cursor& cur = medium_cur[mi];
    const ir::CommunicatorIr& prog = sir.communicators[mi];
    if (arch.medium(prog.medium).arbitration ==
        aaa::Arbitration::kCanPriority) {
      return advance_can(mi, /*force=*/false);
    }
    if (cur.done(prog.comms.size(), iters)) return false;
    const std::size_t ci = prog.comms[cur.pc];
    auto sent = channels[ci].sent(cur.iter);
    if (prev_hop[ci] != kNone) {
      sent = channels[prev_hop[ci]].delivered(cur.iter);
      if (!sent) {
        // A hop whose predecessor frame was lost never carries anything:
        // propagate the loss downstream without occupying this medium.
        const auto prev_lost = channels[prev_hop[ci]].lost(cur.iter);
        if (!prev_lost) return false;
        channels[ci].mark_lost(cur.iter, *prev_lost);
        if (++cur.pc == prog.comms.size()) {
          cur.pc = 0;
          ++cur.iter;
        }
        return true;
      }
    }
    if (!sent) return false;  // waiting for the sender's signal
    transmit(mi, ci, *sent);
    if (++cur.pc == prog.comms.size()) {
      cur.pc = 0;
      ++cur.iter;
    }
    return true;
  };

  // Run to completion or quiescence.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t pi = 0; pi < code.programs.size(); ++pi) {
      while (advance_proc(pi)) progress = true;
    }
    for (std::size_t mi = 0; mi < code.communicators.size(); ++mi) {
      while (advance_medium(mi)) progress = true;
    }
    if (!progress && any_can) {
      // Global quiescence: every send signal that can appear without the
      // bus moving has appeared, so a deferred arbitration decision is now
      // final — force the winner on the first stalled CAN medium.
      for (std::size_t mi = 0; mi < code.communicators.size(); ++mi) {
        if (arch.medium(sir.communicators[mi].medium).arbitration ==
                aaa::Arbitration::kCanPriority &&
            advance_can(mi, /*force=*/true)) {
          progress = true;
          break;
        }
      }
    }
  }

  // Anyone not finished is deadlocked (blocked on a message that will never
  // arrive) — with well-formed generated code this cannot happen.
  std::ostringstream blocked;
  for (std::size_t pi = 0; pi < code.programs.size(); ++pi) {
    const Cursor& cur = proc_cur[pi];
    if (!cur.done(code.programs[pi].instrs.size(), iters)) {
      result.deadlock = true;
      blocked << "processor " << arch.processor(code.programs[pi].proc).name
              << " blocked at instr " << cur.pc << " ('"
              << code.programs[pi].instrs[cur.pc].label << "') iteration "
              << cur.iter << "; ";
    }
  }
  for (std::size_t mi = 0; mi < code.communicators.size(); ++mi) {
    const Cursor& cur = medium_cur[mi];
    if (!cur.done(code.communicators[mi].comms.size(), iters)) {
      result.deadlock = true;
      blocked << "medium " << arch.medium(code.communicators[mi].medium).name
              << " blocked at transfer " << cur.pc << " iteration " << cur.iter
              << "; ";
    }
  }
  result.deadlock_info = blocked.str();

  // Deterministic report order regardless of the advancing interleaving.
  std::sort(result.ops.begin(), result.ops.end(),
            [](const OpInstance& a, const OpInstance& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.proc != b.proc) return a.proc < b.proc;
              return a.op < b.op;
            });
  std::sort(result.comms.begin(), result.comms.end(),
            [](const CommInstance& a, const CommInstance& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.comm < b.comm;
            });
  std::sort(result.injections.begin(), result.injections.end(),
            [](const fault::Injection& a, const fault::Injection& b) {
              if (a.iteration != b.iteration) return a.iteration < b.iteration;
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.comm != b.comm) return a.comm < b.comm;
              return a.op < b.op;
            });
  return result;
}

}  // namespace ecsim::exec
