// Inverted pendulum on a cart, linearized about the upright equilibrium.
#pragma once

#include "control/state_space.hpp"

namespace ecsim::plants {

struct PendulumParams {
  double cart_mass = 0.5;     // M [kg]
  double pole_mass = 0.2;     // m [kg]
  double pole_length = 0.3;   // l: distance pivot -> pole COM [m]
  double cart_friction = 0.1; // b [N/(m/s)]
  double inertia = 0.006;     // I: pole inertia about COM [kg m^2]
  double gravity = 9.81;
};

/// States: [cart position, cart velocity, pole angle, pole angular velocity];
/// input: horizontal force on the cart; outputs: [cart position, pole angle].
control::StateSpace inverted_pendulum(const PendulumParams& p = {});

}  // namespace ecsim::plants
