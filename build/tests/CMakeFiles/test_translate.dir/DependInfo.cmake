
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/translate/test_conditioning.cpp" "tests/CMakeFiles/test_translate.dir/translate/test_conditioning.cpp.o" "gcc" "tests/CMakeFiles/test_translate.dir/translate/test_conditioning.cpp.o.d"
  "/root/repo/tests/translate/test_cosim.cpp" "tests/CMakeFiles/test_translate.dir/translate/test_cosim.cpp.o" "gcc" "tests/CMakeFiles/test_translate.dir/translate/test_cosim.cpp.o.d"
  "/root/repo/tests/translate/test_extract.cpp" "tests/CMakeFiles/test_translate.dir/translate/test_extract.cpp.o" "gcc" "tests/CMakeFiles/test_translate.dir/translate/test_extract.cpp.o.d"
  "/root/repo/tests/translate/test_graph_of_delays.cpp" "tests/CMakeFiles/test_translate.dir/translate/test_graph_of_delays.cpp.o" "gcc" "tests/CMakeFiles/test_translate.dir/translate/test_graph_of_delays.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_blocks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_plants.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_aaa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_latency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
