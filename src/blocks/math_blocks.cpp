#include "blocks/math_blocks.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecsim::blocks {

Gain::Gain(std::string name, math::Matrix k)
    : Block(std::move(name)), k_(std::move(k)) {
  if (k_.empty()) throw std::invalid_argument("Gain: empty matrix");
  add_input(k_.cols());
  add_output(k_.rows());
}

void Gain::compute_outputs(Context& ctx) {
  // Same accumulation order as the old fused loop, via the shared kernel.
  math::multiply_into(ctx.output(0), k_, ctx.input(0));
}

Sum::Sum(std::string name, std::vector<double> signs, std::size_t width)
    : Block(std::move(name)), signs_(std::move(signs)), width_(width) {
  if (signs_.empty()) throw std::invalid_argument("Sum: needs >= 1 input");
  for (std::size_t i = 0; i < signs_.size(); ++i) add_input(width_);
  add_output(width_);
}

void Sum::compute_outputs(Context& ctx) {
  auto y = ctx.output(0);
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < signs_.size(); ++i) {
    auto u = ctx.input(i);
    for (std::size_t k = 0; k < width_; ++k) y[k] += signs_[i] * u[k];
  }
}

Saturation::Saturation(std::string name, double lo, double hi, std::size_t width)
    : Block(std::move(name)), lo_(lo), hi_(hi) {
  if (hi < lo) throw std::invalid_argument("Saturation: hi < lo");
  add_input(width);
  add_output(width);
}

void Saturation::compute_outputs(Context& ctx) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  for (std::size_t k = 0; k < u.size(); ++k) y[k] = std::clamp(u[k], lo_, hi_);
}

Quantizer::Quantizer(std::string name, double step, std::size_t width)
    : Block(std::move(name)), step_(step) {
  if (step <= 0.0) throw std::invalid_argument("Quantizer: step must be > 0");
  add_input(width);
  add_output(width);
}

void Quantizer::compute_outputs(Context& ctx) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  for (std::size_t k = 0; k < u.size(); ++k) {
    y[k] = std::round(u[k] / step_) * step_;
  }
}

Mux::Mux(std::string name, std::vector<std::size_t> widths)
    : Block(std::move(name)), widths_(std::move(widths)) {
  if (widths_.empty()) throw std::invalid_argument("Mux: needs >= 1 input");
  std::size_t total = 0;
  for (std::size_t w : widths_) {
    add_input(w);
    total += w;
  }
  add_output(total);
}

void Mux::compute_outputs(Context& ctx) {
  auto y = ctx.output(0);
  std::size_t off = 0;
  for (std::size_t i = 0; i < widths_.size(); ++i) {
    auto u = ctx.input(i);
    std::copy(u.begin(), u.end(), y.begin() + static_cast<long>(off));
    off += widths_[i];
  }
}

Demux::Demux(std::string name, std::vector<std::size_t> widths)
    : Block(std::move(name)), widths_(std::move(widths)) {
  if (widths_.empty()) throw std::invalid_argument("Demux: needs >= 1 output");
  const std::size_t total =
      std::accumulate(widths_.begin(), widths_.end(), std::size_t{0});
  add_input(total);
  for (std::size_t w : widths_) add_output(w);
}

void Demux::compute_outputs(Context& ctx) {
  auto u = ctx.input(0);
  std::size_t off = 0;
  for (std::size_t i = 0; i < widths_.size(); ++i) {
    auto y = ctx.output(i);
    std::copy(u.begin() + static_cast<long>(off),
              u.begin() + static_cast<long>(off + widths_[i]), y.begin());
    off += widths_[i];
  }
}


namespace {

ir::Attr matrix_attr(std::string key, const math::Matrix& m) {
  return ir::Attr::of_matrix(
      std::move(key), m.rows(), m.cols(),
      std::vector<double>(m.data(), m.data() + m.size()));
}

}  // namespace

void Gain::describe(ir::BlockIr& out) const {
  out.kind = "Gain";
  out.attrs.push_back(matrix_attr("k", k_));
}

void Sum::describe(ir::BlockIr& out) const {
  out.kind = "Sum";
  out.attrs.push_back(ir::Attr::of_vec("signs", signs_));
}

void Saturation::describe(ir::BlockIr& out) const {
  out.kind = "Saturation";
  out.attrs.push_back(ir::Attr::of_real("lo", lo_));
  out.attrs.push_back(ir::Attr::of_real("hi", hi_));
}

void Quantizer::describe(ir::BlockIr& out) const {
  out.kind = "Quantizer";
  out.attrs.push_back(ir::Attr::of_real("step", step_));
}

void Mux::describe(ir::BlockIr& out) const {
  out.kind = "Mux";  // lane widths live in the structural in_widths
}

void Demux::describe(ir::BlockIr& out) const {
  out.kind = "Demux";  // lane widths live in the structural out_widths
}

}  // namespace ecsim::blocks
