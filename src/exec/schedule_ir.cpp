#include "exec/schedule_ir.hpp"

#include <string>

namespace ecsim::exec {

using aaa::Operation;

ir::ScheduleIr build_schedule_ir(const aaa::AlgorithmGraph& alg,
                                 const aaa::ArchitectureGraph& arch,
                                 const aaa::Schedule& sched,
                                 const aaa::GeneratedCode& code,
                                 obs::Counter* wcet_lookups) {
  std::size_t lookups = 0;
  ir::ScheduleIr sir;
  sir.makespan = sched.makespan();
  sir.executives.resize(code.programs.size());
  for (std::size_t pi = 0; pi < code.programs.size(); ++pi) {
    const aaa::ExecutiveProgram& prog = code.programs[pi];
    const std::string& type = arch.processor(prog.proc).type;
    ir::ExecutiveIr& ex = sir.executives[pi];
    ex.proc = prog.proc;
    ex.resource = arch.processor(prog.proc).name;
    ex.instrs.resize(prog.instrs.size());
    for (std::size_t ic = 0; ic < prog.instrs.size(); ++ic) {
      const aaa::Instr& ins = prog.instrs[ic];
      ir::InstrIr& ii = ex.instrs[ic];
      ii.op = ins.op;
      ii.comm = ins.comm;
      ii.label = ins.label;
      if (ins.kind != aaa::InstrKind::kCompute) {
        ii.kind = ins.kind == aaa::InstrKind::kSend ? ir::InstrIr::Kind::kSend
                                                    : ir::InstrIr::Kind::kRecv;
        continue;
      }
      ii.kind = ir::InstrIr::Kind::kCompute;
      const Operation& op = alg.op(ins.op);
      ii.release_gated = op.kind == aaa::OpKind::kSensor || op.release > 0.0;
      ii.release = op.release;
      if (op.is_conditional()) {
        ii.branch_wcets.reserve(op.branches.size());
        for (const aaa::Branch& br : op.branches) {
          ii.branch_wcets.push_back(br.wcet.at(type));
        }
        lookups += op.branches.size();
      } else {
        ii.wcet = op.wcet.at(type);
        ++lookups;
      }
    }
  }
  sir.communicators.resize(code.communicators.size());
  for (std::size_t mi = 0; mi < code.communicators.size(); ++mi) {
    const aaa::CommunicatorProgram& prog = code.communicators[mi];
    ir::CommunicatorIr& cm = sir.communicators[mi];
    cm.medium = prog.medium;
    cm.resource = arch.medium(prog.medium).name;
    cm.comms = prog.comms;
  }
  if (wcet_lookups != nullptr) wcet_lookups->add(lookups);
  return sir;
}

}  // namespace ecsim::exec
