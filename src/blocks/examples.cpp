#include "blocks/examples.hpp"

#include <string>
#include <vector>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/probe.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "mathlib/matrix.hpp"

namespace ecsim::blocks::examples {

sim::Model make_chains(std::size_t chains) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d1 = m.add<blocks::EventDelay>("d1_" + std::to_string(c), 1e-4);
    auto& d2 = m.add<blocks::EventDelay>("d2_" + std::to_string(c), 2e-4);
    auto& n = m.add<blocks::EventCounter>("n_" + std::to_string(c));
    m.connect_event(clk, 0, d1, d1.event_in());
    m.connect_event(d1, d1.event_out(), d2, d2.event_in());
    m.connect_event(d2, d2.event_out(), n, 0);
  }
  return m;
}

sim::Model make_servo() {
  sim::Model m;
  auto& plant = m.add<blocks::StateSpaceCont>(
      "plant", math::Matrix{{0.0, 1.0}, {-4.0, -1.2}},
      math::Matrix{{0.0}, {4.0}}, math::Matrix{{1.0, 0.0}},
      math::Matrix{{0.0}});
  auto& ref = m.add<blocks::Step>("ref", 0.0, 1.0, 0.0);
  auto& sense = m.add<blocks::SampleHold>("sense", 1);
  m.connect(plant, 0, sense, 0);
  auto& err = m.add<blocks::Sum>("err", std::vector<double>{1.0, -1.0}, 1);
  m.connect(ref, 0, err, 0);
  m.connect(sense, 0, err, 1);
  auto& ctrl = m.add<blocks::StateSpaceDisc>(
      "ctrl", math::Matrix{{1.0}}, math::Matrix{{0.02}}, math::Matrix{{1.0}},
      math::Matrix{{1.8}});
  m.connect(err, 0, ctrl, 0);
  auto& act = m.add<blocks::SampleHold>("act", 1);
  m.connect(ctrl, 0, act, 0);
  m.connect(act, 0, plant, 0);
  auto& probe_y = m.add<blocks::Probe>("probe_y", 1, 1e-3);
  m.connect(plant, 0, probe_y, 0);
  auto& clock = m.add<blocks::Clock>("clock", 1e-3);
  m.connect_event(clock, clock.event_out(), sense, sense.event_in());
  m.connect_event(sense, sense.done_event_out(), ctrl, ctrl.event_in());
  m.connect_event(ctrl, ctrl.done_event_out(), act, act.event_in());
  return m;
}

}  // namespace ecsim::blocks::examples
