#include "io/spec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "aaa/multirate.hpp"

namespace ecsim::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // comment to end of line
    tokens.push_back(tok);
  }
  return tokens;
}

double parse_number(const std::string& tok, std::size_t line,
                    const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(tok, &consumed);
  } catch (const std::exception&) {
    throw SpecParseError(line, std::string("expected a number for ") + what +
                                   ", got '" + tok + "'");
  }
  if (consumed != tok.size()) {
    throw SpecParseError(line, std::string("trailing characters in ") + what +
                                   ": '" + tok + "'");
  }
  return value;
}

aaa::OpKind parse_kind(const std::string& tok, std::size_t line) {
  if (tok == "sensor") return aaa::OpKind::kSensor;
  if (tok == "compute") return aaa::OpKind::kCompute;
  if (tok == "actuator") return aaa::OpKind::kActuator;
  throw SpecParseError(line, "unknown operation kind '" + tok +
                                 "' (sensor|compute|actuator)");
}

struct RawOp {
  std::string name;
  aaa::OpKind kind = aaa::OpKind::kCompute;
  double wcet = -1.0;  // < 0: conditional (branches set instead)
  std::vector<aaa::Branch> branches;
  std::optional<std::string> bound;
  std::size_t rate = 1;
};

struct RawDep {
  std::string from, to;
  double size = 1.0;
  std::size_t priority = aaa::kNone;  // kNone = declaration-order default
};

}  // namespace

ParsedSpec parse_spec(const std::string& text) {
  enum class Section { kNone, kAlgorithm, kArchitecture };
  Section section = Section::kNone;

  std::string alg_name = "algorithm";
  double period = 0.0;
  std::vector<RawOp> ops;
  std::vector<RawDep> deps;

  std::string arch_name = "architecture";
  struct RawProc {
    std::string name, type;
  };
  struct RawBus {
    std::string name;
    double bandwidth = 0.0, latency = 0.0;
    std::vector<std::string> procs;
    double tdma_slot = 0.0;
    std::size_t tdma_slots = 1;
    bool can = false;
    double can_blocking = 0.0;
    double background_load = 0.0;
  };
  std::vector<RawProc> procs;
  std::vector<RawBus> buses;

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;
    if (t[0] == "[algorithm]") {
      section = Section::kAlgorithm;
      continue;
    }
    if (t[0] == "[architecture]") {
      section = Section::kArchitecture;
      continue;
    }
    if (t[0].front() == '[') {
      throw SpecParseError(line_no, "unknown section " + t[0]);
    }
    if (section == Section::kAlgorithm) {
      if (t[0] == "name" && t.size() == 2) {
        alg_name = t[1];
      } else if (t[0] == "period" && t.size() == 2) {
        period = parse_number(t[1], line_no, "period");
      } else if (t[0] == "op") {
        if (t.size() < 4) {
          throw SpecParseError(line_no, "op needs: name kind wcet|branches");
        }
        RawOp op;
        op.name = t[1];
        op.kind = parse_kind(t[2], line_no);
        std::size_t i = 3;
        if (t[i] == "branch") {
          while (i < t.size() && t[i] == "branch") {
            if (i + 2 >= t.size()) {
              throw SpecParseError(line_no, "branch needs: name wcet");
            }
            aaa::Branch br;
            br.name = t[i + 1];
            br.wcet["cpu"] = parse_number(t[i + 2], line_no, "branch wcet");
            op.branches.push_back(std::move(br));
            i += 3;
          }
        } else {
          op.wcet = parse_number(t[i], line_no, "wcet");
          ++i;
        }
        if (i < t.size()) {
          if (t[i].size() < 2 || t[i][0] != '@') {
            throw SpecParseError(line_no, "expected @processor, got '" + t[i] +
                                              "'");
          }
          op.bound = t[i].substr(1);
          ++i;
        }
        if (i != t.size()) {
          throw SpecParseError(line_no, "trailing tokens after op");
        }
        ops.push_back(std::move(op));
      } else if (t[0] == "dep" &&
                 (t.size() == 3 || t.size() == 4 || t.size() == 6)) {
        RawDep d;
        d.from = t[1];
        d.to = t[2];
        if (t.size() >= 4) d.size = parse_number(t[3], line_no, "dep size");
        if (t.size() == 6) {
          if (t[4] != "prio") {
            throw SpecParseError(line_no,
                                 "expected 'prio', got '" + t[4] + "'");
          }
          const double p = parse_number(t[5], line_no, "dep priority");
          if (p < 0.0 || p != std::floor(p)) {
            throw SpecParseError(line_no,
                                 "dep priority must be a non-negative "
                                 "integer");
          }
          d.priority = static_cast<std::size_t>(p);
        }
        deps.push_back(std::move(d));
      } else if (t[0] == "rate" && t.size() == 3) {
        const double r = parse_number(t[2], line_no, "rate divisor");
        if (r < 1.0 || r != static_cast<std::size_t>(r)) {
          throw SpecParseError(line_no, "rate divisor must be a positive "
                                        "integer");
        }
        bool found = false;
        for (RawOp& op : ops) {
          if (op.name == t[1]) {
            op.rate = static_cast<std::size_t>(r);
            found = true;
          }
        }
        if (!found) {
          throw SpecParseError(line_no, "rate for unknown op '" + t[1] + "'");
        }
      } else {
        throw SpecParseError(line_no, "unknown algorithm directive '" + t[0] +
                                          "'");
      }
    } else if (section == Section::kArchitecture) {
      if (t[0] == "name" && t.size() == 2) {
        arch_name = t[1];
      } else if (t[0] == "proc" && (t.size() == 2 || t.size() == 3)) {
        procs.push_back(RawProc{t[1], t.size() == 3 ? t[2] : "cpu"});
      } else if (t[0] == "bus" && t.size() >= 5) {
        RawBus bus;
        bus.name = t[1];
        bus.bandwidth = parse_number(t[2], line_no, "bus bandwidth");
        bus.latency = parse_number(t[3], line_no, "bus latency");
        bus.procs.assign(t.begin() + 4, t.end());
        buses.push_back(std::move(bus));
      } else if (t[0] == "tdma" && (t.size() == 3 || t.size() == 4)) {
        bool found = false;
        for (RawBus& bus : buses) {
          if (bus.name == t[1]) {
            bus.tdma_slot = parse_number(t[2], line_no, "tdma slot");
            if (t.size() == 4) {
              const double n = parse_number(t[3], line_no, "tdma slot count");
              if (n < 1.0 || n != std::floor(n)) {
                throw SpecParseError(line_no,
                                     "tdma slot count must be a positive "
                                     "integer");
              }
              bus.tdma_slots = static_cast<std::size_t>(n);
            }
            found = true;
          }
        }
        if (!found) {
          throw SpecParseError(line_no, "tdma for unknown bus '" + t[1] + "'");
        }
      } else if (t[0] == "can" && (t.size() == 2 || t.size() == 3)) {
        bool found = false;
        for (RawBus& bus : buses) {
          if (bus.name == t[1]) {
            bus.can = true;
            if (t.size() == 3) {
              bus.can_blocking = parse_number(t[2], line_no, "can blocking");
            }
            found = true;
          }
        }
        if (!found) {
          throw SpecParseError(line_no, "can for unknown bus '" + t[1] + "'");
        }
      } else if (t[0] == "load" && t.size() == 3) {
        bool found = false;
        for (RawBus& bus : buses) {
          if (bus.name == t[1]) {
            bus.background_load = parse_number(t[2], line_no, "bus load");
            found = true;
          }
        }
        if (!found) {
          throw SpecParseError(line_no, "load for unknown bus '" + t[1] + "'");
        }
      } else {
        throw SpecParseError(line_no, "unknown architecture directive '" +
                                          t[0] + "'");
      }
    } else {
      throw SpecParseError(line_no, "directive outside any section");
    }
  }

  ParsedSpec result;
  // ---- build the algorithm -------------------------------------------------
  if (!ops.empty()) {
    const bool multirate = std::any_of(ops.begin(), ops.end(),
                                       [](const RawOp& o) { return o.rate > 1; });
    if (multirate) {
      aaa::MultirateSpec spec;
      spec.name = alg_name;
      spec.base_period = period;
      for (const RawOp& op : ops) {
        if (!op.branches.empty()) {
          throw SpecParseError(0, "conditional ops are not supported together "
                                  "with rate directives");
        }
        spec.add_op(aaa::MultirateOp{op.name, op.kind,
                                     {{"cpu", op.wcet}}, op.rate, op.bound});
      }
      auto index_of = [&](const std::string& name) {
        for (std::size_t i = 0; i < ops.size(); ++i) {
          if (ops[i].name == name) return i;
        }
        throw SpecParseError(0, "dep references unknown op '" + name + "'");
      };
      for (const RawDep& d : deps) {
        if (d.priority != aaa::kNone) {
          throw SpecParseError(0, "dep priorities are not supported together "
                                  "with rate directives");
        }
        spec.add_dep(index_of(d.from), index_of(d.to), d.size);
      }
      result.algorithm = aaa::expand_hyperperiod(spec);
    } else {
      aaa::AlgorithmGraph alg(alg_name, period);
      for (const RawOp& op : ops) {
        aaa::Operation out;
        out.name = op.name;
        out.kind = op.kind;
        if (op.branches.empty()) {
          out.wcet["cpu"] = op.wcet;
        } else {
          out.branches = op.branches;
        }
        out.bound_processor = op.bound;
        alg.add_operation(std::move(out));
      }
      for (const RawDep& d : deps) {
        alg.add_dependency(alg.find(d.from), alg.find(d.to), d.size,
                           d.priority);
      }
      result.algorithm = std::move(alg);
    }
    result.has_algorithm = true;
  }
  // ---- build the architecture ----------------------------------------------
  if (!procs.empty()) {
    aaa::ArchitectureGraph arch(arch_name);
    for (const RawProc& p : procs) arch.add_processor(p.name, p.type);
    for (const RawBus& bus : buses) {
      const aaa::MediumId m =
          arch.add_medium(bus.name, bus.bandwidth, bus.latency);
      for (const std::string& p : bus.procs) {
        arch.attach(arch.find_processor(p), m);
      }
      if (bus.can && bus.tdma_slot > 0.0) {
        throw SpecParseError(0, "bus '" + bus.name +
                                    "' cannot be both tdma and can");
      }
      if (bus.tdma_slot > 0.0) {
        arch.set_tdma(m, bus.tdma_slot, bus.tdma_slots);
      }
      if (bus.can) arch.set_can(m, bus.can_blocking);
      if (bus.background_load != 0.0) {
        arch.set_background_load(m, bus.background_load);
      }
    }
    result.architecture = std::move(arch);
    result.has_architecture = true;
  }
  return result;
}

ParsedSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_spec: cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

}  // namespace ecsim::io
