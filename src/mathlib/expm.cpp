#include "mathlib/expm.hpp"

#include <cmath>
#include <stdexcept>

#include "mathlib/linalg.hpp"

namespace ecsim::math {

Matrix expm(const Matrix& a) {
  if (!a.is_square()) throw std::invalid_argument("expm: non-square matrix");
  const std::size_t n = a.rows();
  if (n == 0) return a;

  // Scale so that ||A/2^s||_inf <= 0.5.
  int s = 0;
  const double norm = a.norm_inf();
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
    s = std::max(s, 0);
  }
  Matrix x = a;
  x *= std::pow(2.0, -s);

  // Degree-6 diagonal Pade: N(x)/D(x) with coefficients c_k.
  // c_0..c_6 for p=q=6: c_k = ((2q-k)! q!) / ((2q)! k! (q-k)!)
  const double c[7] = {1.0,
                       0.5,
                       0.11363636363636365,      // 15/132
                       0.015151515151515152,     // 20/1320
                       1.2626262626262627e-3,    // 15/11880
                       6.313131313131313e-5,     // 6/95040
                       1.5031265031265032e-6};   // 720/479001600

  const Matrix ident = Matrix::identity(n);
  Matrix x2 = x * x;
  Matrix x4 = x2 * x2;
  Matrix x6 = x4 * x2;
  // Even part E = c0 I + c2 X^2 + c4 X^4 + c6 X^6
  Matrix even = c[0] * ident + c[2] * x2 + c[4] * x4 + c[6] * x6;
  // Odd part O = X (c1 I + c3 X^2 + c5 X^4)
  Matrix odd = x * (c[1] * ident + c[3] * x2 + c[5] * x4);
  // N = E + O, D = E - O;  e^x ~ D^-1 N
  Matrix numer = even + odd;
  Matrix denom = even - odd;
  Matrix result = solve(denom, numer);

  for (int i = 0; i < s; ++i) result = result * result;
  return result;
}

}  // namespace ecsim::math
