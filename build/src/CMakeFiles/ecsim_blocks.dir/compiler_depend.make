# Empty compiler generated dependencies file for ecsim_blocks.
# This may be replaced when dependencies are built.
