// EXP-P8: batched SIMD lockstep Monte Carlo (DESIGN.md §3.8). Thread-level
// parallelism buys nothing on a 1-CPU host (BENCH_p3: 0.94x at every thread
// count); lane-level parallelism is the remaining axis. The batched engine
// runs W trials per instruction through per-lane CompiledModel arenas behind
// one shared masked event queue: queue pushes/pops, heap reorganization,
// integration stepping — and, for blocks declaring uniform event handling
// (Block::event_uniformity), the on_event calls themselves — are paid once
// per *batch* instead of once per trial, while per-lane block evaluations
// keep every trial bit-identical to the scalar Simulator (the
// SimdLaneProperty suite is the hard guard).
//
// Measured on the standard workloads:
//   - chains_200: the EXP-P1/P6 event workload. Constant-duration delays
//     declare lockstep event handling, so the driver executes each delay
//     once per batch and per-lane cost shrinks to the trace records — this
//     is the gated scenario;
//   - servo_rk4:  the sampled-data servo loop (integration bound; the
//     lockstep RK4 runs pack<W> kernels over the stacked lane states).
// Interleaved best-of-reps: scalar (batch_width 1, a reused Simulator — the
// honest baseline) vs batched (kBatchWidth lanes), same process.
//
// GUARD: batched >= 2x scalar trials/s on chains_200 AND per-trial digest
// vectors identical between the two paths on both scenarios. Runs via
// `ctest -C bench` (bench_p8_simd_mc_guard); exits nonzero on failure.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blocks/examples.hpp"
#include "par/sim_monte_carlo.hpp"
#include "simd/batched_sim.hpp"
#include "simd/pack.hpp"

using namespace ecsim;

namespace {

/// Lanes per batch for the measured configuration. Wider is not better
/// without bound: the per-lane residue (trace tails, arenas, each lane's
/// block objects) scales with lanes and falls out of L2 past ~8 lanes on
/// this host (BM_BatchedMonteCarlo shows the curve), so the gated config
/// runs the throughput sweet spot, one lane per pack<W> slot. Must be
/// <= 64 (one mask word).
constexpr std::size_t kBatchWidth = 8;
constexpr std::size_t kTrials = 32;
constexpr int kReps = 5;
constexpr double kGuard = 2.0;

struct Scenario {
  const char* name;
  sweep::SimMonteCarloSpec spec;  // batch_width filled per measurement
  sim::BatchedSim::ModelFactory factory;
};

struct Measured {
  double scalar_best = 0.0;   // trials/s, batch_width 1
  double batched_best = 0.0;  // trials/s, kBatchWidth lanes
  std::size_t events = 0;     // per full MC run (same both ways)
  std::size_t evictions = 0;  // of the last batched run
  std::string ir_hash;
  bool identical = false;  // digest vectors equal on every rep
};

Measured measure(const Scenario& sc) {
  Measured out;
  out.identical = true;
  sweep::SimMonteCarloSpec scalar = sc.spec;
  scalar.batch_width = 1;
  scalar.model.clear();  // quiet warm-up/baseline: no ledger traffic
  sweep::SimMonteCarloSpec batched = sc.spec;
  batched.batch_width = kBatchWidth;
  batched.model = sc.name;  // the ledger-visible MC throughput record

  // Warm-up: first runs build the per-worker engines.
  const sweep::SimMonteCarloResult ref =
      run_sim_monte_carlo(sc.factory, scalar, {});
  out.events = ref.events;
  out.ir_hash = ref.ir_hash;

  for (int r = 0; r < kReps; ++r) {
    const sweep::SimMonteCarloResult s =
        run_sim_monte_carlo(sc.factory, scalar, {});
    out.scalar_best = std::max(out.scalar_best, s.trials_per_s);
    const sweep::SimMonteCarloResult b =
        run_sim_monte_carlo(sc.factory, batched, {});
    out.batched_best = std::max(out.batched_best, b.trials_per_s);
    out.evictions = b.evictions;
    out.identical = out.identical && s.digests == ref.digests &&
                    b.digests == ref.digests && b.events == ref.events;
  }
  return out;
}

int experiment() {
  bench::banner("EXP-P8", "(SIMD lockstep Monte Carlo, DESIGN.md §3.8)",
                "W trials per instruction through batched CompiledModel "
                "lanes vs a reused scalar Simulator: same seeds, "
                "bit-identical per-trial digests, one masked event queue "
                "amortized across the batch.");

  Scenario chains{"chains_200", {}, [] {
                    return std::make_unique<sim::Model>(
                        blocks::examples::make_chains(200));
                  }};
  chains.spec.trials = kTrials;
  chains.spec.sim.end_time = 0.25;
  chains.spec.sim.reserve_queue = 1024;

  Scenario servo{"servo_rk4", {}, [] {
                   return std::make_unique<sim::Model>(
                       blocks::examples::make_servo());
                 }};
  servo.spec.trials = kTrials;
  servo.spec.sim.end_time = 1.0;
  servo.spec.sim.integrator.kind = sim::IntegratorKind::kRk4;
  servo.spec.sim.integrator.max_step = 2e-4;

  bench::JsonReport report("EXP-P8");
  {
    sim::Model m = blocks::examples::make_chains(200);
    report.model_ir_hash("chains_200", m);
    sim::Model s = blocks::examples::make_servo();
    report.model_ir_hash("servo_rk4", s);
  }
  report.begin_array("monte_carlo");
  std::printf("%-12s %8s %7s %14s %14s %9s %9s %10s\n", "scenario", "trials",
              "width", "scalar [t/s]", "batched [t/s]", "speedup", "evict",
              "digests");

  double chains_speedup = 0.0;
  bool identical = true;
  for (const Scenario* sc : {&chains, &servo}) {
    const Measured m = measure(*sc);
    const double speedup =
        m.scalar_best > 0.0 ? m.batched_best / m.scalar_best : 0.0;
    if (std::string(sc->name) == "chains_200") chains_speedup = speedup;
    identical = identical && m.identical;
    std::printf("%-12s %8zu %7zu %14.1f %14.1f %8.2fx %9zu %10s\n", sc->name,
                kTrials, kBatchWidth, m.scalar_best, m.batched_best, speedup,
                m.evictions, m.identical ? "identical" : "DIVERGED");
    report.begin_object();
    report.field("scenario", std::string(sc->name));
    report.field("model_ir_hash", m.ir_hash);
    report.field("trials", kTrials);
    report.field("batch_width", kBatchWidth);
    report.field("events", m.events);
    report.field("scalar_best_trials_per_s", m.scalar_best);
    report.field("mc_best_trials_per_s", m.batched_best);
    report.field("speedup", speedup);
    report.field("evictions", m.evictions);
    report.field("digests_identical", std::string(m.identical ? "yes" : "NO"));
    report.end_object();
  }
  report.end_array();

  const bool pass = chains_speedup >= kGuard && identical;
  report.begin_array("guard");
  report.begin_object();
  report.field("scenario", std::string("chains_200"));
  report.field("min_speedup", kGuard);
  report.field("measured_speedup", chains_speedup);
  report.field("digests_identical", std::string(identical ? "yes" : "NO"));
  report.field("pass", std::string(pass ? "yes" : "NO"));
  report.end_object();
  report.end_array();
  std::printf("\nguard: chains_200 batched speedup %.2fx (need >= %.2fx), "
              "digests %s — %s\n\n",
              chains_speedup, kGuard, identical ? "identical" : "DIVERGED",
              pass ? "PASS" : "FAIL");
  report.write("BENCH_p8.json");
  return pass ? 0 : 1;
}

/// Trials/s as a function of batch width, google-benchmark view: how far
/// the shared-queue amortization carries before per-lane work dominates.
void BM_BatchedMonteCarlo(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  sweep::SimMonteCarloSpec spec;
  spec.trials = 16;
  spec.sim.end_time = 0.1;
  spec.sim.reserve_queue = 1024;
  spec.batch_width = width;
  const sim::BatchedSim::ModelFactory factory = [] {
    return std::make_unique<sim::Model>(blocks::examples::make_chains(50));
  };
  std::size_t trials = 0;
  for (auto _ : state) {
    const sweep::SimMonteCarloResult r =
        run_sim_monte_carlo(factory, spec, {});
    trials += r.trials;
    benchmark::DoNotOptimize(r.digests.data());
  }
  state.counters["trials_per_s"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedMonteCarlo)->Arg(1)->Arg(4)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  if (rc != 0) return rc;
  return ecsim::bench::run_benchmarks(argc, argv);
}
