file(REMOVE_RECURSE
  "CMakeFiles/pendulum_conditioning.dir/pendulum_conditioning.cpp.o"
  "CMakeFiles/pendulum_conditioning.dir/pendulum_conditioning.cpp.o.d"
  "pendulum_conditioning"
  "pendulum_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pendulum_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
