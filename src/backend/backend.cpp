#include "backend/backend.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "backend/native_abi.hpp"
#include "backend/native_backend.hpp"
#include "backend/native_codegen.hpp"
#include "backend/obs_abi.hpp"
#include "blocks/to_model.hpp"
#include "obs/ledger.hpp"
#include "sim/build_ir.hpp"

namespace ecsim::backend {

namespace {

void count(obs::MetricsRegistry* m, const std::string& name) {
  if (m != nullptr) m->counter(name).add();
}

RunResult run_interp(sim::Model& model, const RunOptions& o) {
  sim::Simulator s(model, o.sim);
  s.run();
  RunResult r;
  r.trace = std::move(s.trace());
  r.events_dispatched = s.events_dispatched();
  r.used = Kind::kInterp;
  count(o.metrics, "backend.interp.runs");
  return r;
}

RunResult run_native_module(const NativeModule& mod, const RunOptions& o) {
  NativeRunOptions n;
  n.end_time = o.sim.end_time;
  n.integrator_kind = static_cast<int>(o.sim.integrator.kind);
  n.max_step = o.sim.integrator.max_step;
  n.rel_tol = o.sim.integrator.rel_tol;
  n.abs_tol = o.sim.integrator.abs_tol;
  n.min_step = o.sim.integrator.min_step;
  n.seed = o.sim.seed;
  n.max_events = o.sim.max_events;
  n.full_refresh = o.sim.full_refresh ? 1 : 0;
  n.reserve_events = o.sim.reserve_events;
  n.reserve_signals = o.sim.reserve_signals;
  n.reserve_queue = o.sim.reserve_queue;
  // ABI v2: attached observability rides into the module through the
  // callback table (stack-lifetime — the table only borrows the host's
  // tracer/registry for this one call). A run without obs passes no table
  // and the module's hooks cost one null test each.
  const NativeObsTable table = make_obs_table(o.sim.tracer, o.sim.metrics);
  if (table.tracer != nullptr || table.metrics != nullptr) n.obs = &table;

  RunResult r;
  std::size_t events = 0;
  char err[1024] = {0};
  const int rc = mod.run(&n, &r.trace, &events, err, sizeof err);
  if (rc != 0) {
    // A loaded module failing is a model-semantic error (max_events, a
    // sampler misbehaving, ...) that the interpreter would throw too.
    throw std::runtime_error(err[0] != '\0' ? err
                                            : "native model: run failed");
  }
  r.events_dispatched = events;
  r.used = Kind::kNative;
  count(o.metrics, "backend.native.runs");
  return r;
}

/// The native attempt, shared by run() and run_ir(). Returns the result on
/// success; on any non-semantic obstacle sets `reason` and returns nothing.
/// `ir_hash_out` receives the IR hash whenever lowering succeeded (for the
/// ledger record, even if a later stage fell back).
template <class MakeIr>
std::optional<RunResult> try_native(MakeIr&& make_ir, const RunOptions& o,
                                    std::string& reason,
                                    std::string& ir_hash_out) {
  if (o.sim.legacy_integrator_alloc || o.sim.legacy_event_queue) {
    reason = "legacy_baseline: legacy_* cost model requested";
    return std::nullopt;
  }
  const ir::Model* irm = nullptr;
  try {
    irm = make_ir();
  } catch (const std::exception& ex) {
    reason = std::string("codegen: lowering to IR failed: ") + ex.what();
    return std::nullopt;
  }
  ir_hash_out = ir::hash_hex(*irm);
  if (native_disabled()) {
    reason = "disabled: ECSIM_NATIVE_DISABLE is set";
    return std::nullopt;
  }
  if (!ir::fully_described(*irm)) {
    reason = "opaque: model contains blocks the IR cannot regenerate";
    return std::nullopt;
  }
  std::string source;
  try {
    source = generate_native_source(*irm);
  } catch (const std::exception& ex) {
    reason = std::string("codegen: ") + ex.what();
    return std::nullopt;
  }
  const NativeModule* mod = nullptr;
  try {
    mod = &load_native_module(*irm, source);
  } catch (const std::exception& ex) {
    reason = std::string("toolchain: ") + ex.what();
    return std::nullopt;
  }
  return run_native_module(*mod, o);
}

std::string category_of(const std::string& reason) {
  const auto colon = reason.find(':');
  return colon == std::string::npos ? reason : reason.substr(0, colon);
}

/// Every run stamps the process ledger (obs/ledger.hpp) — the "why did this
/// run the way it did, and how fast" record the methodology's iteration
/// comparisons read back.
void stamp_ledger(const RunOptions& o, const RunResult& r,
                  const std::string& ir_hash, double wall_s) {
  obs::LedgerRecord rec;
  rec.ir_hash = ir_hash;
  rec.model = o.model_name;
  rec.backend_requested = to_string(o.kind);
  rec.backend_used = to_string(r.used);
  rec.fallback_reason = r.fallback_reason;
  rec.seed = o.sim.seed;
  rec.fault_plan_hash = o.fault_plan_hash;
  rec.threads = o.threads;
  rec.wall_s = wall_s;
  rec.events = r.events_dispatched;
  rec.events_per_s =
      wall_s > 0.0 ? static_cast<double>(r.events_dispatched) / wall_s : 0.0;
  if (o.sim.metrics != nullptr) {
    // The registry's JSON is pretty-printed; a ledger record is one line.
    std::string mj = o.sim.metrics->to_json();
    std::string flat;
    flat.reserve(mj.size());
    for (char c : mj) {
      if (c != '\n' && c != '\r') flat += c;
    }
    rec.metrics_json = std::move(flat);
  }
  obs::Ledger::global().append(rec);
}

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RunResult run(sim::Model& model, const RunOptions& opts) {
  const Clock::time_point t0 = Clock::now();
  std::string ir_hash;
  if (opts.kind == Kind::kInterp) {
    RunResult r = run_interp(model, opts);
    stamp_ledger(opts, r, ir_hash, seconds_since(t0));
    return r;
  }
  std::string reason;
  ir::Model irm;
  auto make_ir = [&]() -> const ir::Model* {
    irm = sim::build_ir(model);
    return &irm;
  };
  if (auto r = try_native(make_ir, opts, reason, ir_hash)) {
    stamp_ledger(opts, *r, ir_hash, seconds_since(t0));
    return std::move(*r);
  }
  count(opts.metrics, "backend.fallback." + category_of(reason));
  RunResult r = run_interp(model, opts);
  r.fallback_reason = reason;
  stamp_ledger(opts, r, ir_hash, seconds_since(t0));
  return r;
}

RunResult run_ir(const ir::Model& irm, const RunOptions& opts) {
  const Clock::time_point t0 = Clock::now();
  std::string reason;
  std::string ir_hash = ir::hash_hex(irm);
  if (opts.kind == Kind::kNative) {
    auto make_ir = [&]() -> const ir::Model* { return &irm; };
    if (auto r = try_native(make_ir, opts, reason, ir_hash)) {
      stamp_ledger(opts, *r, ir_hash, seconds_since(t0));
      return std::move(*r);
    }
    count(opts.metrics, "backend.fallback." + category_of(reason));
  }
  sim::Model model = blocks::to_model(irm);
  RunResult r = run_interp(model, opts);
  r.fallback_reason = reason;
  stamp_ledger(opts, r, ir_hash, seconds_since(t0));
  return r;
}

}  // namespace ecsim::backend
