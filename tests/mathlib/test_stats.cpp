#include "mathlib/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ecsim::math {
namespace {

TEST(Stats, EmptySampleSummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, KnownSample) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SingleElement) {
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);  // sorts internally
}

TEST(Stats, QuantileValidation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Stats, PeakToPeak) {
  EXPECT_DOUBLE_EQ(peak_to_peak({3.0, -1.0, 2.0}), 4.0);
  EXPECT_DOUBLE_EQ(peak_to_peak({}), 0.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  const auto h = histogram({0.1, 0.9, 0.5, -5.0, 5.0}, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0] + h[1], 5u);  // all samples counted (outliers clamped)
  EXPECT_EQ(h[0], 2u);         // 0.1 and clamped -5.0
  EXPECT_EQ(h[1], 3u);         // 0.5 (midpoint rounds up), 0.9, clamped 5.0
}

TEST(Stats, HistogramValidation) {
  EXPECT_THROW(histogram({1.0}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram({1.0}, 1.0, 0.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::math
