// EXP-M1 (Section 1 claim): the methodology shortens the design cycle by
// replacing hardware calibration iterations with co-simulation iterations.
// We replay the cycle: (1) naive design validated under the stroboscopic
// model; (2) co-simulation of the implementation reveals degradation;
// (3) latency-aware redesign (delay-augmented LQR) using only the
// co-simulation's latency measurement; (4) re-co-simulation confirms the
// recovery. Expected shape: redesign recovers most of the lost performance
// for latencies up to a large fraction of the period.
#include "bench_common.hpp"
#include "control/delay_compensation.hpp"

using namespace ecsim;

namespace {

struct CycleResult {
  double ideal_iae;
  double degraded_iae;
  double recovered_iae;
  double tau;
};

CycleResult design_cycle(double wcet_ctrl, double bus_latency) {
  const translate::LoopSpec spec = bench::servo_loop();
  translate::DistributedSpec dist;
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 2e4, bus_latency);
  dist.wcet_sense = 2e-4;
  dist.wcet_ctrl = wcet_ctrl;
  dist.wcet_act = 2e-4;
  dist.bind_sense = "P0";
  dist.bind_ctrl = "P1";
  dist.bind_act = "P0";

  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);
  const translate::CosimOutcome degraded =
      translate::run_distributed_loop(spec, dist);

  // Redesign using the co-simulated actuation latency (no hardware needed).
  const double tau = std::min(degraded.act_latency.summary.mean, spec.ts);
  control::StateSpace servo = plants::dc_servo();
  servo.c = math::Matrix{{1.0, 0.0}};
  servo.d = math::Matrix{{0.0}};
  const control::DelayLqrResult aware = control::dlqr_with_input_delay(
      servo, spec.ts, tau,
      control::augment_q(math::Matrix::diag({100.0, 0.01}), 1),
      math::Matrix{{1e-3}});
  translate::LoopSpec spec2 = spec;
  spec2.controller =
      control::delayed_feedback_controller(aware.k, aware.nbar, spec.ts);
  const translate::CosimOutcome recovered =
      translate::run_distributed_loop(spec2, dist);
  return CycleResult{ideal.iae, degraded.iae, recovered.iae, tau};
}

void experiment() {
  bench::banner("EXP-M1", "Section 1 (methodology claim)",
                "Design-cycle replay: naive design -> co-simulated "
                "degradation -> delay-aware redesign -> recovery.");
  std::printf("%22s %10s %10s %10s %10s %12s\n", "implementation",
              "tau/Ts", "ideal IAE", "naive IAE", "aware IAE", "recovered %");
  struct Case {
    const char* name;
    double wcet_ctrl;
    double bus_latency;
  };
  const Case cases[] = {
      {"light ctrl, fast bus", 1e-3, 1e-4},
      {"heavy ctrl, fast bus", 3e-3, 1e-4},
      {"heavy ctrl, slow bus", 3e-3, 1e-3},
      {"extreme (80% of Ts)", 5e-3, 1.2e-3},
  };
  for (const Case& c : cases) {
    const CycleResult r = design_cycle(c.wcet_ctrl, c.bus_latency);
    const double lost = r.degraded_iae - r.ideal_iae;
    const double recovered_pct =
        lost > 1e-12 ? 100.0 * (r.degraded_iae - r.recovered_iae) / lost : 0.0;
    std::printf("%22s %10.2f %10.5f %s %10.5f %12.1f\n", c.name, r.tau / 0.01,
                r.ideal_iae, bench::metric(r.degraded_iae).c_str(),
                r.recovered_iae, recovered_pct);
  }
  std::printf("\nEvery calibration iteration above ran in simulation — the "
              "cycle the paper wants to avoid lengthening.\n\n");
}

void BM_FullDesignCycle(benchmark::State& state) {
  for (auto _ : state) {
    auto r = design_cycle(3e-3, 1e-3);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FullDesignCycle)->Unit(benchmark::kMillisecond);

void BM_DelayAwareSynthesis(benchmark::State& state) {
  control::StateSpace servo = plants::dc_servo();
  servo.c = math::Matrix{{1.0, 0.0}};
  servo.d = math::Matrix{{0.0}};
  const math::Matrix q =
      control::augment_q(math::Matrix::diag({100.0, 0.01}), 1);
  for (auto _ : state) {
    auto r = control::dlqr_with_input_delay(servo, 0.01, 0.006, q,
                                            math::Matrix{{1e-3}});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DelayAwareSynthesis);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
