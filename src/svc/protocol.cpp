#include "svc/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ecsim::svc {

// ---- framing ---------------------------------------------------------------

namespace {

bool write_all(int fd, const char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF mid-frame or before the prefix
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  return write_all(fd, prefix, 4) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& out) {
  char prefix[4];
  if (!read_all(fd, prefix, 4)) return false;
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (len > kMaxFrameBytes) return false;
  out.resize(len);
  return len == 0 || read_all(fd, out.data(), len);
}

// ---- scalar helpers --------------------------------------------------------

std::string bits_of(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool double_of(const std::string& s, double& v) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long bits = std::strtoull(s.c_str(), &end, 16);
  if (end != s.c_str() + s.size()) return false;
  const std::uint64_t b = bits;
  std::memcpy(&v, &b, sizeof v);
  return true;
}

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// ---- Fields ----------------------------------------------------------------

void Fields::set(const std::string& key, std::string value) {
  kv_.emplace_back(key, std::move(value));
}

void Fields::set_u64(const std::string& key, std::uint64_t v) {
  set(key, std::to_string(v));
}

void Fields::set_bits(const std::string& key, double v) {
  set(key, bits_of(v));
}

void Fields::set_list(const std::string& key, const std::vector<double>& vs) {
  std::string out;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out += ',';
    out += hexfloat(vs[i]);
  }
  set(key, std::move(out));
}

const std::string* Fields::get(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Fields::get_u64(const std::string& key, std::uint64_t& v) const {
  const std::string* s = get(key);
  if (s == nullptr || s->empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s->c_str(), &end, 10);
  if (end != s->c_str() + s->size()) return false;
  v = parsed;
  return true;
}

bool Fields::get_bits(const std::string& key, double& v) const {
  const std::string* s = get(key);
  return s != nullptr && double_of(*s, v);
}

bool Fields::get_list(const std::string& key, std::vector<double>& vs) const {
  const std::string* s = get(key);
  if (s == nullptr) return false;
  vs.clear();
  if (s->empty()) return true;
  std::size_t at = 0;
  while (at <= s->size()) {
    std::size_t comma = s->find(',', at);
    if (comma == std::string::npos) comma = s->size();
    const std::string tok = s->substr(at, comma - at);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || tok.empty()) return false;
    vs.push_back(v);
    at = comma + 1;
    if (comma == s->size()) break;
  }
  return true;
}

std::string Fields::serialize() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    out += k;
    out += ' ';
    out += std::to_string(v.size());
    out += '\n';
    out += v;
    out += '\n';
  }
  return out;
}

bool Fields::parse(const std::string& text, Fields& out) {
  Fields f;
  std::size_t at = 0;
  while (at < text.size()) {
    const std::size_t sp = text.find(' ', at);
    if (sp == std::string::npos) return false;
    const std::size_t nl = text.find('\n', sp + 1);
    if (nl == std::string::npos) return false;
    const std::string key = text.substr(at, sp - at);
    char* end = nullptr;
    const std::string len_str = text.substr(sp + 1, nl - sp - 1);
    const unsigned long long len = std::strtoull(len_str.c_str(), &end, 10);
    if (end != len_str.c_str() + len_str.size() || len_str.empty()) {
      return false;
    }
    // Subtraction form: `len` is attacker-controlled, so `nl + 1 + len + 1`
    // can wrap. `nl < text.size()` here, so `avail` cannot underflow; the
    // value needs `len` bytes plus its trailing '\n'.
    const std::size_t avail = text.size() - nl - 1;
    if (len >= avail) return false;
    if (text[nl + 1 + len] != '\n') return false;
    f.kv_.emplace_back(key, text.substr(nl + 1, len));
    at = nl + 1 + len + 1;
  }
  out = std::move(f);
  return true;
}

// ---- verbs -----------------------------------------------------------------

const char* to_string(Verb v) {
  switch (v) {
    case Verb::kSweepTiming: return "sweep_timing";
    case Verb::kSweepArch: return "sweep_arch";
    case Verb::kSweepNetwork: return "sweep_network";
    case Verb::kFaultSweep: return "fault_sweep";
    case Verb::kFaultMc: return "fault_mc";
    case Verb::kVmMc: return "vm_mc";
    case Verb::kPing: return "ping";
    case Verb::kStats: return "stats";
    case Verb::kKillWorker: return "kill_worker";
  }
  return "?";
}

bool parse_verb(const std::string& s, Verb& out) {
  for (Verb v : {Verb::kSweepTiming, Verb::kSweepArch, Verb::kSweepNetwork,
                 Verb::kFaultSweep, Verb::kFaultMc, Verb::kVmMc, Verb::kPing,
                 Verb::kStats, Verb::kKillWorker}) {
    if (s == to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

// ---- Request ---------------------------------------------------------------

Fields Request::to_fields() const {
  Fields f;
  f.set("verb", to_string(verb));
  f.set("backend", backend);
  f.set("ts", hexfloat(ts));
  f.set("t_end", hexfloat(t_end));
  f.set_u64("seed", seed);
  switch (verb) {
    case Verb::kSweepTiming:
    case Verb::kSweepArch:
    case Verb::kSweepNetwork:
    case Verb::kFaultSweep:
      f.set_list("rows", rows);
      f.set_list("cols", cols);
      break;
    case Verb::kFaultMc:
      f.set("loss", hexfloat(loss));
      f.set_u64("trials", trials);
      break;
    case Verb::kVmMc:
      f.set_u64("trials", trials);
      f.set_u64("iterations", iterations);
      f.set("spec_text", spec_text);
      break;
    default:
      break;
  }
  return f;
}

bool Request::from_fields(const Fields& f, Request& out, std::string& err) {
  Request r;
  const std::string* verb_str = f.get("verb");
  if (verb_str == nullptr || !parse_verb(*verb_str, r.verb)) {
    err = "missing or unknown verb";
    return false;
  }
  if (const std::string* b = f.get("backend")) r.backend = *b;
  if (r.backend != "interp" && r.backend != "native") {
    err = "unknown backend '" + r.backend + "'";
    return false;
  }
  const std::string* s = nullptr;
  char* end = nullptr;
  if ((s = f.get("ts")) != nullptr) r.ts = std::strtod(s->c_str(), &end);
  if ((s = f.get("t_end")) != nullptr) r.t_end = std::strtod(s->c_str(), &end);
  if (!(r.ts > 0.0) || !(r.t_end > 0.0)) {
    err = "ts and t_end must be positive";
    return false;
  }
  f.get_u64("seed", r.seed);
  switch (r.verb) {
    case Verb::kSweepTiming:
    case Verb::kSweepArch:
    case Verb::kSweepNetwork:
    case Verb::kFaultSweep:
      if (!f.get_list("rows", r.rows) || !f.get_list("cols", r.cols) ||
          r.rows.empty() || r.cols.empty()) {
        err = "sweep request needs non-empty rows and cols";
        return false;
      }
      if (r.verb == Verb::kSweepNetwork) {
        for (const double c : r.cols) {
          if (c != 0.0 && c != 1.0) {
            err = "sweep_network cols must be scenario codes (0=can 1=tdma)";
            return false;
          }
        }
      }
      break;
    case Verb::kFaultMc:
      if ((s = f.get("loss")) != nullptr) {
        r.loss = std::strtod(s->c_str(), &end);
      }
      if (!f.get_u64("trials", r.trials) || r.trials == 0) {
        err = "fault_mc needs trials > 0";
        return false;
      }
      break;
    case Verb::kVmMc: {
      if (!f.get_u64("trials", r.trials) || r.trials == 0) {
        err = "vm_mc needs trials > 0";
        return false;
      }
      f.get_u64("iterations", r.iterations);
      const std::string* spec = f.get("spec_text");
      if (spec == nullptr || spec->empty()) {
        err = "vm_mc needs spec_text";
        return false;
      }
      r.spec_text = *spec;
      break;
    }
    default:
      break;
  }
  out = std::move(r);
  err.clear();
  return true;
}

std::size_t Request::units() const {
  switch (verb) {
    case Verb::kSweepTiming:
    case Verb::kSweepArch:
    case Verb::kSweepNetwork:
    case Verb::kFaultSweep:
      return rows.size() * cols.size();
    case Verb::kFaultMc:
      return trials;
    case Verb::kVmMc:
      return 1;
    default:
      return 0;
  }
}

// ---- responses -------------------------------------------------------------

void meta_to_fields(const ResponseMeta& m, Fields& f) {
  f.set("status", m.ok ? "ok" : "error");
  if (!m.ok) f.set("error", m.error);
  f.set("model_hash", m.model_hash);
  f.set_u64("cache_hits", m.cache_hits);
  f.set_u64("cache_units", m.cache_units);
  f.set_u64("served_from_cache", m.served_from_cache ? 1 : 0);
  f.set_u64("redispatches", m.redispatches);
}

ResponseMeta meta_from_fields(const Fields& f) {
  ResponseMeta m;
  const std::string* status = f.get("status");
  m.ok = status != nullptr && *status == "ok";
  if (const std::string* e = f.get("error")) m.error = *e;
  if (const std::string* h = f.get("model_hash")) m.model_hash = *h;
  f.get_u64("cache_hits", m.cache_hits);
  f.get_u64("cache_units", m.cache_units);
  std::uint64_t flag = 0;
  f.get_u64("served_from_cache", flag);
  m.served_from_cache = flag != 0;
  f.get_u64("redispatches", m.redispatches);
  return m;
}

// ---- blob lists ------------------------------------------------------------

std::string encode_blob_list(const std::vector<std::string>& blobs) {
  std::string out = std::to_string(blobs.size());
  out += '\n';
  for (const std::string& b : blobs) {
    out += std::to_string(b.size());
    out += '\n';
    out += b;
    out += '\n';
  }
  return out;
}

bool decode_blob_list(const std::string& text,
                      std::vector<std::string>& blobs) {
  blobs.clear();
  std::size_t at = 0;
  const auto read_count = [&](unsigned long long& n) {
    const std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos) return false;
    char* end = nullptr;
    const std::string tok = text.substr(at, nl - at);
    n = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || end != tok.c_str() + tok.size()) return false;
    at = nl + 1;
    return true;
  };
  unsigned long long count = 0;
  if (!read_count(count)) return false;
  // Every entry costs at least 3 bytes ("0\n" + '\n'), so a count beyond
  // the remaining bytes is corrupt; bounding before reserve() keeps a
  // hostile count from throwing length_error or allocating gigabytes.
  if (count > text.size() - at) return false;
  blobs.reserve(static_cast<std::size_t>(count));
  for (unsigned long long i = 0; i < count; ++i) {
    unsigned long long len = 0;
    if (!read_count(len)) return false;
    // Subtraction form avoids wrap-around on a hostile u64 length; the
    // payload needs `len` bytes plus its trailing '\n', and `at <= size`.
    if (len >= text.size() - at) return false;
    if (text[at + len] != '\n') return false;
    blobs.push_back(text.substr(at, len));
    at += static_cast<std::size_t>(len) + 1;
  }
  return at == text.size();
}

// ---- cell codecs -----------------------------------------------------------

namespace {

/// Tokenize a payload on single spaces; every codec below is fixed-layout.
std::vector<std::string> split(const std::string& s) {
  std::vector<std::string> toks;
  std::size_t at = 0;
  while (at <= s.size()) {
    std::size_t sp = s.find(' ', at);
    if (sp == std::string::npos) sp = s.size();
    toks.push_back(s.substr(at, sp - at));
    if (sp == s.size()) break;
    at = sp + 1;
  }
  return toks;
}

bool tok_u64(const std::string& s, std::uint64_t& v) {
  if (s.empty()) return false;
  char* end = nullptr;
  v = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

void put_summary(std::string& out, const math::Summary& s) {
  out += std::to_string(s.count);
  for (double v : {s.mean, s.stddev, s.min, s.max, s.median, s.p95}) {
    out += ' ';
    out += bits_of(v);
  }
}

bool take_summary(const std::vector<std::string>& toks, std::size_t& i,
                  math::Summary& s) {
  if (i + 7 > toks.size()) return false;
  std::uint64_t count = 0;
  if (!tok_u64(toks[i++], count)) return false;
  s.count = static_cast<std::size_t>(count);
  double* fields[] = {&s.mean, &s.stddev, &s.min, &s.max, &s.median, &s.p95};
  for (double* f : fields) {
    if (!double_of(toks[i++], *f)) return false;
  }
  return true;
}

}  // namespace

std::string encode_cell(const sweep::SweepCell& c) {
  std::string out = "S";
  for (double v : {c.la_frac, c.jitter_frac, c.bus_bandwidth, c.wcet_scale,
                   c.iae, c.ise, c.itae, c.cost, c.overshoot_pct,
                   c.act_latency_mean, c.act_jitter}) {
    out += ' ';
    out += bits_of(v);
  }
  out += c.stable ? " 1" : " 0";
  return out;
}

bool decode_cell(const std::string& s, sweep::SweepCell& c) {
  const std::vector<std::string> toks = split(s);
  if (toks.size() != 13 || toks[0] != "S") return false;
  sweep::SweepCell out;
  double* fields[] = {&out.la_frac,       &out.jitter_frac,
                      &out.bus_bandwidth, &out.wcet_scale,
                      &out.iae,           &out.ise,
                      &out.itae,          &out.cost,
                      &out.overshoot_pct, &out.act_latency_mean,
                      &out.act_jitter};
  for (std::size_t i = 0; i < 11; ++i) {
    if (!double_of(toks[i + 1], *fields[i])) return false;
  }
  out.stable = toks[12] == "1";
  c = out;
  return true;
}

std::string encode_cell(const sweep::FaultCell& c) {
  std::string out = "F";
  for (double v : {c.loss_rate, c.delay, c.iae, c.ise, c.itae, c.cost,
                   c.overshoot_pct}) {
    out += ' ';
    out += bits_of(v);
  }
  out += ' ';
  out += std::to_string(c.fault_seed);
  out += ' ';
  out += std::to_string(c.messages_lost);
  out += ' ';
  out += std::to_string(c.messages_deferred);
  out += c.stable ? " 1" : " 0";
  return out;
}

bool decode_cell(const std::string& s, sweep::FaultCell& c) {
  const std::vector<std::string> toks = split(s);
  if (toks.size() != 12 || toks[0] != "F") return false;
  sweep::FaultCell out;
  double* fields[] = {&out.loss_rate, &out.delay, &out.iae,
                      &out.ise,       &out.itae,  &out.cost,
                      &out.overshoot_pct};
  for (std::size_t i = 0; i < 7; ++i) {
    if (!double_of(toks[i + 1], *fields[i])) return false;
  }
  std::uint64_t u = 0;
  if (!tok_u64(toks[8], out.fault_seed)) return false;
  if (!tok_u64(toks[9], u)) return false;
  out.messages_lost = static_cast<std::size_t>(u);
  if (!tok_u64(toks[10], u)) return false;
  out.messages_deferred = static_cast<std::size_t>(u);
  out.stable = toks[11] == "1";
  c = out;
  return true;
}

std::string encode_cell(const sweep::NetworkCell& c) {
  std::string out = "N";
  for (double v : {c.bus_load, c.scenario, c.act_latency_mean, c.act_jitter,
                   c.nominal_iae, c.nominal_cost, c.retuned_iae,
                   c.retuned_cost, c.stability_margin}) {
    out += ' ';
    out += bits_of(v);
  }
  out += c.schedulable ? " 1" : " 0";
  out += c.stable ? " 1" : " 0";
  return out;
}

bool decode_cell(const std::string& s, sweep::NetworkCell& c) {
  const std::vector<std::string> toks = split(s);
  if (toks.size() != 12 || toks[0] != "N") return false;
  sweep::NetworkCell out;
  double* fields[] = {&out.bus_load,      &out.scenario,
                      &out.act_latency_mean, &out.act_jitter,
                      &out.nominal_iae,   &out.nominal_cost,
                      &out.retuned_iae,   &out.retuned_cost,
                      &out.stability_margin};
  for (std::size_t i = 0; i < 9; ++i) {
    if (!double_of(toks[i + 1], *fields[i])) return false;
  }
  out.schedulable = toks[10] == "1";
  out.stable = toks[11] == "1";
  c = out;
  return true;
}

std::string encode_mc(const sweep::MonteCarloResult& r) {
  std::string out = "M ";
  out += std::to_string(r.trials);
  out += ' ';
  out += std::to_string(r.deadlocks);
  out += ' ';
  put_summary(out, r.makespan);
  out += ' ';
  out += std::to_string(r.io_ops.size());
  for (const sweep::MonteCarloOpStats& op : r.io_ops) {
    out += ' ';
    out += std::to_string(op.op);
    out += op.sensor ? " 1 " : " 0 ";
    out += std::to_string(op.name.size());
    out += ' ';
    out += op.name;  // spec op names contain no spaces (io::parse_spec)
    out += ' ';
    put_summary(out, op.mean_latency);
    out += ' ';
    put_summary(out, op.max_latency);
    out += ' ';
    put_summary(out, op.jitter);
  }
  return out;
}

bool decode_mc(const std::string& s, sweep::MonteCarloResult& r) {
  const std::vector<std::string> toks = split(s);
  std::size_t i = 0;
  if (toks.empty() || toks[i++] != "M") return false;
  sweep::MonteCarloResult out;
  std::uint64_t u = 0;
  if (i >= toks.size() || !tok_u64(toks[i++], u)) return false;
  out.trials = static_cast<std::size_t>(u);
  if (i >= toks.size() || !tok_u64(toks[i++], u)) return false;
  out.deadlocks = static_cast<std::size_t>(u);
  if (!take_summary(toks, i, out.makespan)) return false;
  if (i >= toks.size() || !tok_u64(toks[i++], u)) return false;
  const std::size_t num_ops = static_cast<std::size_t>(u);
  // Each op consumes at least one token, so an op count beyond the
  // remaining tokens is corrupt; check before reserve() so a hostile
  // count cannot throw or allocate unboundedly.
  if (num_ops > toks.size() - i) return false;
  out.io_ops.reserve(num_ops);
  for (std::size_t k = 0; k < num_ops; ++k) {
    sweep::MonteCarloOpStats op;
    if (i + 3 > toks.size() || !tok_u64(toks[i], u)) return false;
    op.op = static_cast<aaa::OpId>(u);
    op.sensor = toks[i + 1] == "1";
    std::uint64_t name_len = 0;
    if (!tok_u64(toks[i + 2], name_len)) return false;
    i += 3;
    if (i >= toks.size() || toks[i].size() != name_len) return false;
    op.name = toks[i++];
    if (!take_summary(toks, i, op.mean_latency) ||
        !take_summary(toks, i, op.max_latency) ||
        !take_summary(toks, i, op.jitter)) {
      return false;
    }
    out.io_ops.push_back(std::move(op));
  }
  if (i != toks.size()) return false;
  r = std::move(out);
  return true;
}

}  // namespace ecsim::svc
