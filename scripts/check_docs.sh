#!/usr/bin/env bash
# Docs rot guard (run in CI, see .github/workflows/ci.yml):
#   1. every `ecsim_flow` subcommand mentioned in README.md / docs/ exists
#      in the CLI's usage text;
#   2. every --flag used on a documented `ecsim_flow` command line exists
#      in the usage text;
#   3. every `SimOptions::member` / `VmOptions::member` referenced in the
#      docs is still a member of the corresponding struct;
#   4. contract flags (--batch, ...) exist in BOTH the usage text and at
#      least one documented ecsim_flow command line — dropping either side
#      fails, so flag docs cannot silently rot;
#   5. the network-medium vocabulary documented in docs/networks.md (spec
#      directives, Arbitration enum values, sweep scenario names) still
#      exists in the spec parser / architecture-graph / sweep headers.
# Usage: scripts/check_docs.sh [path/to/ecsim_flow]
# Falls back to parsing tools/ecsim_flow.cpp when the binary isn't built.
set -euo pipefail
cd "$(dirname "$0")/.."

FLOW_BIN="${1:-build/tools/ecsim_flow}"
DOCS=(README.md docs/architecture.md docs/tutorial.md docs/benchmarks.md
      docs/networks.md)
fail=0

if [[ -x "$FLOW_BIN" ]]; then
  usage_text="$("$FLOW_BIN" 2>&1 || true)"
else
  echo "note: $FLOW_BIN not built; parsing usage() from tools/ecsim_flow.cpp"
  usage_text="$(sed -n '/usage: ecsim_flow/,/return 2;/p' tools/ecsim_flow.cpp)"
fi

# --- 1. subcommands -------------------------------------------------------
# Every word directly following an *invocation* of ecsim_flow in the docs
# (requiring a path prefix like ./build/tools/ecsim_flow filters out prose
# such as "the ecsim_flow command-line driver"). `sweep`, `fault`, `ir` and
# `ledger` take a bare sub-subcommand, so their second word is checked too.
doc_cmds=$(grep -rhoE "/ecsim_flow[[:space:]]+[a-z][a-z-]*([[:space:]]+[a-z][a-z-]*)?" "${DOCS[@]}" |
  sed 's|^/ecsim_flow[[:space:]]*||' |
  awk '{ print $1; if (($1 == "sweep" || $1 == "fault" || $1 == "ir" || $1 == "ledger") && NF > 1) print $2 }' |
  sort -u)
for cmd in $doc_cmds; do
  if ! grep -qE "(^|[^a-z-])${cmd}([^a-z-]|$)" <<<"$usage_text"; then
    echo "FAIL: documented ecsim_flow subcommand '${cmd}' not in usage text"
    fail=1
  fi
done

# --- 2. flags -------------------------------------------------------------
# Flags on ecsim_flow command lines, including backslash-continuations.
flow_lines=$(awk '
  /ecsim_flow/ { active = 1 }
  active { print; if ($0 !~ /\\$/) active = 0 }
' "${DOCS[@]}")
doc_flags=$(grep -oE -- "--[a-z][a-z-]*" <<<"$flow_lines" | sort -u || true)
for flag in $doc_flags; do
  if ! grep -qF -- "$flag" <<<"$usage_text"; then
    echo "FAIL: documented ecsim_flow flag '${flag}' not in usage text"
    fail=1
  fi
done

# --- 3. option-struct members --------------------------------------------
declare -A HEADER=(
  [SimOptions]=src/sim/simulator.hpp
  [VmOptions]=src/exec/executive_vm.hpp
)
doc_refs=$(grep -rhoE "(SimOptions|VmOptions)::[a-zA-Z_]+" "${DOCS[@]}" |
  sort -u || true)
for ref in $doc_refs; do
  struct="${ref%%::*}"
  member="${ref##*::}"
  header="${HEADER[$struct]}"
  body=$(awk "/struct ${struct} \\{/,/^\\};/" "$header")
  if [[ -z "$body" ]]; then
    echo "FAIL: struct ${struct} not found in ${header}"
    fail=1
  elif ! grep -qE "(^|[^a-zA-Z_])${member}([^a-zA-Z_]|$)" <<<"$body"; then
    echo "FAIL: ${ref} referenced in docs but '${member}' is not a member in ${header}"
    fail=1
  fi
done

# --- 4. contract flags ----------------------------------------------------
# Flags that are part of the documented CLI contract: each must be present
# in the usage text AND shown on an ecsim_flow command line in the docs.
# --socket/--connect are the two halves of the sweep-service contract
# (serve side / client side) — documenting one without the other, or
# dropping either from the CLI, fails here.
CONTRACT_FLAGS=(--batch --trials --threads --socket --connect)
for flag in "${CONTRACT_FLAGS[@]}"; do
  if ! grep -qF -- "$flag" <<<"$usage_text"; then
    echo "FAIL: contract flag '${flag}' missing from ecsim_flow usage text"
    fail=1
  fi
  if ! grep -qF -- "$flag" <<<"$flow_lines"; then
    echo "FAIL: contract flag '${flag}' not shown on any documented ecsim_flow command line"
    fail=1
  fi
done

# --- 5. network-medium vocabulary -----------------------------------------
# docs/networks.md documents the spec directives and the arbitration model
# by name; if the parser or the architecture graph renames them, the
# cookbook must not keep teaching the old words. Each directive below is
# both promised by the cookbook and matched against the parser's literal
# token test (`t[0] == "can"` etc. in src/io/spec.cpp).
NETWORK_DIRECTIVES=(can tdma load prio)
for word in "${NETWORK_DIRECTIVES[@]}"; do
  if ! grep -qE "^\| ?\`${word} |\`${word}\`|${word} [A-Z]" docs/networks.md; then
    echo "FAIL: network directive '${word}' no longer documented in docs/networks.md"
    fail=1
  fi
  if ! grep -qE "== \"${word}\"|\"${word}\"" src/io/spec.cpp; then
    echo "FAIL: documented spec directive '${word}' not handled by src/io/spec.cpp"
    fail=1
  fi
done
for enum_name in kImmediate kTdma kCanPriority; do
  if ! grep -qE "(^|[^a-zA-Z_])${enum_name}([^a-zA-Z_]|$)" src/aaa/architecture_graph.hpp; then
    echo "FAIL: Arbitration::${enum_name} missing from src/aaa/architecture_graph.hpp"
    fail=1
  fi
done
for scenario in can tdma; do
  if ! grep -qE "\"${scenario}\"|k$(tr '[:lower:]' '[:upper:]' <<<"${scenario:0:1}")${scenario:1}" src/par/network_sweep.hpp; then
    echo "FAIL: sweep scenario '${scenario}' missing from src/par/network_sweep.hpp"
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK (subcommands, flags, contract flags, option members and network vocabulary all exist)"
