// Shared runtime for generated model modules (DESIGN.md §3.6). A generated
// .cpp defines a `Program` — per-block parameters/state as members, the
// layout tables from ir::LayoutIr as static constexpr arrays, and four
// specialized entry points (init / compute / on_event / derivatives with
// literal arena offsets) — and instantiates Engine<Program>.
//
// Engine::run() is a line-by-line port of sim::Simulator::run() with the
// legacy_* bench baselines removed (the dispatcher falls back to the
// interpreter whenever those are requested). The observability hooks are
// ported too (ABI v2): telemetry flows through the NativeRunOptions::obs
// callback table at the exact points the interpreter instruments — per-run
// span, integration segments, cone-refresh spans, per-event instants,
// events/evals/queue-high-water/cone-size/evals-per-block metrics — so an
// instrumented native run produces the same sim-domain trace records and
// the same metrics values as an instrumented interpreter run. A null table
// (or a disabled tracer) keeps the hot path at one pointer test per hook,
// the same cost model as the interpreter's null/disabled instruments.
// Everything order-sensitive is either shared (the same same-instant lane,
// the same sim::integrate() stepping the same workspace, the same math::Rng
// and the same sim::Trace recording — unity-compiled into the module from
// the interpreter's own sources) or order-equivalent by construction: the
// event queue is the LaneQueue below, which pops the identical strict
// (time, seq) total order sim::EventQueue pops, just without the heap. A
// native run is therefore bit-identical to an interpreter run of the same
// IR: identical event sequences, identical RNG draw order, identical
// doubles in the trace (asserted by the interp-vs-native property suite).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "backend/native_abi.hpp"
#include "mathlib/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/integrator.hpp"
#include "sim/trace.hpp"

namespace ecsim::backend::rt {

/// Event queue specialized for generated modules. Engine::emit/schedule_self
/// compute an event's time as `eval_time_ + delay` where eval_time_ never
/// decreases across pushes and each call site's delay is (nearly) constant,
/// so the push stream decomposes into a handful of non-decreasing runs. The
/// queue exploits that: it keeps a few FIFO lanes, appends each push to the
/// first lane whose tail is not later than the new event (patience-style run
/// decomposition — every lane stays sorted in (time, seq) by construction,
/// no matter how call-site delays round), and pops the minimum among the
/// lane heads: O(lanes) push and pop with no sifting and no element
/// movement. A push older than every lane tail opens a new lane; past
/// kMaxLanes it falls to a conventional binary-heap side channel, so the
/// structure is exact for arbitrary models, merely fastest for the common
/// monotone case.
///
/// Pop order is bitwise identical to sim::EventQueue's: seq numbers are
/// assigned in the same global push order, each lane head is its lane's
/// (time, seq) minimum by the monotone-append invariant, the heap top is the
/// side channel's minimum, and every pop takes the global minimum across
/// those candidates — the same strict total order on (time, seq) the 4-ary
/// heap pops in. The interp-vs-native property suite asserts this trace
/// identity on every scenario it generates.
class LaneQueue {
 public:
  static constexpr std::size_t kMaxLanes = 16;

  void clear() {
    // Lanes persist across runs (delay classes are structural, buffers keep
    // their capacity); only the contents and the FIFO counter reset.
    for (Lane& l : lanes_) {
      l.buf.clear();
      l.head = 0;
    }
    heap_.clear();
    next_seq_ = 0;
    live_ = 0;
  }
  void reserve(std::size_t n) { heap_.reserve(n); }
  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Hot path, forced inline into the generated emit/on_event code: scan the
  /// (few) lanes for one whose tail is not later than the new event — a
  /// drained lane accepts anything — and append. Lane creation and overflow
  /// drop to the cold out-of-line push_slow, keeping the inlined footprint
  /// small enough that the generated switch bodies stay in the I-cache. The
  /// new event carries the largest seq so far, so "tail not later" reduces
  /// to a tail-time comparison and the appended lane stays (time, seq)
  /// sorted.
  [[gnu::always_inline]] inline void push(sim::Time at, std::size_t block,
                                          std::size_t event_in) {
    const sim::ScheduledEvent ev{at, next_seq_++, block, event_in};
    ++live_;
    for (Lane& l : lanes_) {
      if (l.head == l.buf.size()) {
        l.buf.clear();  // window fully drained: restart the ring
        l.head = 0;
      } else if (later(l.buf.back(), ev)) {
        continue;  // appending here would break the lane's sortedness
      }
      l.buf.push_back(ev);
      return;
    }
    push_slow(ev);
  }

  /// Earliest pending event time; queue must be non-empty.
  sim::Time next_time() const {
    const sim::ScheduledEvent* best = nullptr;
    for (const Lane& l : lanes_) {
      if (l.head < l.buf.size()) {
        const sim::ScheduledEvent* h = &l.buf[l.head];
        if (best == nullptr || later(*best, *h)) best = h;
      }
    }
    if (!heap_.empty()) {
      const sim::ScheduledEvent* h = &heap_.front();
      if (best == nullptr || later(*best, *h)) best = h;
    }
    if (best == nullptr) throw std::logic_error("LaneQueue::next_time: empty");
    return best->time;
  }

  /// Remove the earliest pending event if its time is exactly `t`; one
  /// argmin scan, no element movement. The engine drains one instant by
  /// calling this in a loop and dispatching each event as it pops — the
  /// same (time, seq) sequence sim::EventQueue::pop_simultaneous batches
  /// up, minus the copy into a batch vector. An event pushed mid-drain
  /// with a different time fails the exact == t check and waits for the
  /// next outer engine iteration, exactly as it would miss the batch.
  bool pop_next_at(sim::Time t, sim::ScheduledEvent& out) {
    Lane* best_lane = nullptr;
    const sim::ScheduledEvent* best = nullptr;
    for (Lane& l : lanes_) {
      if (l.head < l.buf.size()) {
        const sim::ScheduledEvent* h = &l.buf[l.head];
        if (best == nullptr || later(*best, *h)) {
          best = h;
          best_lane = &l;
        }
      }
    }
    if (!heap_.empty() &&
        (best == nullptr || later(*best, heap_.front()))) [[unlikely]] {
      if (heap_.front().time != t) return false;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      out = heap_.back();
      heap_.pop_back();
      --live_;
      return true;
    }
    if (best == nullptr || best->time != t) return false;
    out = *best;
    ++best_lane->head;
    --live_;
    return true;
  }

 private:
  struct Lane {
    std::size_t head = 0;  // buf[head..) is the live FIFO window
    std::vector<sim::ScheduledEvent> buf;
  };

  /// a should pop after b.
  static bool later(const sim::ScheduledEvent& a, const sim::ScheduledEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  struct Later {
    bool operator()(const sim::ScheduledEvent& a,
                    const sim::ScheduledEvent& b) const {
      return later(a, b);
    }
  };

  [[gnu::noinline]] void heap_push(const sim::ScheduledEvent& ev) {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Cold: the event predates every lane tail — open a new run (or overflow
  /// to the heap past kMaxLanes).
  [[gnu::noinline]] void push_slow(const sim::ScheduledEvent& ev) {
    if (lanes_.size() < kMaxLanes) {
      lanes_.emplace_back();
      lanes_.back().buf.reserve(64);
      lanes_.back().buf.push_back(ev);
      return;
    }
    heap_push(ev);
  }

  std::vector<Lane> lanes_;
  std::vector<sim::ScheduledEvent> heap_;  // Later{} min-heap side channel
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

template <class Program>
class Engine {
 public:
  Engine() : arena_(Program::kArenaSize, 0.0) {}

  /// The trace to record into (borrowed; typically the host's). run()
  /// clears it (names survive) and fills it exactly as the interpreter
  /// would.
  void bind_trace(sim::Trace* t) { trace_ = t; }

  void run(const NativeRunOptions& o) {
    // Latch observability for this run: ids and instrument handles resolved
    // once (mirror of Simulator::init_obs + the per-run tracing latch), so
    // the hot paths below touch only cached ids and one-branch null tests.
    init_obs(o.obs);
    const double run_t0 =
        obs_.tracing ? obs_.tab->now_us(obs_.tab->tracer) : 0.0;
    // Wall-clock span around the whole run (recorded on scope exit, after
    // the per-block eval flush — same order as the interpreter's RAII span).
    struct RunSpan {
      Engine* e;
      double t0;
      ~RunSpan() {
        if (e->obs_.tracing) {
          const NativeObsTable* tab = e->obs_.tab;
          tab->span(tab->tracer, e->obs_.n_run, e->obs_.trk_runtime, t0,
                    tab->now_us(tab->tracer), kNativeObsNoArg, 0.0);
        }
      }
    } run_span{this, run_t0};

    // Reset run state (including the RNG: same seed => same realization).
    rng_ = math::Rng(o.seed);
    time_ = 0.0;
    x_.assign(Program::kTotalState, 0.0);
    active_x_ = x_.data();
    queue_.clear();
    lane_.clear();
    lane_active_ = false;
    if (o.reserve_queue > 0) queue_.reserve(o.reserve_queue);
    iws_.resize(Program::kTotalState);
    trace_->clear();
    trace_->reserve(o.reserve_events, o.reserve_signals);
    events_dispatched_ = 0;
    std::fill(arena_.begin(), arena_.end(), 0.0);
    full_refresh_ = o.full_refresh != 0;

    sim::IntegratorOptions integ;
    integ.kind = static_cast<sim::IntegratorKind>(o.integrator_kind);
    integ.max_step = o.max_step;
    integ.rel_tol = o.rel_tol;
    integ.abs_tol = o.abs_tol;
    integ.min_step = o.min_step;

    // Initialize every block (may write state/outputs and schedule events),
    // then establish output consistency with one full sweep.
    eval_time_ = 0.0;
    prog_.init(*this);
    refresh_blocks(order_span(Program::kEvalOrder), 0.0);

    const double t_end = o.end_time;
    const std::size_t max_events = o.max_events;
    while (true) {
      double t_next = t_end;
      bool have_event = false;
      if (!queue_.empty() && queue_.next_time() <= t_end) {
        t_next = queue_.next_time();
        have_event = true;
      }
      if (t_next > time_) {
        if constexpr (Program::kTotalState > 0) {
          const double span_t0 =
              obs_.tracing ? obs_.tab->now_us(obs_.tab->tracer) : 0.0;
          sim::integrate(
              integ,
              [this](double t, const std::vector<double>& x,
                     std::vector<double>& dx) {
                evaluate_derivatives(t, x, dx);
              },
              time_, t_next, x_, iws_);
          active_x_ = x_.data();
          if (obs_.tracing) {
            const NativeObsTable* tab = obs_.tab;
            tab->span(tab->tracer, obs_.n_integrate, obs_.trk_runtime,
                      span_t0, tab->now_us(tab->tracer), kNativeObsNoArg,
                      0.0);
          }
        }
        time_ = t_next;
        refresh_dynamic(time_);
      }
      if (!have_event) break;
      // High-water mark of *pending* events, read once per instant before
      // the drain (the same-instant lane is empty here) — the same point the
      // interpreter samples queue_.size().
      if (obs_.queue_hwm != nullptr) {
        obs_.tab->gauge_max(obs_.queue_hwm, queue_.size());
      }
      lane_active_ = true;
      // Drain the instant pop-by-pop: same (time, seq) order the
      // interpreter's batched pop_simultaneous dispatches in, without
      // copying the tie set into a batch vector first. Same-instant
      // cascades emitted during dispatch land in lane_, never the queue,
      // so the == time_ drain sees exactly the original tie set.
      sim::ScheduledEvent ev;
      while (queue_.pop_next_at(time_, ev)) {
        dispatch_one(ev, max_events);
      }
      // Zero-delay cascades landed in the lane instead of the heap; index
      // loop because a dispatch may append (and reallocate) while we drain.
      for (std::size_t i = 0; i < lane_.size(); ++i) {
        const sim::ScheduledEvent e = lane_[i];
        dispatch_one(e, max_events);
      }
      lane_.clear();
      lane_active_ = false;
    }
    if (obs_.evals_per_block != nullptr) {
      // Distribution of eval calls across blocks for this run (hot blocks
      // sit in the top buckets); per-run counts then reset.
      for (std::uint64_t& n : obs_.per_block_evals) {
        if (n > 0) {
          obs_.tab->histogram_observe(obs_.evals_per_block,
                                      static_cast<double>(n));
        }
        n = 0;
      }
    }
  }

  std::size_t events_dispatched() const { return events_dispatched_; }

  // ---- services for generated kernels (the Context replacements) ----------

  double* arena() { return arena_.data(); }
  double time() const { return eval_time_; }
  math::Rng& rng() { return rng_; }
  sim::Trace& trace() { return *trace_; }
  const double* state(std::size_t offset) const { return active_x_ + offset; }
  double* state_mut(std::size_t offset) { return x_.data() + offset; }

  void emit(std::size_t block, std::size_t event_out, double delay) {
    const double at = eval_time_ + delay;
    const std::size_t slot = Program::kSinkBase[block] + event_out;
    const std::size_t lo = Program::kSinkPtr[slot];
    const std::size_t hi = Program::kSinkPtr[slot + 1];
    if (lane_active_ && at == time_) {
      for (std::size_t s = lo; s < hi; ++s) {
        lane_.push_back(sim::ScheduledEvent{at, 0, Program::kSinkBlock[s],
                                            Program::kSinkPort[s]});
      }
      return;
    }
    for (std::size_t s = lo; s < hi; ++s) {
      queue_.push(at, Program::kSinkBlock[s], Program::kSinkPort[s]);
    }
  }

  void schedule_self(std::size_t block, std::size_t event_in, double delay) {
    const double at = eval_time_ + delay;
    if (lane_active_ && at == time_) {
      lane_.push_back(sim::ScheduledEvent{at, 0, block, event_in});
      return;
    }
    queue_.push(at, block, event_in);
  }

 private:
  template <class Arr>
  static std::span<const std::size_t> order_span(const Arr& a) {
    return std::span<const std::size_t>(a.data(), a.size());
  }

  std::span<const std::size_t> cone(std::size_t block) const {
    return {Program::kConeBlocks.data() + Program::kConeBase[block],
            Program::kConeBase[block + 1] - Program::kConeBase[block]};
  }

  void refresh_blocks(std::span<const std::size_t> order, double t) {
    eval_time_ = t;
    for (std::size_t b : order) prog_.compute(*this, b);
    if (obs_.evals != nullptr) {
      obs_.tab->counter_add(obs_.evals, order.size());
      for (std::size_t b : order) ++obs_.per_block_evals[b];
    }
  }

  void refresh_dynamic(double t) {
    refresh_blocks(full_refresh_ ? order_span(Program::kEvalOrder)
                                 : order_span(Program::kDynamicCone),
                   t);
  }

  void evaluate_derivatives(double t, const std::vector<double>& x,
                            std::vector<double>& dx) {
    active_x_ = x.data();
    refresh_dynamic(t);
    std::fill(dx.begin(), dx.end(), 0.0);
    for (std::size_t b : Program::kStatefulBlocks) {
      prog_.derivatives(*this, b, dx.data() + Program::kStateOffset[b]);
    }
  }

  void dispatch_one(const sim::ScheduledEvent& e, std::size_t max_events) {
    trace_->record_event(e.time, e.block, e.event_in);
    if (obs_.tracing) {
      const NativeObsTable* tab = obs_.tab;
      // Sim-domain instant (seconds -> microseconds, obs::sim_us).
      tab->instant(tab->tracer, obs_.block_names[e.block], obs_.trk_events,
                   e.time * 1e6, obs_.a_port,
                   static_cast<double>(e.event_in));
    }
    if (obs_.events != nullptr) obs_.tab->counter_add(obs_.events, 1);
    eval_time_ = e.time;
    prog_.on_event(*this, e.block, e.event_in);
    const std::span<const std::size_t> c =
        full_refresh_ ? order_span(Program::kEvalOrder) : cone(e.block);
    if (obs_.tracing) {
      // Traced runs refresh even empty cones inside the span, exactly as
      // the interpreter's traced path does (a semantic no-op either way).
      const NativeObsTable* tab = obs_.tab;
      const double span_t0 = tab->now_us(tab->tracer);
      refresh_blocks(c, time_);
      tab->span(tab->tracer, obs_.n_cone, obs_.trk_runtime, span_t0,
                tab->now_us(tab->tracer), obs_.a_cone_size,
                static_cast<double>(c.size()));
    } else if (!c.empty()) {
      // Empty cones (pure event-plumbing blocks) skip the refresh outright —
      // same condition as the interpreter's non-traced hot path.
      refresh_blocks(c, time_);
    }
    if (obs_.cone_sizes != nullptr) {
      obs_.tab->histogram_observe(obs_.cone_sizes,
                                  static_cast<double>(c.size()));
    }
    if (++events_dispatched_ > max_events) {
      throw std::runtime_error(
          "Simulator: max_events exceeded (runaway loop?)");
    }
  }

  /// Mirror of Simulator::init_obs, resolved through the ABI v2 callback
  /// table: tracks, names and instrument handles are looked up once per run
  /// (interning is idempotent on the host side) in the same order the
  /// interpreter interns them, so resolved name/track strings line up
  /// between an instrumented interpreter run and an instrumented native run.
  void init_obs(const NativeObsTable* tab) {
    obs_.tab = tab;
    obs_.tracing = false;
    obs_.events = nullptr;
    obs_.evals = nullptr;
    obs_.queue_hwm = nullptr;
    obs_.cone_sizes = nullptr;
    obs_.evals_per_block = nullptr;
#ifndef ECSIM_OBS_DISABLED
    if (tab == nullptr) return;
    if (void* t = tab->tracer; t != nullptr) {
      obs_.tracing = tab->tracer_enabled(t) != 0;
      obs_.trk_runtime = tab->track(t, "runtime/sim", 0);  // Domain::kWall
      obs_.trk_events = tab->track(t, "sim/events", 1);    // Domain::kSim
      obs_.n_run = tab->intern(t, "sim.run");
      obs_.n_integrate = tab->intern(t, "sim.integrate");
      obs_.n_cone = tab->intern(t, "sim.cone_refresh");
      obs_.a_cone_size = tab->intern(t, "cone_size");
      obs_.a_port = tab->intern(t, "event_in");
      obs_.block_names.clear();
      obs_.block_names.reserve(Program::kBlockNames.size());
      for (const char* name : Program::kBlockNames) {
        obs_.block_names.push_back(tab->intern(t, name));
      }
    }
    if (void* m = tab->metrics; m != nullptr) {
      obs_.events = tab->counter(m, "sim.events_dispatched");
      obs_.evals = tab->counter(m, "sim.eval_calls");
      obs_.queue_hwm = tab->gauge(m, "sim.queue_high_water");
      obs_.cone_sizes = tab->histogram(m, "sim.cone_refresh_size");
      obs_.evals_per_block = tab->histogram(m, "sim.eval_calls_per_block");
      obs_.per_block_evals.assign(Program::kBlockNames.size(), 0);
    }
#endif
  }

  Program prog_;
  math::Rng rng_{1};
  sim::Trace* trace_ = nullptr;
  LaneQueue queue_;
  sim::IntegratorWorkspace iws_;
  std::vector<sim::ScheduledEvent> lane_;
  bool lane_active_ = false;
  bool full_refresh_ = false;

  std::vector<double> arena_;
  double time_ = 0.0;
  double eval_time_ = 0.0;
  std::vector<double> x_;
  const double* active_x_ = nullptr;
  std::size_t events_dispatched_ = 0;

  // Observability wiring (mirror of Simulator's ObsHooks): cached ids and
  // opaque host-side instrument handles; `tracing` is latched per run.
  struct ObsHooks {
    const NativeObsTable* tab = nullptr;
    bool tracing = false;
    std::uint32_t trk_runtime = 0;  // wall-clock spans
    std::uint32_t trk_events = 0;   // sim-time event instants
    std::uint32_t n_run = 0, n_integrate = 0, n_cone = 0;
    std::uint32_t a_cone_size = 0, a_port = 0;
    std::vector<std::uint32_t> block_names;
    void* events = nullptr;           // Counter: sim.events_dispatched
    void* evals = nullptr;            // Counter: sim.eval_calls
    void* queue_hwm = nullptr;        // Gauge: sim.queue_high_water
    void* cone_sizes = nullptr;       // Histogram: sim.cone_refresh_size
    void* evals_per_block = nullptr;  // Histogram: sim.eval_calls_per_block
    std::vector<std::uint64_t> per_block_evals;
  } obs_;
};

}  // namespace ecsim::backend::rt
