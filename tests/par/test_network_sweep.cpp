#include "par/network_sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ecsim::sweep {
namespace {

NetworkGrid small_network_grid() {
  NetworkGrid grid = network_servo_grid(0.01, 0.12);  // short unit-test horizon
  grid.bus_loads = {0.0, 0.5};
  grid.scenarios = {NetworkScenario::kCan, NetworkScenario::kTdma};
  return grid;
}

bool bit_identical(const std::vector<NetworkCell>& a,
                   const std::vector<NetworkCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetworkCell& x = a[i];
    const NetworkCell& y = b[i];
    if (x.bus_load != y.bus_load || x.scenario != y.scenario ||
        x.act_latency_mean != y.act_latency_mean ||
        x.act_jitter != y.act_jitter || x.nominal_iae != y.nominal_iae ||
        x.nominal_cost != y.nominal_cost || x.retuned_iae != y.retuned_iae ||
        x.retuned_cost != y.retuned_cost ||
        x.stability_margin != y.stability_margin ||
        x.schedulable != y.schedulable || x.stable != y.stable) {
      return false;
    }
  }
  return true;
}

TEST(NetworkSweep, ScenarioNamesAndCodesRoundTrip) {
  EXPECT_EQ(parse_scenario("can"), NetworkScenario::kCan);
  EXPECT_EQ(parse_scenario("tdma"), NetworkScenario::kTdma);
  EXPECT_STREQ(to_string(NetworkScenario::kCan), "can");
  EXPECT_STREQ(to_string(NetworkScenario::kTdma), "tdma");
  EXPECT_DOUBLE_EQ(scenario_code(NetworkScenario::kCan), 0.0);
  EXPECT_DOUBLE_EQ(scenario_code(NetworkScenario::kTdma), 1.0);
  for (const NetworkScenario s :
       {NetworkScenario::kCan, NetworkScenario::kTdma}) {
    EXPECT_EQ(scenario_of_code(scenario_code(s)), s);
    EXPECT_EQ(parse_scenario(to_string(s)), s);
  }
  EXPECT_THROW(parse_scenario("flexray"), std::invalid_argument);
  EXPECT_THROW(scenario_of_code(2.0), std::invalid_argument);
}

TEST(NetworkSweep, GridRowMajorAndPopulated) {
  const NetworkGrid grid = small_network_grid();
  par::BatchOptions batch;
  batch.threads = 1;
  const std::vector<NetworkCell> cells = run_network_sweep(grid, batch);
  ASSERT_EQ(cells.size(), 4u);  // 2 loads x {can, tdma}, row-major
  EXPECT_DOUBLE_EQ(cells[0].bus_load, 0.0);
  EXPECT_DOUBLE_EQ(cells[0].scenario, 0.0);
  EXPECT_DOUBLE_EQ(cells[1].scenario, 1.0);
  EXPECT_DOUBLE_EQ(cells[2].bus_load, 0.5);
  for (const NetworkCell& c : cells) {
    EXPECT_TRUE(c.schedulable);
    EXPECT_TRUE(c.stable);
    EXPECT_GT(c.act_latency_mean, 0.0);
    EXPECT_GT(c.nominal_iae, 0.0);
    EXPECT_GT(c.retuned_iae, 0.0);
    // The delay-aware retune's closed loop must come out stable.
    EXPECT_GT(c.stability_margin, 0.0);
    EXPECT_LE(c.stability_margin, 1.0);
  }
  // Background contention can only lengthen the measured actuation latency.
  EXPECT_GE(cells[2].act_latency_mean, cells[0].act_latency_mean);  // can
  EXPECT_GE(cells[3].act_latency_mean, cells[1].act_latency_mean);  // tdma
}

TEST(NetworkSweep, BitIdenticalAcrossThreadCounts) {
  const NetworkGrid grid = small_network_grid();
  std::vector<NetworkCell> reference;
  for (const std::size_t threads : {1u, 2u, 5u}) {
    par::BatchOptions batch;
    batch.threads = threads;
    const std::vector<NetworkCell> cells = run_network_sweep(grid, batch);
    if (threads == 1u) {
      reference = cells;
    } else {
      EXPECT_TRUE(bit_identical(reference, cells))
          << "threads=" << threads << " diverged from serial";
    }
  }
}

TEST(NetworkSweep, InfeasibleCellReportsUnschedulable) {
  NetworkGrid grid = small_network_grid();
  grid.bus_loads = {0.0};
  grid.scenarios = {NetworkScenario::kCan};
  grid.bus_bandwidth = 10.0;  // one transfer takes ~0.8 s >> the 0.01 s period
  const std::vector<NetworkCell> cells = run_network_sweep(grid, {});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].schedulable);
  EXPECT_FALSE(cells[0].stable);
}

TEST(NetworkSweep, CsvRendersEveryCell) {
  const NetworkGrid grid = small_network_grid();
  par::BatchOptions batch;
  batch.threads = 2;
  const std::vector<NetworkCell> cells = run_network_sweep(grid, batch);
  const std::string csv = to_csv(cells);
  EXPECT_NE(csv.find("bus_load,scenario,act_latency_mean"), std::string::npos);
  EXPECT_NE(csv.find("stability_margin,schedulable,stable"),
            std::string::npos);
  EXPECT_EQ(
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
      cells.size() + 1);
}

}  // namespace
}  // namespace ecsim::sweep
