// Simulator-level Monte Carlo guards (DESIGN.md §3.8): the per-trial digest
// vector is a pure function of (batch seed, trial count) — invariant under
// batch width AND thread count, including diagrams whose lanes diverge and
// spill — and a labelled run stamps one schema-v2 ledger record carrying
// trials/s (and no events/s, so it can never satisfy the single-run gate).
#include "par/sim_monte_carlo.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blocks/continuous.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/examples.hpp"
#include "blocks/probe.hpp"
#include "blocks/sources.hpp"
#include "obs/ledger.hpp"

namespace ecsim::sweep {
namespace {

using namespace ecsim::blocks;
using Factory = sim::BatchedSim::ModelFactory;

Factory chains_factory(std::size_t n) {
  return [n] { return std::make_unique<sim::Model>(examples::make_chains(n)); };
}

/// Jittered event times plus continuous state: lanes diverge, integration
/// boundaries stop being shared, and the batched engine must spill — the
/// invariance claims have to survive that too.
Factory jitter_stateful_factory() {
  return [] {
    auto m = std::make_unique<sim::Model>();
    auto& clk = m->add<Clock>("clk", 0.01);
    auto& d = m->add<EventDelay>("d", uniform_duration(0.001, 0.004));
    auto& cnt = m->add<EventCounter>("cnt");
    auto& sine = m->add<Sine>("sine", 1.0, 5.0);
    auto& integ = m->add<Integrator>("integ", 0.0);
    auto& probe = m->add<Probe>("probe", 1, 0.02);
    m->connect_event(clk, 0, d, 0);
    m->connect_event(d, 0, cnt, 0);
    m->connect(sine, 0, integ, 0);
    m->connect(integ, 0, probe, 0);
    (void)cnt;
    return m;
  };
}

TEST(SimMonteCarlo, DigestsInvariantAcrossWidthsAndThreads) {
  const Factory factory = chains_factory(3);
  SimMonteCarloSpec spec;
  spec.trials = 10;
  spec.sim.end_time = 0.05;
  spec.batch_width = 1;  // scalar reference
  par::BatchOptions serial;
  serial.threads = 1;
  serial.seed = 42;
  const SimMonteCarloResult ref = run_sim_monte_carlo(factory, spec, serial);
  ASSERT_EQ(ref.digests.size(), 10u);
  EXPECT_EQ(ref.batch_width, 1u);
  EXPECT_EQ(ref.evictions, 0u);
  EXPECT_GT(ref.events, 0u);
  EXPECT_GT(ref.trials_per_s, 0.0);
  EXPECT_EQ(ref.ir_hash.substr(0, 2), "0x");

  for (const std::size_t width : {2u, 4u, 8u}) {
    for (const std::size_t threads : {1u, 2u}) {
      SimMonteCarloSpec s = spec;
      s.batch_width = width;
      par::BatchOptions batch;
      batch.threads = threads;
      batch.seed = 42;
      const SimMonteCarloResult got = run_sim_monte_carlo(factory, s, batch);
      EXPECT_EQ(got.batch_width, width);
      EXPECT_EQ(got.digests, ref.digests)
          << "width " << width << " threads " << threads;
      EXPECT_EQ(got.events, ref.events);
      EXPECT_EQ(got.ir_hash, ref.ir_hash);
    }
  }
}

TEST(SimMonteCarlo, SpillingDiagramStaysInvariantAndCountsEvictions) {
  const Factory factory = jitter_stateful_factory();
  SimMonteCarloSpec spec;
  spec.trials = 8;
  spec.sim.end_time = 0.3;
  spec.batch_width = 1;
  const SimMonteCarloResult ref = run_sim_monte_carlo(factory, spec, {});
  SimMonteCarloSpec wide = spec;
  wide.batch_width = 4;
  const SimMonteCarloResult got = run_sim_monte_carlo(factory, wide, {});
  EXPECT_GT(got.evictions, 0u);  // jittered stateful lanes must spill
  EXPECT_EQ(got.digests, ref.digests);
  EXPECT_EQ(got.events, ref.events);
}

TEST(SimMonteCarlo, LabelledRunStampsTrialsPerSLedgerRecord) {
  obs::Ledger& g = obs::Ledger::global();
  const std::size_t before = g.size();
  SimMonteCarloSpec spec;
  spec.trials = 4;
  spec.sim.end_time = 0.02;
  spec.batch_width = 4;
  spec.model = "sim-mc-ledger-test";
  const SimMonteCarloResult r =
      run_sim_monte_carlo(chains_factory(2), spec, {});
  ASSERT_GT(g.size(), before);
  const obs::LedgerRecord rec = g.records().back();
  EXPECT_EQ(rec.schema_version, obs::kLedgerSchemaVersion);
  EXPECT_EQ(rec.model, "sim-mc-ledger-test");
  EXPECT_EQ(rec.backend_used, "simd");
  EXPECT_EQ(rec.ir_hash, r.ir_hash);
  EXPECT_GT(rec.trials_per_s, 0.0);
  EXPECT_DOUBLE_EQ(rec.events_per_s, 0.0);  // not a single-run record
  EXPECT_EQ(rec.events, r.events);

  // Unlabelled runs stay off the ledger (hot in-loop sweeps).
  const std::size_t after = g.size();
  SimMonteCarloSpec quiet = spec;
  quiet.model.clear();
  run_sim_monte_carlo(chains_factory(2), quiet, {});
  EXPECT_EQ(g.size(), after);
}

}  // namespace
}  // namespace ecsim::sweep
