// Shared scaffolding for the experiment benches: each binary prints its
// experiment tables (the reproduction of a paper figure) and then runs the
// registered google-benchmark cases on the underlying kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "ir/ir.hpp"
#include "plants/dc_servo.hpp"
#include "latency/latency.hpp"
#include "par/sweep.hpp"
#include "sim/build_ir.hpp"
#include "simd/pack.hpp"
#include "support/alloc_counter.hpp"
#include "translate/cosim.hpp"

namespace ecsim::bench {

/// Standard workload: LQR state feedback on the Cervin DC servo
/// G(s) = 1000/(s(s+1)) at Ts = 10 ms, unit position step over 1 s.
/// (Shared with the sweep engine — sweep grids and serial benches must
/// measure the exact same loop.)
inline translate::LoopSpec servo_loop(double ts = 0.01, double t_end = 1.0) {
  return sweep::servo_loop(ts, t_end);
}

/// Format a performance metric, collapsing diverged (unstable-loop) values
/// to a readable marker instead of astronomical numbers.
inline std::string metric(double v, const char* fmt = "%10.5f",
                          double unstable_above = 1e3) {
  char buf[64];
  if (!(v < unstable_above)) return "  unstable";
  std::snprintf(buf, sizeof buf, fmt, v);
  return std::string(buf);
}

/// Header banner for the experiment output.
inline void banner(const char* exp_id, const char* paper_anchor,
                   const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n%s\n", exp_id, paper_anchor, description);
  std::printf("================================================================\n\n");
}

/// Minimal machine-readable perf report: written as BENCH_<id>.json next to
/// the bench binary's working directory so the perf trajectory of an
/// experiment can be diffed across PRs. Usage:
///   JsonReport r("EXP-P1");
///   r.begin_array("event_dispatch");
///   r.begin_object(); r.field("chains", 200); ...; r.end_object();
///   r.end_array();
///   r.write("BENCH_p1.json");
class JsonReport {
 public:
  explicit JsonReport(const std::string& experiment) {
    // Sequential += throughout this class: GCC 12's -Wrestrict misfires on
    // chained std::string operator+ in inlined contexts.
    out_ = "{\n  \"experiment\": \"";
    out_ += experiment;
    out_ += "\"";
    // Perf numbers are meaningless without the machine that produced them:
    // stamp every report with host, core count and compiler. Allocation
    // counts are only live under -DECSIM_ALLOC_GUARD=ON; the stamp lets a
    // reader tell "0 allocs" apart from "not counted".
    raw_top_field("host", quoted(hostname()));
    raw_top_field("hardware_concurrency",
                  std::to_string(std::thread::hardware_concurrency()));
    raw_top_field("compiler", quoted(compiler()));
    raw_top_field("alloc_counting",
                  testing::alloc_guard_enabled() ? "\"on\"" : "\"off\"");
    // SIMD throughput figures are only comparable within one instruction
    // set: stamp the ISA the batched lanes were compiled for
    // ("avx2"/"sse2"/"scalar", the -DECSIM_SIMD= configure choice).
    raw_top_field("simd_isa", quoted(simd::isa_name()));
  }
  /// Stamp the canonical Model-IR hash (DESIGN.md §3.6) of a workload model
  /// so the report names the exact model its numbers were measured on —
  /// comparable across PRs as long as the hash is unchanged. Call before the
  /// first begin_array().
  void model_ir_hash(const std::string& name, const std::string& hash_hex) {
    std::string key = "model_ir_hash_";
    key += name;
    raw_top_field(key, quoted(hash_hex));
  }
  void model_ir_hash(const std::string& name, sim::Model& m) {
    model_ir_hash(name, ir::hash_hex(sim::build_ir(m, name)));
  }

  void begin_array(const std::string& name) {
    out_ += ",\n  \"" + name + "\": [";
    first_in_array_ = true;
  }
  void begin_object() {
    out_ += first_in_array_ ? "\n    {" : ",\n    {";
    first_in_array_ = false;
    first_in_object_ = true;
  }
  void field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw_field(key, buf);
  }
  void field(const std::string& key, std::size_t v) {
    raw_field(key, std::to_string(v));
  }
  void field(const std::string& key, const std::string& v) {
    raw_field(key, quoted(v));  // keys/values must not need escaping
  }
  void end_object() { out_ += "}"; }
  void end_array() { out_ += "\n  ]"; }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputs("\n}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n\n", path.c_str());
    return true;
  }

  static std::string hostname() {
#if defined(__unix__) || defined(__APPLE__)
    char buf[256] = {};
    if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
    return "unknown";
  }

  static std::string compiler() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
  }

 private:
  static std::string quoted(const std::string& s) {
    std::string q = "\"";
    q += s;
    q += "\"";
    return q;
  }

  void raw_top_field(const std::string& key, const std::string& value) {
    out_ += ",\n  \"";
    out_ += key;
    out_ += "\": ";
    out_ += value;
  }

  void raw_field(const std::string& key, const std::string& value) {
    out_ += first_in_object_ ? "\"" : ", \"";
    first_in_object_ = false;
    out_ += key;
    out_ += "\": ";
    out_ += value;
  }

  std::string out_;
  bool first_in_array_ = true;
  bool first_in_object_ = true;
};

/// Emit a measured phase's allocation counts next to its timing fields so
/// BENCH_*.json files track allocs/event across PRs. `probe` brackets the
/// phase (testing::AllocProbe); counts read 0 in ordinary builds — check the
/// report's top-level "alloc_counting" stamp before interpreting them.
inline void alloc_fields(JsonReport& r, const testing::AllocProbe& probe,
                         std::size_t events) {
  r.field("allocs", probe.allocations());
  r.field("allocs_per_event",
          events > 0
              ? static_cast<double>(probe.allocations()) /
                    static_cast<double>(events)
              : 0.0);
}

/// Print the table, then hand over to google-benchmark.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ecsim::bench
