#include "blocks/discrete.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::blocks {

StateSpaceDisc::StateSpaceDisc(std::string name, math::Matrix a, math::Matrix b,
                               math::Matrix c, math::Matrix d,
                               std::vector<double> x0)
    : Block(std::move(name)),
      a_(std::move(a)),
      b_(std::move(b)),
      c_(std::move(c)),
      d_(std::move(d)),
      x0_(std::move(x0)) {
  const std::size_t n = a_.rows();
  if (!a_.is_square() || b_.rows() != n || c_.cols() != n ||
      d_.rows() != c_.rows() || d_.cols() != b_.cols()) {
    throw std::invalid_argument("StateSpaceDisc: inconsistent matrix shapes");
  }
  if (x0_.empty()) x0_.assign(n, 0.0);
  if (x0_.size() != n) throw std::invalid_argument("StateSpaceDisc: x0 size");
  add_input(b_.cols());
  add_output(c_.rows());
  add_event_input();
  add_event_output();  // done
}

void StateSpaceDisc::initialize(Context& ctx) {
  x_ = x0_;
  auto y = ctx.output(0);
  std::fill(y.begin(), y.end(), 0.0);
}

void StateSpaceDisc::on_event(Context& ctx, std::size_t) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  for (std::size_t r = 0; r < c_.rows(); ++r) {
    double s = 0.0;
    for (std::size_t k = 0; k < c_.cols(); ++k) s += c_(r, k) * x_[k];
    for (std::size_t k = 0; k < d_.cols(); ++k) s += d_(r, k) * u[k];
    y[r] = s;
  }
  std::vector<double> next(x_.size(), 0.0);
  for (std::size_t r = 0; r < a_.rows(); ++r) {
    double s = 0.0;
    for (std::size_t k = 0; k < a_.cols(); ++k) s += a_(r, k) * x_[k];
    for (std::size_t k = 0; k < b_.cols(); ++k) s += b_(r, k) * u[k];
    next[r] = s;
  }
  x_ = std::move(next);
  ctx.emit(0, 0.0);
}

PidDiscrete::PidDiscrete(std::string name, Params p)
    : Block(std::move(name)), p_(p) {
  if (p_.ts <= 0.0) throw std::invalid_argument("PidDiscrete: ts must be > 0");
  if (p_.u_max < p_.u_min) throw std::invalid_argument("PidDiscrete: bad clamp");
  add_input(1);
  add_output(1);
  add_event_input();
  add_event_output();  // done
}

void PidDiscrete::initialize(Context& ctx) {
  integral_ = 0.0;
  deriv_ = 0.0;
  prev_error_ = 0.0;
  ctx.set_out1(0, 0.0);
}

void PidDiscrete::on_event(Context& ctx, std::size_t) {
  const double e = ctx.in1(0);
  deriv_ = (p_.kd * p_.n * (e - prev_error_) + deriv_) / (1.0 + p_.n * p_.ts);
  double u = p_.kp * e + integral_ + deriv_;
  const double u_clamped = std::clamp(u, p_.u_min, p_.u_max);
  // Conditional integration anti-windup: only integrate when not saturated
  // in the direction of the error.
  const bool saturating =
      (u > u_clamped && e > 0.0) || (u < u_clamped && e < 0.0);
  if (!saturating) integral_ += p_.ki * p_.ts * e;
  prev_error_ = e;
  ctx.set_out1(0, u_clamped);
  ctx.emit(0, 0.0);
}

UnitDelay::UnitDelay(std::string name, std::vector<double> init)
    : Block(std::move(name)), init_(std::move(init)) {
  if (init_.empty()) throw std::invalid_argument("UnitDelay: empty init");
  add_input(init_.size());
  add_output(init_.size());
  add_event_input();
  add_event_output();  // done
}

void UnitDelay::initialize(Context& ctx) {
  stored_ = init_;
  auto y = ctx.output(0);
  std::copy(stored_.begin(), stored_.end(), y.begin());
}

void UnitDelay::on_event(Context& ctx, std::size_t) {
  auto u = ctx.input(0);
  auto y = ctx.output(0);
  std::copy(stored_.begin(), stored_.end(), y.begin());
  stored_.assign(u.begin(), u.end());
  ctx.emit(0, 0.0);
}

EventCounter::EventCounter(std::string name) : Block(std::move(name)) {
  add_output(1);
  add_event_input();
}

void EventCounter::initialize(Context& ctx) {
  count_ = 0;
  ctx.set_out1(0, 0.0);
}

void EventCounter::on_event(Context& ctx, std::size_t) {
  ++count_;
  ctx.set_out1(0, static_cast<double>(count_));
}

}  // namespace ecsim::blocks
