file(REMOVE_RECURSE
  "CMakeFiles/ecsim_latency.dir/latency/latency.cpp.o"
  "CMakeFiles/ecsim_latency.dir/latency/latency.cpp.o.d"
  "libecsim_latency.a"
  "libecsim_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
