# Empty dependencies file for ecsim_aaa.
# This may be replaced when dependencies are built.
