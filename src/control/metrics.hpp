// Control-performance metrics computed from probe time series. These are the
// numbers that quantify "impact of the implementation on control performance"
// in every experiment.
#pragma once

#include <utility>
#include <vector>

#include "sim/trace.hpp"

namespace ecsim::control {

using sim::Time;
/// A (time, value) series as returned by Trace::series().
using Series = std::vector<std::pair<Time, double>>;

/// Integral of |ref - y| dt (trapezoidal).
double iae(const Series& y, double ref);
/// Integral of (ref - y)^2 dt.
double ise(const Series& y, double ref);
/// Integral of t * |ref - y| dt.
double itae(const Series& y, double ref);
/// Time-weighted quadratic regulation cost:
///   J = (1/T) * \int qy*(ref-y)^2 + ru*u^2 dt, with y and u sampled on the
/// same probe grid (series must be equally long and time-aligned).
double quadratic_cost(const Series& y, const Series& u, double ref, double qy,
                      double ru);

/// Step-response characteristics w.r.t. a final reference value.
struct StepInfo {
  double overshoot_pct = 0.0;    // (peak - ref)/|ref| * 100 (0 if none)
  double settling_time = -1.0;   // first time after which |y-ref| <= band*|ref|
  double rise_time = -1.0;       // 10% -> 90% of ref
  double steady_state_error = 0.0;  // |ref - y(end)|
  double peak = 0.0;
  Time peak_time = 0.0;
};

StepInfo step_info(const Series& y, double ref, double band = 0.02);

/// RMS of a series' values.
double rms(const Series& y);
/// Max |value|.
double max_abs(const Series& y);

}  // namespace ecsim::control
