#include "mathlib/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace ecsim::math {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiag) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diag({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_TRUE(approx_equal(sum, Matrix{{5.0, 5.0}, {5.0, 5.0}}));
  const Matrix diff = a - b;
  EXPECT_TRUE(approx_equal(diff, Matrix{{-3.0, -1.0}, {1.0, 3.0}}));
  EXPECT_TRUE(approx_equal(2.0 * a, Matrix{{2.0, 4.0}, {6.0, 8.0}}));
  EXPECT_TRUE(approx_equal(-a, Matrix{{-1.0, -2.0}, {-3.0, -4.0}}));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
}

TEST(Matrix, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_TRUE(approx_equal(a * b, Matrix{{19.0, 22.0}, {43.0, 50.0}}));
  // Identity is neutral.
  EXPECT_TRUE(approx_equal(a * Matrix::identity(2), a));
  EXPECT_TRUE(approx_equal(Matrix::identity(2) * a, a));
}

TEST(Matrix, MultiplyInnerDimensionMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), std::invalid_argument);
}

TEST(Matrix, MatrixVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v{1.0, 1.0};
  const std::vector<double> out = a * v;
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(Matrix, Transpose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(approx_equal(t.transpose(), a));
}

TEST(Matrix, TraceAndNorms) {
  Matrix a{{3.0, -4.0}, {0.0, 5.0}};
  EXPECT_DOUBLE_EQ(a.trace(), 8.0);
  EXPECT_NEAR(a.norm(), std::sqrt(9.0 + 16.0 + 25.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 7.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
}

TEST(Matrix, TraceNonSquareThrows) {
  EXPECT_THROW(Matrix(2, 3).trace(), std::invalid_argument);
}

TEST(Matrix, BlockOps) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix b = a.block(1, 1, 2, 2);
  EXPECT_TRUE(approx_equal(b, Matrix{{5.0, 6.0}, {8.0, 9.0}}));
  Matrix z = Matrix::zeros(3, 3);
  z.set_block(1, 1, Matrix{{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(z(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(z(2, 2), 4.0);
  EXPECT_THROW(a.block(2, 2, 2, 2), std::out_of_range);
  EXPECT_THROW(z.set_block(2, 2, Matrix(2, 2)), std::out_of_range);
}

TEST(Matrix, RowColExtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a.col(1), (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(a.row(1), (std::vector<double>{3.0, 4.0}));
}

TEST(Matrix, Concatenation) {
  Matrix a{{1.0}, {2.0}};
  Matrix b{{3.0}, {4.0}};
  EXPECT_TRUE(approx_equal(hcat(a, b), Matrix{{1.0, 3.0}, {2.0, 4.0}}));
  EXPECT_TRUE(
      approx_equal(vcat(a.transpose(), b.transpose()),
                   Matrix{{1.0, 2.0}, {3.0, 4.0}}));
  EXPECT_THROW(hcat(Matrix(2, 1), Matrix(3, 1)), std::invalid_argument);
  EXPECT_THROW(vcat(Matrix(1, 2), Matrix(1, 3)), std::invalid_argument);
}

TEST(VectorHelpers, Arithmetic) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 5.0};
  EXPECT_EQ(vec_add(a, b), (std::vector<double>{4.0, 7.0}));
  EXPECT_EQ(vec_sub(b, a), (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(vec_scale(2.0, a), (std::vector<double>{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), 13.0);
  EXPECT_NEAR(vec_norm(b), std::sqrt(34.0), 1e-12);
}

TEST(VectorHelpers, QuadForm) {
  Matrix q{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(quad_form(q, {1.0, 2.0}), 2.0 + 12.0);
}

TEST(Matrix, ApproxEqualRespectsTolerance) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-10}};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-11));
  EXPECT_FALSE(approx_equal(a, Matrix(1, 2)));
}

}  // namespace
}  // namespace ecsim::math
