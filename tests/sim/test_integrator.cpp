#include "sim/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecsim::sim {
namespace {

// dx/dt = -x, x(0) = 1 -> x(t) = e^{-t}
const DerivFn kDecay = [](Time, const std::vector<double>& x,
                          std::vector<double>& dx) { dx[0] = -x[0]; };

TEST(Integrator, Rk4Accuracy) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRk4;
  opts.max_step = 1e-3;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 1.0, x);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-10);
}

TEST(Integrator, Rk4LandsExactlyOnEndTime) {
  // Interval not divisible by max_step: final partial step must be taken.
  IntegratorOptions opts;
  opts.max_step = 0.3;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 1.0, x);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-4);
}

TEST(Integrator, Rkf45AdaptsAndMeetsTolerance) {
  IntegratorOptions opts;
  opts.kind = IntegratorKind::kRkf45;
  opts.max_step = 0.5;
  opts.rel_tol = 1e-9;
  opts.abs_tol = 1e-12;
  std::vector<double> x{1.0};
  integrate(opts, kDecay, 0.0, 2.0, x);
  EXPECT_NEAR(x[0], std::exp(-2.0), 1e-7);
}

TEST(Integrator, HarmonicOscillatorEnergyPreserved) {
  const DerivFn osc = [](Time, const std::vector<double>& x,
                         std::vector<double>& dx) {
    dx[0] = x[1];
    dx[1] = -x[0];
  };
  IntegratorOptions opts;
  opts.max_step = 1e-3;
  std::vector<double> x{1.0, 0.0};
  integrate(opts, osc, 0.0, 2.0 * std::numbers::pi, x);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 0.0, 1e-8);
}

TEST(Integrator, TimeDependentDerivative) {
  // dx/dt = t -> x(T) = T^2/2
  const DerivFn ramp = [](Time t, const std::vector<double>&,
                          std::vector<double>& dx) { dx[0] = t; };
  IntegratorOptions opts;
  opts.max_step = 1e-2;
  std::vector<double> x{0.0};
  integrate(opts, ramp, 0.0, 3.0, x);
  EXPECT_NEAR(x[0], 4.5, 1e-9);
}

TEST(Integrator, EmptyStateIsNoOp) {
  IntegratorOptions opts;
  std::vector<double> x;
  integrate(opts, kDecay, 0.0, 1.0, x);  // must not call dxdt
  EXPECT_TRUE(x.empty());
}

TEST(Integrator, BackwardIntervalThrows) {
  IntegratorOptions opts;
  std::vector<double> x{1.0};
  EXPECT_THROW(integrate(opts, kDecay, 1.0, 0.0, x), std::invalid_argument);
}

TEST(Integrator, ZeroLengthIntervalLeavesStateUntouched) {
  IntegratorOptions opts;
  std::vector<double> x{3.0};
  integrate(opts, kDecay, 1.0, 1.0, x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

}  // namespace
}  // namespace ecsim::sim
