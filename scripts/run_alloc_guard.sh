#!/usr/bin/env bash
# Zero-allocation steady-state guard (DESIGN.md §3.4): build with the
# counting operator new/delete enabled and run the hot-path suites that
# assert 0 heap allocations after warm-up, plus the queue/integrator
# equivalence properties in the same instrumented binary set. Uses its own
# build tree so the ordinary tier-1 build stays uninstrumented.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build-allocguard -S . -DECSIM_ALLOC_GUARD=ON
cmake --build build-allocguard -j"${JOBS}" --target test_hotpath test_sim test_properties
cd build-allocguard
exec ctest --output-on-failure -j"${JOBS}" \
  -R 'AllocGuard|EventQueue|Integrator|HotPathProperty'
