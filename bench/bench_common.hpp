// Shared scaffolding for the experiment benches: each binary prints its
// experiment tables (the reproduction of a paper figure) and then runs the
// registered google-benchmark cases on the underlying kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "plants/dc_servo.hpp"
#include "latency/latency.hpp"
#include "translate/cosim.hpp"

namespace ecsim::bench {

/// Standard workload: LQR state feedback on the Cervin DC servo
/// G(s) = 1000/(s(s+1)) at Ts = 10 ms, unit position step over 1 s.
inline translate::LoopSpec servo_loop(double ts = 0.01, double t_end = 1.0) {
  control::StateSpace servo = plants::dc_servo();
  servo.c = math::Matrix::identity(2);
  servo.d = math::Matrix::zeros(2, 1);
  const control::StateSpace servo_d = control::c2d(servo, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace pos = servo_d;
  pos.c = math::Matrix{{1.0, 0.0}};
  pos.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(pos, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = t_end;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;
  return spec;
}

/// Format a performance metric, collapsing diverged (unstable-loop) values
/// to a readable marker instead of astronomical numbers.
inline std::string metric(double v, const char* fmt = "%10.5f",
                          double unstable_above = 1e3) {
  char buf[64];
  if (!(v < unstable_above)) return "  unstable";
  std::snprintf(buf, sizeof buf, fmt, v);
  return std::string(buf);
}

/// Header banner for the experiment output.
inline void banner(const char* exp_id, const char* paper_anchor,
                   const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n%s\n", exp_id, paper_anchor, description);
  std::printf("================================================================\n\n");
}

/// Minimal machine-readable perf report: written as BENCH_<id>.json next to
/// the bench binary's working directory so the perf trajectory of an
/// experiment can be diffed across PRs. Usage:
///   JsonReport r("EXP-P1");
///   r.begin_array("event_dispatch");
///   r.begin_object(); r.field("chains", 200); ...; r.end_object();
///   r.end_array();
///   r.write("BENCH_p1.json");
class JsonReport {
 public:
  explicit JsonReport(const std::string& experiment) {
    out_ = "{\n  \"experiment\": \"" + experiment + "\"";
  }
  void begin_array(const std::string& name) {
    out_ += ",\n  \"" + name + "\": [";
    first_in_array_ = true;
  }
  void begin_object() {
    out_ += first_in_array_ ? "\n    {" : ",\n    {";
    first_in_array_ = false;
    first_in_object_ = true;
  }
  void field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw_field(key, buf);
  }
  void field(const std::string& key, std::size_t v) {
    raw_field(key, std::to_string(v));
  }
  void field(const std::string& key, const std::string& v) {
    raw_field(key, "\"" + v + "\"");  // keys/values must not need escaping
  }
  void end_object() { out_ += "}"; }
  void end_array() { out_ += "\n  ]"; }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputs("\n}\n", f);
    std::fclose(f);
    std::printf("wrote %s\n\n", path.c_str());
    return true;
  }

 private:
  void raw_field(const std::string& key, const std::string& value) {
    out_ += first_in_object_ ? "\"" : ", \"";
    first_in_object_ = false;
    out_ += key + "\": " + value;
  }

  std::string out_;
  bool first_in_array_ = true;
  bool first_in_object_ = true;
};

/// Print the table, then hand over to google-benchmark.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ecsim::bench
