#include "obs/trace_json.hpp"

#include <gtest/gtest.h>

namespace ecsim::obs {
namespace {

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonTraceWriter, EmptyWriterIsStillAValidDocument) {
  JsonTraceWriter w;
  EXPECT_EQ(w.num_events(), 0u);
  const std::string doc = w.str();
  EXPECT_NE(doc.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\": ["), std::string::npos);
}

TEST(JsonTraceWriter, TracerRecordsBecomeTraceEvents) {
  Tracer t;
  t.set_enabled(true);
  const std::uint32_t n = t.intern("sim.run");
  const std::uint32_t arg = t.intern("cone_size");
  const std::uint32_t wall = t.track("runtime/sim", Domain::kWall);
  const std::uint32_t sim = t.track("sim/events", Domain::kSim);
  t.span(n, wall, 100.0, 250.0, arg, 5.0);
  t.instant(t.intern("clk"), sim, sim_us(0.25));
  t.counter(t.intern("queue"), sim, sim_us(0.5), 12.0);

  JsonTraceWriter w;
  w.add(t);
  EXPECT_EQ(w.num_events(), 3u);
  const std::string doc = w.str();

  // Two processes: wall-clock runtime (pid 1) and sim timeline (pid 2).
  EXPECT_NE(doc.find("\"name\": \"runtime (wall clock)\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"timeline (sim time)\""), std::string::npos);
  // Track metadata.
  EXPECT_NE(doc.find("\"name\": \"runtime/sim\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"sim/events\""), std::string::npos);
  // Span with duration and args.
  EXPECT_NE(doc.find("\"ph\": \"X\", \"dur\": 150"), std::string::npos);
  EXPECT_NE(doc.find("\"cone_size\": 5"), std::string::npos);
  // Instant (thread-scoped) at sim 0.25 s -> 250000 us.
  EXPECT_NE(doc.find("\"ts\": 250000, \"ph\": \"i\", \"s\": \"t\""),
            std::string::npos);
  // Counter record.
  EXPECT_NE(doc.find("\"ph\": \"C\", \"args\": {\"value\": 12}"),
            std::string::npos);
}

TEST(JsonTraceWriter, SlicesLandOnSimProcessTracks) {
  JsonTraceWriter w;
  w.add_slices({TimelineSlice{"proc/P0", "ctrl", 0.001, 0.003,
                              {{"op", 2.0}, {"iteration", 0.0}}},
                TimelineSlice{"medium/can", "sense->ctrl", 0.0005, 0.001, {}}});
  w.add_instant("proc/P0", "deadline", 0.004, 1.0, "period");
  EXPECT_EQ(w.num_events(), 3u);
  const std::string doc = w.str();
  EXPECT_NE(doc.find("\"name\": \"proc/P0\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"medium/can\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"ctrl\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"sense->ctrl\""), std::string::npos);
  // 0.001 s -> 1000 us start, 2000 us duration; everything on pid 2.
  EXPECT_NE(doc.find("\"ts\": 1000, \"dur\": 2000"), std::string::npos);
  EXPECT_NE(doc.find("\"op\": 2, \"iteration\": 0"), std::string::npos);
  EXPECT_EQ(doc.find("\"pid\": 1,"), std::string::npos);  // no wall process
  EXPECT_NE(doc.find("\"period\": 1"), std::string::npos);
}

TEST(JsonTraceWriter, MergesTracksFromMultipleSources) {
  Tracer t;
  t.set_enabled(true);
  t.instant(t.intern("ev"), t.track("proc/P0", Domain::kSim), 0.0);

  JsonTraceWriter w;
  // Same track name from a slice and a tracer must collapse to one tid.
  w.add_slices({TimelineSlice{"proc/P0", "op", 0.0, 1.0, {}}});
  w.add(t);
  const std::string doc = w.str();
  // Exactly one thread_name metadata record for proc/P0.
  const std::size_t first = doc.find("{\"name\": \"proc/P0\"}");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(doc.find("{\"name\": \"proc/P0\"}", first + 1), std::string::npos);
}

TEST(JsonTraceWriter, WriteRoundTrips) {
  JsonTraceWriter w;
  w.add_slices({TimelineSlice{"proc/P0", "op", 0.0, 1.0, {}}});
  const std::string path = ::testing::TempDir() + "ecsim_trace_json_test.json";
  ASSERT_TRUE(w.write(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, w.str());
}

}  // namespace
}  // namespace ecsim::obs
