// EXP-O1 (supporting): cost of the observability layer on the EXP-P1
// 200-chain event workload. Three modes of the same simulation are timed:
//
//   baseline   no tracer, no metrics (SimOptions defaults)
//   disabled   a Tracer is attached but set_enabled(false) — the price of
//              *having* the hooks compiled in: one cached bool + branch
//   enabled    Tracer + MetricsRegistry live — the price of actually
//              recording every dispatch into the ring buffer
//
// The three simulators are timed interleaved (one rep each, repeated), and
// the best-of-N time per mode is compared so single-core scheduling noise
// does not masquerade as overhead. The bench FAILS (non-zero exit) if the
// disabled-mode throughput regresses more than kMaxDisabledOverheadPct
// against baseline — observability must be free when it is off.
#include <chrono>
#include <cstdlib>

#include "bench_common.hpp"
#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/compiled_model.hpp"
#include "sim/simulator.hpp"

using namespace ecsim;

namespace {

constexpr std::size_t kChains = 200;
constexpr int kReps = 7;
constexpr double kMaxDisabledOverheadPct = 2.0;

/// Same workload as EXP-P1: clock -> (d1 -> d2 -> counter) x kChains,
/// 1 ms tick over 1 s (~601k events).
sim::Model make_chains(std::size_t chains) {
  sim::Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1e-3);
  for (std::size_t c = 0; c < chains; ++c) {
    auto& d1 = m.add<blocks::EventDelay>("d1_" + std::to_string(c), 1e-4);
    auto& d2 = m.add<blocks::EventDelay>("d2_" + std::to_string(c), 2e-4);
    auto& n = m.add<blocks::EventCounter>("n_" + std::to_string(c));
    m.connect_event(clk, 0, d1, d1.event_in());
    m.connect_event(d1, d1.event_out(), d2, d2.event_in());
    m.connect_event(d2, d2.event_out(), n, 0);
  }
  return m;
}

double run_once(sim::Simulator& s) {
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

int experiment() {
  bench::banner("EXP-O1", "(observability overhead, supporting)",
                "Tracing/metrics cost on the EXP-P1 200-chain workload: "
                "baseline vs attached-but-disabled vs fully enabled.");

  sim::Model m = make_chains(kChains);

  sim::SimOptions base_opts{.end_time = 1.0};
  sim::Simulator s_base(sim::CompiledModel(m), base_opts);

  obs::Tracer tr_off;
  tr_off.set_enabled(false);
  sim::SimOptions off_opts = base_opts;
  off_opts.tracer = &tr_off;
  sim::Simulator s_off(sim::CompiledModel(m), off_opts);

  obs::Tracer tr_on;
  tr_on.set_enabled(true);
  obs::MetricsRegistry mx;
  sim::SimOptions on_opts = base_opts;
  on_opts.tracer = &tr_on;
  on_opts.metrics = &mx;
  sim::Simulator s_on(sim::CompiledModel(m), on_opts);

  // Warm-up (page in code + queues), then interleaved best-of-N.
  run_once(s_base);
  run_once(s_off);
  run_once(s_on);
  double t_base = 1e300, t_off = 1e300, t_on = 1e300;
  for (int r = 0; r < kReps; ++r) {
    t_base = std::min(t_base, run_once(s_base));
    t_off = std::min(t_off, run_once(s_off));
    t_on = std::min(t_on, run_once(s_on));
  }

  const auto events = static_cast<double>(s_base.events_dispatched());
  const double eps_base = events / t_base;
  const double eps_off = events / t_off;
  const double eps_on = events / t_on;
  const double ovh_off = 100.0 * (t_off - t_base) / t_base;
  const double ovh_on = 100.0 * (t_on - t_base) / t_base;
  const bool pass = ovh_off <= kMaxDisabledOverheadPct;

  std::printf("%-10s %12s %14s %10s\n", "mode", "events", "events/s",
              "overhead");
  std::printf("%-10s %12.0f %14.0f %9s\n", "baseline", events, eps_base, "-");
  std::printf("%-10s %12.0f %14.0f %+8.2f%%\n", "disabled", events, eps_off,
              ovh_off);
  std::printf("%-10s %12.0f %14.0f %+8.2f%%\n", "enabled", events, eps_on,
              ovh_on);
  std::printf("\nring: capacity=%zu recorded=%zu dropped=%zu (oldest "
              "overwritten)\n",
              tr_on.capacity(), tr_on.size(), tr_on.dropped());
  std::printf("guard: disabled overhead %.2f%% vs limit %.1f%% -> %s\n\n",
              ovh_off, kMaxDisabledOverheadPct, pass ? "PASS" : "FAIL");

  bench::JsonReport report("EXP-O1");
  report.model_ir_hash("chains", m);
  report.begin_array("obs_overhead");
  report.begin_object();
  report.field("chains", kChains);
  report.field("events", s_base.events_dispatched());
  report.field("reps", static_cast<std::size_t>(kReps));
  report.field("baseline_events_per_s", eps_base);
  report.field("disabled_events_per_s", eps_off);
  report.field("enabled_events_per_s", eps_on);
  report.field("disabled_overhead_pct", ovh_off);
  report.field("enabled_overhead_pct", ovh_on);
  report.field("ring_capacity", tr_on.capacity());
  report.field("ring_dropped", tr_on.dropped());
  report.field("guard_limit_pct", kMaxDisabledOverheadPct);
  report.field("guard", std::string(pass ? "pass" : "FAIL"));
  report.end_object();
  report.end_array();
  report.write("BENCH_o1.json");
  return pass ? 0 : 1;
}

void BM_DispatchObs(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  sim::Model m = make_chains(16);
  obs::Tracer tracer;
  tracer.set_enabled(mode == 2);
  obs::MetricsRegistry metrics;
  sim::SimOptions opts{.end_time = 1.0};
  if (mode >= 1) opts.tracer = &tracer;
  if (mode == 2) opts.metrics = &metrics;
  sim::Simulator s(sim::CompiledModel(m), opts);
  for (auto _ : state) {
    s.run();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(s.events_dispatched() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchObs)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("mode")  // 0=baseline 1=disabled 2=enabled
    ->Unit(benchmark::kMillisecond);

/// Raw ring-buffer record cost, isolated from the simulator.
void BM_TracerRecord(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  const std::uint32_t name = tracer.intern("ev");
  const std::uint32_t track = tracer.track("bench", obs::Domain::kSim);
  double t = 0.0;
  for (auto _ : state) {
    tracer.instant(name, track, t);
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracerRecord);

}  // namespace

int main(int argc, char** argv) {
  const int rc = experiment();
  const int bench_rc = bench::run_benchmarks(argc, argv);
  return rc != 0 ? rc : bench_rc;
}
