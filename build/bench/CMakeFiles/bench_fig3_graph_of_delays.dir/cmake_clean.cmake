file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_graph_of_delays.dir/bench_fig3_graph_of_delays.cpp.o"
  "CMakeFiles/bench_fig3_graph_of_delays.dir/bench_fig3_graph_of_delays.cpp.o.d"
  "bench_fig3_graph_of_delays"
  "bench_fig3_graph_of_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_graph_of_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
