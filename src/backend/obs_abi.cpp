#include "backend/obs_abi.hpp"

namespace ecsim::backend {

#ifdef ECSIM_OBS_DISABLED

// Mirror Simulator::init_obs: the compile-time kill switch turns off both
// the tracer and the metrics side, so interpreter and native runs stay
// bit-identical with or without instrumentation attached.
NativeObsTable make_obs_table(obs::Tracer*, obs::MetricsRegistry*) {
  return NativeObsTable{};
}

#else

namespace {

obs::Tracer* as_tracer(void* p) { return static_cast<obs::Tracer*>(p); }

int cb_tracer_enabled(void* t) { return obs::active(as_tracer(t)) ? 1 : 0; }

std::uint32_t cb_intern(void* t, const char* name) {
  return as_tracer(t)->intern(name);
}

std::uint32_t cb_track(void* t, const char* name, int domain) {
  return as_tracer(t)->track(name, static_cast<obs::Domain>(domain));
}

double cb_now_us(void* t) { return as_tracer(t)->now_us(); }

void cb_span(void* t, std::uint32_t name, std::uint32_t track, double t0,
             double t1, std::uint32_t arg_name, double arg) {
  as_tracer(t)->span(name, track, t0, t1, arg_name, arg);
}

void cb_instant(void* t, std::uint32_t name, std::uint32_t track, double ts,
                std::uint32_t arg_name, double arg) {
  as_tracer(t)->instant(name, track, ts, arg_name, arg);
}

obs::MetricsRegistry* as_registry(void* p) {
  return static_cast<obs::MetricsRegistry*>(p);
}

void* cb_counter(void* m, const char* name) {
  return &as_registry(m)->counter(name);
}

void* cb_gauge(void* m, const char* name) {
  return &as_registry(m)->gauge(name);
}

void* cb_histogram(void* m, const char* name) {
  return &as_registry(m)->histogram(name);
}

void cb_counter_add(void* c, std::uint64_t n) {
  static_cast<obs::Counter*>(c)->add(n);
}

void cb_gauge_max(void* g, std::uint64_t v) {
  static_cast<obs::Gauge*>(g)->max_of(static_cast<double>(v));
}

void cb_histogram_observe(void* h, double v) {
  static_cast<obs::Histogram*>(h)->observe(v);
}

}  // namespace

NativeObsTable make_obs_table(obs::Tracer* tracer,
                              obs::MetricsRegistry* metrics) {
  NativeObsTable t;
  if (tracer != nullptr) {
    t.tracer = tracer;
    t.tracer_enabled = &cb_tracer_enabled;
    t.intern = &cb_intern;
    t.track = &cb_track;
    t.now_us = &cb_now_us;
    t.span = &cb_span;
    t.instant = &cb_instant;
  }
  if (metrics != nullptr) {
    t.metrics = metrics;
    t.counter = &cb_counter;
    t.gauge = &cb_gauge;
    t.histogram = &cb_histogram;
    t.counter_add = &cb_counter_add;
    t.gauge_max = &cb_gauge_max;
    t.histogram_observe = &cb_histogram_observe;
  }
  return t;
}

#endif  // ECSIM_OBS_DISABLED

}  // namespace ecsim::backend
