file(REMOVE_RECURSE
  "CMakeFiles/ecsim_flow.dir/ecsim_flow.cpp.o"
  "CMakeFiles/ecsim_flow.dir/ecsim_flow.cpp.o.d"
  "ecsim_flow"
  "ecsim_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
