// Numerical cross-validation properties:
//  - ZOH discretization must agree with direct continuous simulation of the
//    plant under piecewise-constant input, across all bundled plants;
//  - dlqr must stabilize every (stabilizable) bundled plant across sampling
//    periods.
#include <gtest/gtest.h>

#include <cmath>

#include "blocks/continuous.hpp"
#include "blocks/math_blocks.hpp"
#include "blocks/sample_hold.hpp"
#include "blocks/sources.hpp"
#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "mathlib/linalg.hpp"
#include "plants/coupled_tanks.hpp"
#include "plants/dc_servo.hpp"
#include "plants/inverted_pendulum.hpp"
#include "plants/quarter_car.hpp"
#include "plants/two_mass.hpp"
#include "sim/simulator.hpp"

namespace ecsim::control {
namespace {

StateSpace plant_by_name(const std::string& name) {
  if (name == "dc_servo") return plants::dc_servo();
  if (name == "pendulum") return plants::inverted_pendulum();
  if (name == "quarter_car") return plants::quarter_car();
  if (name == "tanks") return plants::coupled_tanks();
  return plants::two_mass();
}

class PlantProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(PlantProperty, C2dMatchesContinuousSimulationUnderZoh) {
  const StateSpace ct = plant_by_name(GetParam());
  const double ts = 0.02;
  const StateSpace dt = c2d(ct, ts);

  // Drive the continuous plant with a ZOH'd sine through the simulator and
  // step the discrete model manually on the same samples.
  sim::Model m;
  auto& src = m.add<blocks::Sine>("src", 1.0, 1.3);
  auto& clk = m.add<blocks::Clock>("clk", ts);
  auto& zoh = m.add<blocks::SampleHold>("zoh", 1);
  // Widen the held scalar onto all plant inputs (disturbances share it).
  math::Matrix spread(ct.num_inputs(), 1);
  for (std::size_t i = 0; i < ct.num_inputs(); ++i) spread(i, 0) = 1.0;
  auto& widen = m.add<blocks::Gain>("widen", spread);
  auto& plant = m.add<blocks::StateSpaceCont>("plant", ct.a, ct.b,
                                              math::Matrix::identity(ct.order()),
                                              math::Matrix::zeros(ct.order(),
                                                                  ct.num_inputs()));
  m.connect(src, 0, zoh, 0);
  m.connect(zoh, 0, widen, 0);
  m.connect(widen, 0, plant, 0);
  m.connect_event(clk, 0, zoh, zoh.event_in());
  sim::SimOptions opts;
  opts.end_time = 10 * ts;
  opts.integrator.max_step = 1e-4;
  sim::Simulator s(m, opts);
  s.run();

  // Manual discrete recursion with the same input samples.
  std::vector<double> x(ct.order(), 0.0);
  for (int k = 0; k < 10; ++k) {
    const double u = std::sin(2.0 * std::numbers::pi * 1.3 * k * ts);
    std::vector<double> xn(ct.order(), 0.0);
    for (std::size_t i = 0; i < ct.order(); ++i) {
      xn[i] = math::dot(dt.a.row(i), x);
      for (std::size_t j = 0; j < ct.num_inputs(); ++j) xn[i] += dt.b(i, j) * u;
    }
    x = xn;
  }
  for (std::size_t i = 0; i < ct.order(); ++i) {
    EXPECT_NEAR(s.output_value(plant, 0, i), x[i],
                1e-6 * std::max(1.0, std::abs(x[i])))
        << GetParam() << " state " << i;
  }
}

TEST_P(PlantProperty, DlqrStabilizesAcrossSamplingPeriods) {
  StateSpace ct = plant_by_name(GetParam());
  // Use the force/command input only (first column) for multi-input plants.
  if (ct.num_inputs() > 1) {
    ct.b = ct.b.block(0, 0, ct.order(), 1);
    ct.d = math::Matrix::zeros(ct.num_outputs(), 1);
  }
  for (double ts : {0.001, 0.005, 0.02}) {
    const StateSpace dt = c2d(ct, ts);
    const LqrResult r = dlqr(dt, math::Matrix::identity(ct.order()),
                             math::Matrix{{1.0}});
    EXPECT_LT(math::spectral_radius(closed_loop(dt.a, dt.b, r.k)), 1.0)
        << GetParam() << " ts=" << ts;
  }
}

INSTANTIATE_TEST_SUITE_P(Plants, PlantProperty,
                         ::testing::Values("dc_servo", "pendulum",
                                           "quarter_car", "tanks",
                                           "two_mass"));

class DelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DelaySweep, DelayAugmentedDesignStableForAnyTauInPeriod) {
  const double frac = GetParam();
  const StateSpace servo = plants::dc_servo();
  const double ts = 0.01;
  const double tau = frac * ts;
  const Matrix q = math::Matrix::zeros(3, 3);
  Matrix q_aug = q;
  q_aug.set_block(0, 0, math::Matrix::diag({100.0, 0.01}));
  const auto res = [&] {
    StateSpace s = servo;
    return ecsim::control::dlqr_with_input_delay(s, ts, tau, q_aug,
                                                 Matrix{{1e-3}});
  }();
  EXPECT_LT(math::spectral_radius(res.augmented.a - res.augmented.b * res.k),
            1.0)
      << "tau/ts = " << frac;
}

INSTANTIATE_TEST_SUITE_P(TauFractions, DelaySweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace ecsim::control
