
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/c2d.cpp" "src/CMakeFiles/ecsim_control.dir/control/c2d.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/c2d.cpp.o.d"
  "/root/repo/src/control/delay_compensation.cpp" "src/CMakeFiles/ecsim_control.dir/control/delay_compensation.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/delay_compensation.cpp.o.d"
  "/root/repo/src/control/kalman.cpp" "src/CMakeFiles/ecsim_control.dir/control/kalman.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/kalman.cpp.o.d"
  "/root/repo/src/control/lqr.cpp" "src/CMakeFiles/ecsim_control.dir/control/lqr.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/lqr.cpp.o.d"
  "/root/repo/src/control/metrics.cpp" "src/CMakeFiles/ecsim_control.dir/control/metrics.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/metrics.cpp.o.d"
  "/root/repo/src/control/pid.cpp" "src/CMakeFiles/ecsim_control.dir/control/pid.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/pid.cpp.o.d"
  "/root/repo/src/control/state_space.cpp" "src/CMakeFiles/ecsim_control.dir/control/state_space.cpp.o" "gcc" "src/CMakeFiles/ecsim_control.dir/control/state_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ecsim_mathlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
