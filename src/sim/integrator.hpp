// ODE integration strategies for the continuous part of the hybrid model.
// The simulator integrates the packed continuous state between event times;
// derivative evaluation re-runs the combinational (feedthrough) network.
#pragma once

#include <functional>
#include <vector>

#include "sim/trace.hpp"

namespace ecsim::sim {

/// dxdt(t, x, dx): write the derivative of `x` at time `t` into `dx`.
using DerivFn =
    std::function<void(Time, const std::vector<double>&, std::vector<double>&)>;

enum class IntegratorKind {
  kRk4,    // classic fixed-step Runge-Kutta 4
  kRkf45,  // Runge-Kutta-Fehlberg 4(5) with adaptive step
};

struct IntegratorOptions {
  IntegratorKind kind = IntegratorKind::kRk4;
  double max_step = 1e-3;   // upper bound on any step (both kinds)
  double rel_tol = 1e-8;    // RKF45 only
  double abs_tol = 1e-10;   // RKF45 only
  double min_step = 1e-12;  // RKF45 safety floor
};

/// Advance `x` from t0 to t1 (t1 >= t0) under the chosen scheme. The final
/// step is shortened to land exactly on t1, so event times are never
/// overstepped.
void integrate(const IntegratorOptions& opts, const DerivFn& dxdt, Time t0,
               Time t1, std::vector<double>& x);

}  // namespace ecsim::sim
