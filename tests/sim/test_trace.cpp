#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace ecsim::sim {
namespace {

Trace sample_trace() {
  Trace t;
  t.record_event(0.1, 3, 0, "a");
  t.record_event(0.2, 3, 1, "a");
  t.record_event(0.3, 4, 0, "b");
  t.record_event(0.4, 3, 0, "a");
  t.record_signal(0.0, 7, {1.0, 2.0});
  t.record_signal(0.5, 7, {3.0, 4.0});
  t.record_signal(0.5, 8, {9.0});
  return t;
}

TEST(Trace, ActivationTimesByBlockAndPort) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.activation_times(3).size(), 3u);  // any port
  EXPECT_EQ(t.activation_times(3, 0), (std::vector<Time>{0.1, 0.4}));
  EXPECT_EQ(t.activation_times(3, 1), (std::vector<Time>{0.2}));
  EXPECT_TRUE(t.activation_times(9).empty());
}

TEST(Trace, ActivationTimesByName) {
  const Trace t = sample_trace();
  EXPECT_EQ(t.activation_times_by_name("a", 0), (std::vector<Time>{0.1, 0.4}));
  EXPECT_EQ(t.activation_times_by_name("b").size(), 1u);
  EXPECT_TRUE(t.activation_times_by_name("zzz").empty());
}

TEST(Trace, SeriesSelectsBlockAndComponent) {
  const Trace t = sample_trace();
  const auto s0 = t.series(7, 0);
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_DOUBLE_EQ(s0[1].second, 3.0);
  const auto s1 = t.series(7, 1);
  EXPECT_DOUBLE_EQ(s1[0].second, 2.0);
  // Out-of-range component yields an empty series rather than UB.
  EXPECT_TRUE(t.series(7, 5).empty());
  EXPECT_EQ(t.series(8).size(), 1u);
}

TEST(Trace, ClearEmptiesBothStreams) {
  Trace t = sample_trace();
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_TRUE(t.signals().empty());
}

}  // namespace
}  // namespace ecsim::sim
