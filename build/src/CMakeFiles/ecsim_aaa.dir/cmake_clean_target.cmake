file(REMOVE_RECURSE
  "libecsim_aaa.a"
)
