// Canonical result-cache keys (DESIGN.md §3.9). A daemon-served work unit is
// memoizable because its outcome is a pure function of
//   (model IR hash, backend, seed, fault::hash, request parameters)
// — the bit-identical determinism contracts of PRs 3/5/8. The key is the
// canonical rendering of exactly that tuple; doubles render as hexfloats
// ("%a", exact for every finite value), so a key survives any number of
// request serialize/parse round-trips unchanged (property-tested in
// tests/svc/test_cache_key.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "svc/protocol.hpp"

namespace ecsim::svc {

struct ResultKey {
  std::string model_hash;  // ir::hash_hex of the loop model / spec text hash
  std::string backend;     // "interp" | "native"
  std::uint64_t seed = 0;  // the unit's EFFECTIVE seed (fault_mc: base+trial)
  std::uint64_t fault_hash = 0;  // fault::hash of the unit's armed plan
  std::string params;            // verb + canonical per-unit parameters

  /// One-line canonical form — the literal cache key. Fields are joined with
  /// '|'; none of the components can contain it (hashes are hex, backend is
  /// an enum name, params use ';'/'=').
  std::string canonical() const;

  bool operator==(const ResultKey& o) const {
    return model_hash == o.model_hash && backend == o.backend &&
           seed == o.seed && fault_hash == o.fault_hash && params == o.params;
  }
};

/// Key of work unit `unit` of `req` (row-major cell index for sweeps, trial
/// index for fault Monte Carlo, 0 for VM Monte Carlo). `model_hash` is the
/// loop-IR hash / spec-content hash the server resolved for the request.
/// Pure: both the daemon and the property tests call it.
ResultKey unit_key(const Request& req, const std::string& model_hash,
                   std::size_t unit);

/// Content hash of an uploaded VM Monte Carlo spec text: "spec:0x…".
std::string spec_content_hash(const std::string& spec_text);

}  // namespace ecsim::svc
