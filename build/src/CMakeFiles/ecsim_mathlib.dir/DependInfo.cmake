
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mathlib/expm.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/expm.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/expm.cpp.o.d"
  "/root/repo/src/mathlib/linalg.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/linalg.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/linalg.cpp.o.d"
  "/root/repo/src/mathlib/matrix.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/matrix.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/matrix.cpp.o.d"
  "/root/repo/src/mathlib/riccati.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/riccati.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/riccati.cpp.o.d"
  "/root/repo/src/mathlib/rng.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/rng.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/rng.cpp.o.d"
  "/root/repo/src/mathlib/stats.cpp" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/stats.cpp.o" "gcc" "src/CMakeFiles/ecsim_mathlib.dir/mathlib/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
