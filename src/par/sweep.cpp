#include "par/sweep.hpp"

#include <cstdio>
#include <stdexcept>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "par/cell_metrics.hpp"
#include "plants/dc_servo.hpp"

namespace ecsim::sweep {

namespace {

/// Divergence threshold shared with bench::metric: IAE beyond this means
/// the closed loop ran away and the raw number is meaningless.
constexpr double kUnstableIae = 1e3;

SweepCell measure(const translate::CosimOutcome& out) {
  SweepCell cell;
  cell.iae = out.iae;
  cell.ise = out.ise;
  cell.itae = out.itae;
  cell.cost = out.cost;
  cell.overshoot_pct = out.step.overshoot_pct;
  cell.act_latency_mean = out.act_latency.summary.mean;
  cell.act_jitter = out.act_latency.jitter;
  cell.stable = out.iae < kUnstableIae;
  return cell;
}

}  // namespace

SweepRunner::SweepRunner(par::BatchOptions opts) : opts_(opts) {
  threads_ = par::BatchRunner(opts_).threads();
}

std::vector<SweepCell> SweepRunner::run(const TimingGrid& grid) const {
  const std::size_t cols = grid.jitter_fracs.size();
  const std::size_t n = grid.latency_fracs.size() * cols;
  translate::LoopSpec loop = grid.loop;
  loop.threads = static_cast<unsigned>(threads_);  // ledger annotation
  par::BatchRunner runner(opts_);
  CellMetrics cm(opts_.metrics);
  return runner.map<SweepCell>(n, [&](par::TaskContext& ctx) {
    return cm.cell([&] {
      const double la_frac = grid.latency_fracs[ctx.index / cols];
      const double jitter_frac = grid.jitter_fracs[ctx.index % cols];
      const translate::CosimOutcome out = translate::run_latency_loop(
          loop, 0.0, la_frac * loop.ts, jitter_frac * loop.ts);
      SweepCell cell = measure(out);
      cell.la_frac = la_frac;
      cell.jitter_frac = jitter_frac;
      return cell;
    });
  });
}

std::vector<SweepCell> SweepRunner::run(const ArchitectureGrid& grid) const {
  const std::size_t cols = grid.wcet_scales.size();
  const std::size_t n = grid.bus_bandwidths.size() * cols;
  translate::LoopSpec loop = grid.loop;
  loop.threads = static_cast<unsigned>(threads_);  // ledger annotation
  par::BatchRunner runner(opts_);
  CellMetrics cm(opts_.metrics);
  return runner.map<SweepCell>(n, [&](par::TaskContext& ctx) {
    return cm.cell([&] {
      const double bandwidth = grid.bus_bandwidths[ctx.index / cols];
      const double scale = grid.wcet_scales[ctx.index % cols];
      translate::DistributedSpec dist = grid.dist;
      dist.arch =
          aaa::ArchitectureGraph::bus_architecture(grid.processors, bandwidth);
      dist.wcet_ctrl *= scale;
      for (double& w : dist.ctrl_branch_wcets) w *= scale;
      const translate::CosimOutcome out =
          translate::run_distributed_loop(loop, dist);
      SweepCell cell = measure(out);
      cell.bus_bandwidth = bandwidth;
      cell.wcet_scale = scale;
      return cell;
    });
  });
}

std::string to_csv(const std::vector<SweepCell>& cells) {
  std::string out =
      "la_frac,jitter_frac,bus_bandwidth,wcet_scale,iae,ise,itae,cost,"
      "overshoot_pct,act_latency_mean,act_jitter,stable\n";
  char buf[320];
  for (const SweepCell& c : cells) {
    std::snprintf(buf, sizeof buf,
                  "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
                  "%.17g,%.17g,%d\n",
                  c.la_frac, c.jitter_frac, c.bus_bandwidth, c.wcet_scale,
                  c.iae, c.ise, c.itae, c.cost, c.overshoot_pct,
                  c.act_latency_mean, c.act_jitter, c.stable ? 1 : 0);
    out += buf;
  }
  return out;
}

translate::LoopSpec servo_loop(double ts, double t_end) {
  control::StateSpace servo = plants::dc_servo();
  servo.c = math::Matrix::identity(2);
  servo.d = math::Matrix::zeros(2, 1);
  const control::StateSpace servo_d = control::c2d(servo, ts);
  const control::LqrResult lqr = control::dlqr(
      servo_d, math::Matrix::diag({100.0, 0.01}), math::Matrix{{1e-3}});
  control::StateSpace pos = servo_d;
  pos.c = math::Matrix{{1.0, 0.0}};
  pos.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(pos, lqr.k);

  translate::LoopSpec spec;
  spec.plant = servo;
  spec.controller = control::state_feedback_controller(lqr.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = t_end;
  spec.ref = 1.0;
  spec.input = translate::ControllerInput::kStateRef;
  return spec;
}

}  // namespace ecsim::sweep
