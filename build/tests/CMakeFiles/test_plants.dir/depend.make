# Empty dependencies file for test_plants.
# This may be replaced when dependencies are built.
