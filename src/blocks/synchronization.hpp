// The Synchronization block proposed by the paper (§3.2.3): N event inputs,
// 1 event output. It fires its output and resets its internal input flags
// when every input has received at least one event since the last reset.
// It is the Scicos-side image of inter-processor synchronization in SynDEx
// generated code (message send/receive matching).
#pragma once

#include <vector>

#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;

class Synchronization : public Block {
 public:
  Synchronization(std::string name, std::size_t n_inputs);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t event_out() const { return 0; }
  /// Current pending flags (diagnostic / property tests).
  const std::vector<bool>& received() const { return received_; }
  std::size_t fire_count() const { return fires_; }

 private:
  std::vector<bool> received_;
  std::size_t fires_ = 0;
};

}  // namespace ecsim::blocks
