// Property sweep of the Synchronization block (EXP-S1): for every input
// arity and many random event interleavings, the block must fire exactly
// when a reference AND-join model says it should, and reset afterwards.
#include <gtest/gtest.h>

#include <vector>

#include "blocks/discrete.hpp"
#include "blocks/event_blocks.hpp"
#include "blocks/sources.hpp"
#include "blocks/synchronization.hpp"
#include "mathlib/rng.hpp"
#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

class SyncProperty : public ::testing::TestWithParam<std::size_t> {};

// Drive a Synchronization block with randomized per-input event trains and
// compare its firing count/instants against a scalar reference model.
TEST_P(SyncProperty, MatchesReferenceAndJoin) {
  const std::size_t n = GetParam();
  math::Rng rng(1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    // Random event instants per input.
    std::vector<std::vector<sim::Time>> trains(n);
    std::vector<std::pair<sim::Time, std::size_t>> all;
    for (std::size_t i = 0; i < n; ++i) {
      const int count = static_cast<int>(rng.uniform_int(1, 6));
      sim::Time t = 0.0;
      for (int k = 0; k < count; ++k) {
        t += rng.uniform(0.01, 0.5);
        trains[i].push_back(t);
        all.emplace_back(t, i);
      }
    }
    // Reference: process events in time order, fire when all flags set.
    std::sort(all.begin(), all.end());
    std::vector<bool> flags(n, false);
    std::vector<sim::Time> expected_fires;
    for (const auto& [t, i] : all) {
      flags[i] = true;
      if (std::all_of(flags.begin(), flags.end(), [](bool b) { return b; })) {
        expected_fires.push_back(t);
        std::fill(flags.begin(), flags.end(), false);
      }
    }

    // Simulated: one TimetableClock-like EventDelay chain per input is
    // overkill; use one Clock per event via per-input TimetableClock.
    sim::Model m;
    auto& sync = m.add<Synchronization>("sync", n);
    auto& counter = m.add<EventCounter>("fires");
    m.connect_event(sync, sync.event_out(), counter, 0);
    for (std::size_t i = 0; i < n; ++i) {
      // Feed each train through chained EventDelays anchored at t=0.
      const sim::Block* prev = nullptr;
      sim::Time prev_t = 0.0;
      for (sim::Time t : trains[i]) {
        auto& d = m.add<EventDelay>(
            "d" + std::to_string(i) + "_" + std::to_string(trial) + "_" +
                std::to_string(t),
            t - prev_t);
        if (prev == nullptr) {
          // Kick off with a one-shot: a clock with huge period fires at 0.
          auto& kick = m.add<Clock>("kick" + d.name(), 1e9);
          m.connect_event(kick, 0, d, d.event_in());
        } else {
          m.connect_event(*prev, 0, d, d.event_in());
        }
        m.connect_event(d, d.event_out(), sync, i);
        prev = &d;
        prev_t = t;
      }
    }
    sim::Simulator s(m, sim::SimOptions{.end_time = 10.0});
    s.run();
    const auto fired = s.trace().activation_times_by_name("fires");
    ASSERT_EQ(fired.size(), expected_fires.size())
        << "n=" << n << " trial=" << trial;
    for (std::size_t k = 0; k < fired.size(); ++k) {
      EXPECT_NEAR(fired[k], expected_fires[k], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, SyncProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

}  // namespace
}  // namespace ecsim::blocks
