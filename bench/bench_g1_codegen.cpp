// EXP-G1 (Section 1 claim: generated code "satisfies the real-time
// constraints ... is deadlock free"): run the generated executives on the
// virtual distributed machine across many random workloads, architectures
// and execution-time realizations. Expected shape: 0 deadlocks, order always
// preserved, WCET execution reproduces the schedule exactly, actual
// completions never exceed the WCET prediction.
#include "aaa/adequation.hpp"
#include "bench_common.hpp"
#include "exec/conformance.hpp"
#include "../tests/properties/random_graphs.hpp"

using namespace ecsim;

namespace {

void experiment() {
  bench::banner("EXP-G1", "Section 1 (code generation claims)",
                "Deadlock-freedom / order / WCET-bound validation of "
                "generated executives over randomized trials.");
  const int n_workloads = 40;
  const int n_time_realizations = 25;
  std::size_t deadlocks = 0, order_violations = 0, wcet_mismatches = 0;
  std::size_t late_completions = 0, instances = 0;
  math::Rng rng(20080310);

  for (int w = 0; w < n_workloads; ++w) {
    const aaa::AlgorithmGraph alg = ecsim::testing::random_dag(rng, 9, 1.0);
    const aaa::ArchitectureGraph arch = ecsim::testing::random_bus(rng);
    const aaa::Schedule sched = aaa::adequate(alg, arch);
    const aaa::GeneratedCode code = aaa::generate_executives(alg, arch, sched);

    // Exact-WCET conformance once per workload.
    exec::VmOptions wcet_opts;
    wcet_opts.iterations = 4;
    wcet_opts.period = 1.0;
    const exec::VmResult wcet_run =
        exec::run_executives(alg, arch, sched, code, wcet_opts);
    if (!exec::check_wcet_conformance(alg, arch, sched, wcet_run, 1.0).ok) {
      ++wcet_mismatches;
    }

    for (int t = 0; t < n_time_realizations; ++t) {
      exec::VmOptions opts;
      opts.iterations = 4;
      opts.period = 1.0;
      opts.exec_time = exec::uniform_fraction_exec_time(0.05);
      opts.branch_chooser = exec::uniform_branch_chooser();
      opts.seed = rng.next_u64();
      const exec::VmResult vm =
          exec::run_executives(alg, arch, sched, code, opts);
      if (vm.deadlock) ++deadlocks;
      if (!exec::check_order_preservation(alg, arch, sched, vm).ok) {
        ++order_violations;
      }
      for (const exec::OpInstance& oi : vm.ops) {
        ++instances;
        const double bound = sched.of_op(oi.op).end +
                             static_cast<double>(oi.iteration) * 1.0;
        if (oi.end > bound + 1e-9) ++late_completions;
      }
    }
  }
  std::printf("%-38s %12d\n", "workload/architecture pairs", n_workloads);
  std::printf("%-38s %12d\n", "execution-time realizations each",
              n_time_realizations);
  std::printf("%-38s %12zu\n", "operation instances executed", instances);
  std::printf("%-38s %12zu\n", "deadlocks", deadlocks);
  std::printf("%-38s %12zu\n", "per-component order violations",
              order_violations);
  std::printf("%-38s %12zu\n", "WCET-conformance mismatches", wcet_mismatches);
  std::printf("%-38s %12zu\n", "completions later than WCET bound",
              late_completions);
  std::printf("\nAll four counters must be zero — they are the paper's "
              "deadlock-freedom and real-time claims, checked.\n\n");
}

void BM_ExecutiveVm(benchmark::State& state) {
  math::Rng rng(7);
  const aaa::AlgorithmGraph alg =
      ecsim::testing::random_dag(rng, static_cast<std::size_t>(state.range(0)), 1.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(3, 1e4, 1e-5);
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  const aaa::GeneratedCode code = aaa::generate_executives(alg, arch, sched);
  exec::VmOptions opts;
  opts.iterations = 100;
  opts.period = 1.0;
  for (auto _ : state) {
    auto vm = exec::run_executives(alg, arch, sched, code, opts);
    benchmark::DoNotOptimize(vm);
  }
}
BENCHMARK(BM_ExecutiveVm)->Arg(6)->Arg(12)->Unit(benchmark::kMicrosecond);

void BM_Codegen(benchmark::State& state) {
  math::Rng rng(9);
  const aaa::AlgorithmGraph alg = ecsim::testing::random_dag(rng, 12, 1.0);
  const auto arch = aaa::ArchitectureGraph::bus_architecture(3, 1e4, 1e-5);
  const aaa::Schedule sched = aaa::adequate(alg, arch);
  for (auto _ : state) {
    auto code = aaa::generate_executives(alg, arch, sched);
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_Codegen);

}  // namespace

int main(int argc, char** argv) {
  experiment();
  return bench::run_benchmarks(argc, argv);
}
