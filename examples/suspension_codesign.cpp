// Automotive co-design study on the quarter-car active suspension (the
// application domain of the paper's ref [4]): LQR force control of body
// motion, deployed on two ECUs connected by a slow CAN-like bus.
//
// The design cycle the methodology shortens:
//   round 1: design assuming the stroboscopic model -> co-simulation reveals
//            the actuation latency degrades comfort (body IAE);
//   round 2: redesign with the delay-augmented LQR -> co-simulation shows
//            the performance is substantially recovered.
// Everything happens in simulation; no hardware iterations.
#include <cstdio>

#include "control/c2d.hpp"
#include "control/delay_compensation.hpp"
#include "control/lqr.hpp"
#include "plants/quarter_car.hpp"
#include "translate/cosim.hpp"

using namespace ecsim;

namespace {

// Single-input (actuator force) view of the quarter car with full state
// output for the sampler; road disturbance is dropped for the step study.
control::StateSpace suspension_plant() {
  control::StateSpace qc = plants::quarter_car();
  control::StateSpace sys;
  sys.a = qc.a;
  sys.b = qc.b.block(0, 0, 4, 1);
  sys.c = math::Matrix::identity(4);
  sys.d = math::Matrix::zeros(4, 1);
  return sys;
}

translate::DistributedSpec two_ecu_architecture() {
  translate::DistributedSpec dist;
  // 40 kunit/s bus with 0.5 ms framing overhead: the 32-unit state vector
  // takes ~1.3 ms per transfer — a CAN-class link.
  dist.arch = aaa::ArchitectureGraph::bus_architecture(2, 4e4, 5e-4);
  dist.wcet_sense = 5e-4;
  dist.wcet_ctrl = 2.5e-3;
  dist.wcet_act = 5e-4;
  dist.size_y = 32.0;
  dist.size_u = 8.0;
  dist.bind_sense = "P0";
  dist.bind_act = "P0";
  dist.bind_ctrl = "P1";
  return dist;
}

}  // namespace

int main() {
  const double ts = 0.01;
  const control::StateSpace plant = suspension_plant();
  // High-bandwidth comfort objective: tight body-position control makes the
  // loop genuinely sensitive to the actuation latency of the implementation.
  const math::Matrix q = math::Matrix::diag({1e6, 1e2, 1.0, 1.0});
  const math::Matrix r{{1e-8}};

  // Round 1: naive design (stroboscopic assumption).
  const control::StateSpace plant_d = control::c2d(plant, ts);
  const control::LqrResult naive = control::dlqr(plant_d, q, r);
  control::StateSpace body = plant_d;
  body.c = math::Matrix{{1.0, 0.0, 0.0, 0.0}};
  body.d = math::Matrix{{0.0}};
  const double nbar = control::reference_gain(body, naive.k);

  translate::LoopSpec spec;
  spec.plant = plant;
  spec.controller = control::state_feedback_controller(naive.k, nbar, ts);
  spec.ts = ts;
  spec.t_end = 3.0;
  spec.ref = 0.05;  // 5 cm body set-point change
  spec.input = translate::ControllerInput::kStateRef;
  spec.output_index = 0;

  const translate::CosimOutcome ideal = translate::run_ideal_loop(spec);
  const translate::DistributedSpec dist = two_ecu_architecture();
  const translate::CosimOutcome round1 = translate::run_distributed_loop(spec, dist);

  // Round 2: delay-aware redesign using the measured actuation latency.
  const double tau = round1.act_latency.summary.mean;
  const control::DelayLqrResult aware = control::dlqr_with_input_delay(
      [&] {
        control::StateSpace s = plant;
        s.c = math::Matrix{{1.0, 0.0, 0.0, 0.0}};
        s.d = math::Matrix{{0.0}};
        return s;
      }(),
      ts, tau, control::augment_q(q, 1), r);
  translate::LoopSpec spec2 = spec;
  spec2.controller =
      control::delayed_feedback_controller(aware.k, aware.nbar, ts);
  const translate::CosimOutcome round2 =
      translate::run_distributed_loop(spec2, dist);

  std::printf("== quarter-car active suspension on 2 ECUs ==\n\n");
  std::printf("%s\n", round1.schedule_text.c_str());
  std::printf("measured actuation latency: mean=%.4fs (%.1f%% of Ts)\n\n", tau,
              100.0 * tau / ts);
  std::printf("%-22s %12s %14s %16s\n", "metric", "ideal", "naive on ECUs",
              "delay-aware");
  std::printf("%-22s %12.5f %14.5f %16.5f\n", "IAE (body pos)", ideal.iae,
              round1.iae, round2.iae);
  std::printf("%-22s %12.2f %14.2f %16.2f\n", "overshoot [%]",
              ideal.step.overshoot_pct, round1.step.overshoot_pct,
              round2.step.overshoot_pct);
  std::printf("%-22s %12.3f %14.3f %16.3f\n", "settling [s]",
              ideal.step.settling_time, round1.step.settling_time,
              round2.step.settling_time);
  const double lost = round1.iae - ideal.iae;
  const double recovered = round1.iae - round2.iae;
  if (lost > 0.0) {
    std::printf("\ndelay-aware redesign recovered %.0f%% of the IAE lost to "
                "the implementation.\n",
                100.0 * recovered / lost);
  }
  return 0;
}
