// TDMA bus arbitration: the same slot-grid rule must be honoured by the
// Medium model, the adequation, the executive VM and the graph of delays.
#include <gtest/gtest.h>

#include <cmath>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "blocks/discrete.hpp"
#include "exec/conformance.hpp"
#include "sim/simulator.hpp"
#include "translate/graph_of_delays.hpp"

namespace ecsim::aaa {
namespace {

TEST(Tdma, EarliestStartSnapsToGrid) {
  Medium m{"bus", 1e4, 0.0, Arbitration::kTdma, 0.001};
  EXPECT_DOUBLE_EQ(m.earliest_start(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.earliest_start(0.0004), 0.001);
  EXPECT_DOUBLE_EQ(m.earliest_start(0.001), 0.001);  // boundary hit passes
  EXPECT_DOUBLE_EQ(m.earliest_start(0.00101), 0.002);
  Medium imm{"bus", 1e4, 0.0};
  EXPECT_DOUBLE_EQ(imm.earliest_start(0.00037), 0.00037);
}

TEST(Tdma, SetTdmaValidation) {
  auto arch = ArchitectureGraph::bus_architecture(2, 1e4);
  EXPECT_THROW(arch.set_tdma(5, 0.001), std::out_of_range);
  EXPECT_THROW(arch.set_tdma(0, 0.0), std::invalid_argument);
  arch.set_tdma(0, 0.001);
  EXPECT_EQ(arch.medium(0).arbitration, Arbitration::kTdma);
}

struct TdmaChain {
  AlgorithmGraph alg{"chain", 0.021};  // period = 14 TDMA slots
  ArchitectureGraph arch{ArchitectureGraph::bus_architecture(2, 1e5, 1e-5)};
  OpId s, c, a;

  TdmaChain() {
    arch.set_tdma(0, 0.0015);
    s = alg.add_simple("sense", OpKind::kSensor, 1e-4, "P0");
    c = alg.add_simple("ctrl", OpKind::kCompute, 5e-4, "P1");
    a = alg.add_simple("act", OpKind::kActuator, 1e-4, "P0");
    alg.add_dependency(s, c, 8.0);
    alg.add_dependency(c, a, 8.0);
  }
};

TEST(Tdma, ScheduleAlignsTransfersToSlots) {
  TdmaChain f;
  const Schedule sched = adequate(f.alg, f.arch);
  sched.validate(f.alg, f.arch);
  ASSERT_EQ(sched.comms().size(), 2u);
  for (const ScheduledComm& sc : sched.comms()) {
    const double slots = sc.start / 0.0015;
    EXPECT_NEAR(slots, std::round(slots), 1e-9)
        << "transfer must start on a slot boundary, got " << sc.start;
  }
  // TDMA waiting lengthens the makespan vs the immediate bus.
  auto imm_arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  AlgorithmGraph alg2 = f.alg;
  const Schedule imm = adequate(alg2, imm_arch);
  EXPECT_GT(sched.makespan(), imm.makespan());
}

TEST(Tdma, VmMatchesScheduleUnderWcet) {
  TdmaChain f;
  const Schedule sched = adequate(f.alg, f.arch);
  const GeneratedCode code = generate_executives(f.alg, f.arch, sched);
  exec::VmOptions opts;
  opts.iterations = 5;
  opts.period = f.alg.period();
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, sched, code, opts);
  const exec::ConformanceReport rep =
      exec::check_wcet_conformance(f.alg, f.arch, sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
}

TEST(Tdma, GraphOfDelaysMatchesScheduleUnderWcet) {
  TdmaChain f;
  const Schedule sched = adequate(f.alg, f.arch);
  sim::Model m;
  auto& n = m.add<blocks::EventCounter>("done");
  const translate::GraphOfDelays god =
      translate::build_graph_of_delays(m, f.alg, f.arch, sched, {});
  translate::wire_completion(m, god, f.a, n, 0);
  sim::Simulator s(m, sim::SimOptions{.end_time = 0.0839});
  s.run();
  const auto times = s.trace().activation_times_by_name("done");
  ASSERT_EQ(times.size(), 4u);
  const double expect = sched.of_op(f.a).end;
  for (std::size_t k = 0; k < times.size(); ++k) {
    EXPECT_NEAR(times[k], expect + 0.021 * static_cast<double>(k), 1e-9);
  }
}

TEST(Tdma, EarlierCompletionStillSlotAligned) {
  // With execution times below WCET, transfers still only start on slots,
  // so completions quantize.
  TdmaChain f;
  const Schedule sched = adequate(f.alg, f.arch);
  const GeneratedCode code = generate_executives(f.alg, f.arch, sched);
  exec::VmOptions opts;
  opts.iterations = 50;
  opts.period = f.alg.period();
  opts.exec_time = exec::uniform_fraction_exec_time(0.2);
  opts.seed = 99;
  const exec::VmResult vm =
      exec::run_executives(f.alg, f.arch, sched, code, opts);
  ASSERT_FALSE(vm.deadlock);
  for (const exec::CommInstance& ci : vm.comms) {
    const double local = std::fmod(ci.start, 0.0015);
    EXPECT_TRUE(local < 1e-9 || local > 0.0015 - 1e-9)
        << "transfer started off-grid at " << ci.start;
  }
}

}  // namespace
}  // namespace ecsim::aaa
