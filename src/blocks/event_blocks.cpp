#include "blocks/event_blocks.hpp"

#include <cmath>
#include <stdexcept>

namespace ecsim::blocks {

DurationSampler constant_duration(Time d) {
  if (d < 0.0) throw std::invalid_argument("constant_duration: negative");
  return [d](math::Rng&) { return d; };
}

DurationSampler uniform_duration(Time bcet, Time wcet) {
  if (bcet < 0.0 || wcet < bcet) {
    throw std::invalid_argument("uniform_duration: need 0 <= bcet <= wcet");
  }
  return [bcet, wcet](math::Rng& rng) { return rng.uniform(bcet, wcet); };
}

DurationSampler truncated_normal_duration(Time mean, Time stddev, Time bcet,
                                          Time wcet) {
  if (bcet < 0.0 || wcet < bcet) {
    throw std::invalid_argument("truncated_normal_duration: bad bounds");
  }
  return [=](math::Rng& rng) {
    return rng.truncated_normal(mean, stddev, bcet, wcet);
  };
}

EventDelay::EventDelay(std::string name, Time duration)
    : EventDelay(std::move(name), constant_duration(duration)) {}

EventDelay::EventDelay(std::string name, DurationSampler sampler)
    : Block(std::move(name)), sampler_(std::move(sampler)) {
  if (!sampler_) throw std::invalid_argument("EventDelay: null sampler");
  add_event_input();
  add_event_output();
}

void EventDelay::initialize(Context&) {
  busy_until_ = 0.0;
  busy_hits_ = 0;
}

void EventDelay::on_event(Context& ctx, std::size_t) {
  const Time now = ctx.time();
  Time start = now;
  if (busy_until_ > now) {
    start = busy_until_;
    ++busy_hits_;
  }
  const Time d = sampler_(ctx.rng());
  if (d < 0.0) throw std::runtime_error("EventDelay: sampler returned < 0");
  busy_until_ = start + d;
  ctx.emit(0, busy_until_ - now);
}

EventSelect::EventSelect(std::string name, std::size_t n_channels,
                         std::size_t cond_width, ConditionMapping mapping)
    : Block(std::move(name)), n_channels_(n_channels), mapping_(std::move(mapping)) {
  if (n_channels == 0) throw std::invalid_argument("EventSelect: no channels");
  if (!mapping_) throw std::invalid_argument("EventSelect: null mapping");
  add_input(cond_width);
  add_event_input();
  for (std::size_t i = 0; i < n_channels; ++i) add_event_output();
}

std::unique_ptr<EventSelect> EventSelect::make_threshold(std::string name,
                                                         double threshold) {
  return std::make_unique<EventSelect>(
      std::move(name), 2, 1, [threshold](std::span<const double> v) {
        return static_cast<std::size_t>(v[0] > threshold ? 1 : 0);
      });
}

void EventSelect::on_event(Context& ctx, std::size_t) {
  const std::size_t ch = mapping_(ctx.input(0));
  if (ch >= n_channels_) {
    throw std::runtime_error("EventSelect '" + name() +
                             "': mapping returned out-of-range channel");
  }
  ctx.emit(ch, 0.0);
}

TdmaGate::TdmaGate(std::string name, Time slot)
    : Block(std::move(name)), slot_(slot) {
  if (slot <= 0.0) throw std::invalid_argument("TdmaGate: slot must be > 0");
  add_event_input();
  add_event_output();
}

void TdmaGate::on_event(Context& ctx, std::size_t) {
  const Time now = ctx.time();
  // Same boundary formula as aaa::Medium::earliest_start so the schedule,
  // the executive VM and the co-simulation agree to rounding error.
  const double k = std::ceil(now / slot_ - 1e-9);
  const Time boundary = std::max(0.0, k) * slot_;
  ctx.emit(0, std::max(0.0, boundary - now));
}

EventMerge::EventMerge(std::string name, std::size_t n_inputs)
    : Block(std::move(name)) {
  if (n_inputs == 0) throw std::invalid_argument("EventMerge: no inputs");
  for (std::size_t i = 0; i < n_inputs; ++i) add_event_input();
  add_event_output();
}

void EventMerge::on_event(Context& ctx, std::size_t) { ctx.emit(0, 0.0); }

EventFault::EventFault(std::string name, FaultDecider decider)
    : Block(std::move(name)), decider_(std::move(decider)) {
  if (!decider_) throw std::invalid_argument("EventFault: null decider");
  add_event_input();
  add_event_output();
}

void EventFault::initialize(Context&) {
  count_ = 0;
  drops_ = 0;
  defers_ = 0;
}

void EventFault::on_event(Context& ctx, std::size_t) {
  const FaultAction a = decider_(count_++, ctx.time());
  if (a.drop) {
    ++drops_;
    return;
  }
  if (a.defer < 0.0) throw std::runtime_error("EventFault: negative defer");
  if (a.defer > 0.0) ++defers_;
  ctx.emit(0, a.defer);
}

EventDivider::EventDivider(std::string name, std::size_t divisor,
                           std::size_t phase)
    : Block(std::move(name)), divisor_(divisor), phase_(phase) {
  if (divisor == 0) throw std::invalid_argument("EventDivider: divisor >= 1");
  if (phase >= divisor) {
    throw std::invalid_argument("EventDivider: phase must be < divisor");
  }
  add_event_input();
  add_event_output();
}

void EventDivider::initialize(Context&) { count_ = 0; }

void EventDivider::on_event(Context& ctx, std::size_t) {
  if (count_ % divisor_ == phase_) ctx.emit(0, 0.0);
  ++count_;
}

}  // namespace ecsim::blocks
