#include "latency/latency.hpp"

#include <gtest/gtest.h>

namespace ecsim::latency {
namespace {

TEST(Latency, Eq1DefinitionReproduced) {
  // I(k) = k*Ts + Ls with constant Ls = 0.002.
  std::vector<Time> instants;
  const double ts = 0.01;
  for (int k = 0; k < 10; ++k) instants.push_back(k * ts + 0.002);
  const LatencySeries s = analyze_instants("y0 sampling", instants, ts);
  ASSERT_EQ(s.latencies.size(), 10u);
  for (double l : s.latencies) EXPECT_NEAR(l, 0.002, 1e-12);
  EXPECT_NEAR(s.summary.mean, 0.002, 1e-12);
  EXPECT_NEAR(s.jitter, 0.0, 1e-12);
}

TEST(Latency, JitterIsPeakToPeak) {
  const double ts = 0.01;
  std::vector<Time> instants{0.001, ts + 0.003, 2 * ts + 0.002};
  const LatencySeries s = analyze_instants("act", instants, ts);
  EXPECT_NEAR(s.jitter, 0.002, 1e-12);
  EXPECT_NEAR(s.summary.min, 0.001, 1e-12);
  EXPECT_NEAR(s.summary.max, 0.003, 1e-12);
}

TEST(Latency, RoundingAssignmentHandlesSkippedPeriods) {
  const double ts = 0.01;
  // Instants only in periods 0 and 2.
  std::vector<Time> instants{0.004, 0.0205};
  const LatencySeries s =
      analyze_instants("sparse", instants, ts, /*assign_by_rounding=*/true);
  EXPECT_NEAR(s.latencies[0], 0.004, 1e-12);
  EXPECT_NEAR(s.latencies[1], 0.0005, 1e-9);
}

TEST(Latency, RoundingAssignmentAtHalfPeriodBoundary) {
  // ts and the instants are exact binary fractions, so the division is
  // exact: 0.375/0.25 == 1.5 lands precisely on a half-period boundary.
  // floor-assignment (with its +1e-9 guard against representation error)
  // must bin it into period 1, not round up to period 2 — a latency of
  // half a period is legal and must not be normalized to -ts/2.
  const double ts = 0.25;
  const LatencySeries s = analyze_instants(
      "boundary", {0.375, 0.5, 1.125}, ts, /*assign_by_rounding=*/true);
  ASSERT_EQ(s.latencies.size(), 3u);
  EXPECT_DOUBLE_EQ(s.latencies[0], 0.125);  // period 1: 0.375 - 0.25
  EXPECT_DOUBLE_EQ(s.latencies[1], 0.0);    // exact boundary -> period 2
  EXPECT_DOUBLE_EQ(s.latencies[2], 0.125);  // period 4: 1.125 - 1.0
  EXPECT_GE(s.summary.min, 0.0);            // no negative "latency"
}

TEST(Latency, Validation) {
  EXPECT_THROW(analyze_instants("x", {0.0}, 0.0), std::invalid_argument);
}

TEST(Latency, FromTraceActivations) {
  sim::Trace trace;
  trace.record_event(0.002, 3, 0, "sense");
  trace.record_event(0.012, 3, 0, "sense");
  trace.record_event(0.022, 3, 0, "sense");
  trace.record_event(0.005, 4, 0, "other");
  const LatencySeries s = analyze_block_activations(trace, "sense", 0.01);
  ASSERT_EQ(s.latencies.size(), 3u);
  EXPECT_NEAR(s.summary.mean, 0.002, 1e-12);
  EXPECT_EQ(s.channel, "sense");
}

TEST(Latency, TableRendering) {
  std::vector<Time> instants;
  for (int k = 0; k < 30; ++k) instants.push_back(k * 0.01 + 0.001);
  const LatencySeries s = analyze_instants("u0 actuation", instants, 0.01);
  const std::string table = to_table(s, 5);
  EXPECT_NE(table.find("u0 actuation"), std::string::npos);
  EXPECT_NE(table.find("(25 more)"), std::string::npos);
  EXPECT_NE(table.find("jitter"), std::string::npos);
}

TEST(Latency, TableTruncatesExactlyAtMaxRows) {
  std::vector<Time> instants;
  for (int k = 0; k < 5; ++k) instants.push_back(k * 0.01 + 0.002);
  const LatencySeries s = analyze_instants("trunc", instants, 0.01);

  // Exactly max_rows entries: every row printed, no ellipsis.
  const std::string full = to_table(s, 5);
  EXPECT_EQ(full.find("more)"), std::string::npos);
  EXPECT_NE(full.find("\n     4"), std::string::npos);  // last row k=4

  // One fewer row than entries: ellipsis counts the single hidden row.
  const std::string cut = to_table(s, 4);
  EXPECT_NE(cut.find("... (1 more)"), std::string::npos);
  EXPECT_EQ(cut.find("\n     4"), std::string::npos);

  // max_rows of zero degenerates to just header + summary.
  const std::string none = to_table(s, 0);
  EXPECT_NE(none.find("... (5 more)"), std::string::npos);
}

TEST(Latency, TableSummaryRow) {
  const LatencySeries s =
      analyze_instants("summ", {0.002, 0.012, 0.022}, 0.01);
  const std::string table = to_table(s, 10);
  // The summary row carries all five aggregates on one line.
  const std::size_t pos = table.find("mean=");
  ASSERT_NE(pos, std::string::npos);
  const std::string tail = table.substr(pos);
  EXPECT_NE(tail.find("mean=0.002000"), std::string::npos);
  EXPECT_NE(tail.find("min=0.002000"), std::string::npos);
  EXPECT_NE(tail.find("max=0.002000"), std::string::npos);
  EXPECT_NE(tail.find("stddev="), std::string::npos);
  EXPECT_NE(tail.find("jitter(p2p)=0.000000"), std::string::npos);
}

TEST(IoLatency, DifferenceOfInstantSeries) {
  const double ts = 0.01;
  std::vector<Time> sampling, actuation;
  for (int k = 0; k < 5; ++k) {
    sampling.push_back(k * ts + 0.001);
    actuation.push_back(k * ts + 0.004 + (k % 2) * 0.001);
  }
  const LatencySeries s = io_latency(sampling, actuation, ts);
  ASSERT_EQ(s.latencies.size(), 5u);
  EXPECT_NEAR(s.latencies[0], 0.003, 1e-12);
  EXPECT_NEAR(s.latencies[1], 0.004, 1e-12);
  EXPECT_NEAR(s.jitter, 0.001, 1e-12);
  EXPECT_EQ(s.channel, "input-output");
}

TEST(IoLatency, ShorterSeriesWins) {
  const LatencySeries s =
      io_latency({0.0, 0.01}, {0.002, 0.012, 0.022}, 0.01);
  EXPECT_EQ(s.latencies.size(), 2u);
}

TEST(IoLatency, Validation) {
  EXPECT_THROW(io_latency({0.005}, {0.001}, 0.01), std::invalid_argument);
  EXPECT_THROW(io_latency({0.0}, {0.001}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::latency
