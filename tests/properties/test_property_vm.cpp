// Property sweep of the full AAA flow (EXP-G1 in miniature): for random
// workloads, random architectures and random execution times, the generated
// executives must never deadlock, must preserve the per-component total
// order, and under exact-WCET execution must reproduce the schedule.
#include <gtest/gtest.h>

#include "aaa/adequation.hpp"
#include "exec/conformance.hpp"
#include "random_graphs.hpp"

namespace ecsim::exec {
namespace {

class VmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmProperty, GeneratedCodeNeverDeadlocks) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 9, 1.0);
    const ArchitectureGraph arch = ecsim::testing::random_bus(rng);
    const Schedule sched = aaa::adequate(alg, arch);
    const GeneratedCode code = aaa::generate_executives(alg, arch, sched);

    VmOptions opts;
    opts.iterations = 8;
    opts.period = 1.0;
    opts.exec_time = uniform_fraction_exec_time(0.05);
    opts.seed = GetParam() * 31 + static_cast<std::uint64_t>(trial);
    const VmResult vm = run_executives(alg, arch, sched, code, opts);
    ASSERT_FALSE(vm.deadlock) << vm.deadlock_info;
    EXPECT_EQ(vm.ops.size(), 8u * alg.num_operations());
    const ConformanceReport rep =
        check_order_preservation(alg, arch, sched, vm);
    EXPECT_TRUE(rep.ok) << rep.violations;
  }
}

TEST_P(VmProperty, WcetExecutionReproducesSchedule) {
  math::Rng rng(GetParam() * 17);
  const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 8, 1.0);
  const ArchitectureGraph arch = ecsim::testing::random_bus(rng);
  const Schedule sched = aaa::adequate(alg, arch);
  const GeneratedCode code = aaa::generate_executives(alg, arch, sched);
  VmOptions opts;
  opts.iterations = 3;
  opts.period = 1.0;  // generous: makespan << period for these sizes
  const VmResult vm = run_executives(alg, arch, sched, code, opts);
  const ConformanceReport rep =
      check_wcet_conformance(alg, arch, sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
}

TEST_P(VmProperty, CompletionTimesMonotoneInExecutionTimes) {
  // Faster execution can never delay any completion (fixed total order =>
  // no scheduling anomalies).
  math::Rng rng(GetParam() * 23);
  const AlgorithmGraph alg = ecsim::testing::random_dag(rng, 7, 1.0);
  const ArchitectureGraph arch = ecsim::testing::random_bus(rng);
  const Schedule sched = aaa::adequate(alg, arch);
  const GeneratedCode code = aaa::generate_executives(alg, arch, sched);

  VmOptions slow;
  slow.iterations = 5;
  slow.period = 1.0;
  const VmResult wcet_run = run_executives(alg, arch, sched, code, slow);

  VmOptions fast = slow;
  fast.exec_time = uniform_fraction_exec_time(0.2);
  fast.seed = GetParam();
  const VmResult fast_run = run_executives(alg, arch, sched, code, fast);

  for (aaa::OpId op = 0; op < alg.num_operations(); ++op) {
    const auto w = wcet_run.completions(op);
    const auto f = fast_run.completions(op);
    ASSERT_EQ(w.size(), f.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
      EXPECT_LE(f[k], w[k] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace ecsim::exec
