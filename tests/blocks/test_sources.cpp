#include "blocks/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"

namespace ecsim::blocks {
namespace {

using sim::Model;
using sim::SimOptions;
using sim::Simulator;

TEST(Clock, ValidatesParameters) {
  EXPECT_THROW(Clock("c", 0.0), std::invalid_argument);
  EXPECT_THROW(Clock("c", -1.0), std::invalid_argument);
  EXPECT_THROW(Clock("c", 1.0, -0.5), std::invalid_argument);
}

TEST(Clock, OffsetShiftsFirstTick) {
  Model m;
  auto& clk = m.add<Clock>("clk", 1.0, 0.4);
  (void)clk;
  Simulator s(m, SimOptions{.end_time = 2.5});
  s.run();
  const auto times = s.trace().activation_times_by_name("clk");
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 0.4, 1e-12);
  EXPECT_NEAR(times[1], 1.4, 1e-12);
  EXPECT_NEAR(times[2], 2.4, 1e-12);
}

TEST(TimetableClock, ValidatesOffsets) {
  EXPECT_THROW(TimetableClock("t", 1.0, {}), std::invalid_argument);
  EXPECT_THROW(TimetableClock("t", 1.0, {0.5, 0.2}), std::invalid_argument);
  EXPECT_THROW(TimetableClock("t", 1.0, {1.0}), std::invalid_argument);
  EXPECT_THROW(TimetableClock("t", 1.0, {-0.1}), std::invalid_argument);
  EXPECT_THROW(TimetableClock("t", 0.0, {0.0}), std::invalid_argument);
}

TEST(TimetableClock, EmitsAtOffsetsEveryPeriod) {
  Model m;
  auto& tt = m.add<TimetableClock>("tt", 1.0, std::vector<sim::Time>{0.2, 0.7});
  (void)tt;
  Simulator s(m, SimOptions{.end_time = 2.0});
  s.run();
  const auto times = s.trace().activation_times_by_name("tt");
  ASSERT_EQ(times.size(), 4u);
  EXPECT_NEAR(times[0], 0.2, 1e-12);
  EXPECT_NEAR(times[1], 0.7, 1e-12);
  EXPECT_NEAR(times[2], 1.2, 1e-12);
  EXPECT_NEAR(times[3], 1.7, 1e-12);
}

TEST(Step, SwitchesAtStepTime) {
  Model m;
  auto& st = m.add<Step>("st", -1.0, 2.0, 0.5);
  Simulator s(m, SimOptions{.end_time = 0.4});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(st, 0), -1.0);
  Simulator s2(m, SimOptions{.end_time = 0.6});
  s2.run();
  EXPECT_DOUBLE_EQ(s2.output_value(st, 0), 2.0);
}

TEST(Constant, VectorOutput) {
  Model m;
  auto& c = m.add<Constant>("c", std::vector<double>{1.0, -2.0, 3.0});
  Simulator s(m, SimOptions{.end_time = 0.1});
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(c, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.output_value(c, 0, 1), -2.0);
  EXPECT_DOUBLE_EQ(s.output_value(c, 0, 2), 3.0);
}

TEST(Sine, AmplitudeFrequencyPhaseBias) {
  Model m;
  auto& sn = m.add<Sine>("s", 2.0, 0.5, 0.3, 1.0);
  Simulator s(m, SimOptions{.end_time = 0.8});
  s.run();
  const double expect =
      2.0 * std::sin(2.0 * std::numbers::pi * 0.5 * 0.8 + 0.3) + 1.0;
  EXPECT_NEAR(s.output_value(sn, 0), expect, 1e-12);
}

TEST(Pulse, DutyCycle) {
  Model m;
  auto& p = m.add<Pulse>("p", 0.0, 5.0, 1.0, 0.25);
  Simulator s1(m, SimOptions{.end_time = 0.2});
  s1.run();
  EXPECT_DOUBLE_EQ(s1.output_value(p, 0), 5.0);  // inside high window
  Simulator s2(m, SimOptions{.end_time = 0.3});
  s2.run();
  EXPECT_DOUBLE_EQ(s2.output_value(p, 0), 0.0);  // after duty fraction
  EXPECT_THROW(Pulse("x", 0.0, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Pulse("x", 0.0, 1.0, 0.0, 0.5), std::invalid_argument);
}

TEST(NoiseHold, HoldsBetweenEventsAndIsSeeded) {
  Model m;
  auto& clk = m.add<Clock>("clk", 0.5);
  auto& n = m.add<NoiseHold>("n", 10.0, 2.0);
  m.connect_event(clk, 0, n, 0);
  Simulator s(m, SimOptions{.end_time = 10.0, .seed = 5});
  s.run();
  const double v1 = s.output_value(n, 0);
  s.run();
  EXPECT_DOUBLE_EQ(s.output_value(n, 0), v1);
  EXPECT_NEAR(v1, 10.0, 12.0);  // plausible draw around the mean
}

}  // namespace
}  // namespace ecsim::blocks
