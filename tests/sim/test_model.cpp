#include "sim/model.hpp"

#include <gtest/gtest.h>

#include "blocks/math_blocks.hpp"
#include "blocks/sources.hpp"

namespace ecsim::sim {
namespace {

using blocks::Constant;
using blocks::Gain;

TEST(Model, AddAndIndex) {
  Model m;
  auto& c = m.add<Constant>("c", 1.0);
  auto& g = m.add<Gain>("g", 2.0);
  EXPECT_EQ(m.num_blocks(), 2u);
  EXPECT_EQ(m.index_of(c), 0u);
  EXPECT_EQ(m.index_of(g), 1u);
  EXPECT_EQ(m.index_by_name("g"), 1u);
  EXPECT_THROW(m.index_by_name("nope"), std::out_of_range);
}

TEST(Model, IndexOfForeignBlockThrows) {
  Model m1, m2;
  auto& c = m1.add<Constant>("c", 1.0);
  EXPECT_THROW(m2.index_of(c), std::invalid_argument);
}

TEST(Model, ConnectValidatesPorts) {
  Model m;
  auto& c = m.add<Constant>("c", 1.0);
  auto& g = m.add<Gain>("g", 2.0);
  m.connect(c, 0, g, 0);
  EXPECT_EQ(m.data_wires().size(), 1u);
  EXPECT_THROW(m.connect(c, 1, g, 0), std::out_of_range);   // no output 1
  EXPECT_THROW(m.connect(c, 0, g, 1), std::out_of_range);   // no input 1
}

TEST(Model, ConnectRejectsDoubleDrive) {
  Model m;
  auto& c1 = m.add<Constant>("c1", 1.0);
  auto& c2 = m.add<Constant>("c2", 2.0);
  auto& g = m.add<Gain>("g", 2.0);
  m.connect(c1, 0, g, 0);
  EXPECT_THROW(m.connect(c2, 0, g, 0), std::invalid_argument);
}

TEST(Model, ConnectRejectsWidthMismatch) {
  Model m;
  auto& wide = m.add<Constant>("wide", std::vector<double>{1.0, 2.0});
  auto& g = m.add<Gain>("g", 2.0);  // expects width 1
  EXPECT_THROW(m.connect(wide, 0, g, 0), std::invalid_argument);
}

TEST(Model, ConnectEventValidatesPorts) {
  Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1.0);
  auto& g = m.add<Gain>("g", 2.0);  // no event inputs
  EXPECT_THROW(m.connect_event(clk, 0, g, 0), std::out_of_range);
  EXPECT_THROW(m.connect_event(g, 0, clk, 0), std::out_of_range);
}

TEST(Model, EventFanOutAllowed) {
  Model m;
  auto& clk = m.add<blocks::Clock>("clk", 1.0);
  auto& n1 = m.add<blocks::NoiseHold>("n1", 0.0, 1.0);
  auto& n2 = m.add<blocks::NoiseHold>("n2", 0.0, 1.0);
  m.connect_event(clk, 0, n1, 0);
  m.connect_event(clk, 0, n2, 0);
  EXPECT_EQ(m.event_wires().size(), 2u);
}

}  // namespace
}  // namespace ecsim::sim
