// Property sweep of the multirate hyperperiod expansion: random rate
// assignments must expand to valid graphs whose schedules respect releases
// and whose VM execution conforms over several hyperperiods.
#include <gtest/gtest.h>

#include <cmath>

#include "aaa/adequation.hpp"
#include "aaa/codegen.hpp"
#include "aaa/multirate.hpp"
#include "exec/conformance.hpp"
#include "mathlib/rng.hpp"

namespace ecsim::aaa {
namespace {

MultirateSpec random_spec(math::Rng& rng) {
  MultirateSpec spec;
  spec.base_period = 0.01;
  const std::size_t n = 3 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  const std::size_t divisors[] = {1, 1, 2, 4};
  for (std::size_t i = 0; i < n; ++i) {
    MultirateOp op;
    op.name = "op" + std::to_string(i);
    op.kind = i == 0 ? OpKind::kSensor
                     : (i + 1 == n ? OpKind::kActuator : OpKind::kCompute);
    op.wcet["cpu"] = rng.uniform(1e-4, 6e-4);
    op.rate_divisor = divisors[rng.uniform_int(0, 3)];
    spec.add_op(std::move(op));
  }
  // A forward chain plus a random extra cross edge.
  for (std::size_t i = 1; i < n; ++i) {
    spec.add_dep(i - 1, i, rng.uniform(1.0, 8.0));
  }
  if (n > 3) spec.add_dep(0, n - 1, 2.0);
  return spec;
}

class MultirateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultirateProperty, ExpansionIsAcyclicAndReleaseConsistent) {
  math::Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const MultirateSpec spec = random_spec(rng);
    const AlgorithmGraph alg = expand_hyperperiod(spec);
    EXPECT_NO_THROW(alg.topological_order());
    // Releases lie within the hyperperiod and are multiples of the base.
    for (OpId i = 0; i < alg.num_operations(); ++i) {
      const Time r = alg.op(i).release;
      EXPECT_GE(r, 0.0);
      EXPECT_LT(r, alg.period());
      const double steps = r / spec.base_period;
      EXPECT_NEAR(steps, std::round(steps), 1e-9);
    }
    // Every dependency respects release causality: producer release <=
    // consumer release (most-recent-value semantics).
    for (const DataDep& d : alg.dependencies()) {
      EXPECT_LE(alg.op(d.from).release, alg.op(d.to).release + 1e-12);
    }
  }
}

TEST_P(MultirateProperty, PipelineConformsOverHyperperiods) {
  math::Rng rng(GetParam() * 13);
  const MultirateSpec spec = random_spec(rng);
  const AlgorithmGraph alg = expand_hyperperiod(spec);
  const auto arch = ArchitectureGraph::bus_architecture(2, 1e5, 1e-5);
  const Schedule sched = adequate(alg, arch);
  ASSERT_NO_THROW(sched.validate(alg, arch));
  if (sched.makespan() > alg.period()) GTEST_SKIP() << "over-period workload";
  const GeneratedCode code = generate_executives(alg, arch, sched);
  exec::VmOptions opts;
  opts.iterations = 4;
  opts.period = alg.period();
  const exec::VmResult vm = exec::run_executives(alg, arch, sched, code, opts);
  const exec::ConformanceReport rep =
      exec::check_wcet_conformance(alg, arch, sched, vm, opts.period);
  EXPECT_TRUE(rep.ok) << rep.violations;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultirateProperty,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u, 46u));

}  // namespace
}  // namespace ecsim::aaa
