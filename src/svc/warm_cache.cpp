#include "svc/warm_cache.hpp"

#include <stdexcept>

#include "aaa/adequation.hpp"
#include "ir/ir.hpp"
#include "par/sweep.hpp"
#include "svc/cache_key.hpp"
#include "svc/protocol.hpp"

namespace ecsim::svc {

WarmCache::WarmCache(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    hit_ctr_ = &metrics->counter("svc.warm.hits");
    miss_ctr_ = &metrics->counter("svc.warm.misses");
  }
}

const WarmLoop& WarmCache::loop(double ts, double t_end, std::uint64_t seed) {
  std::string key = hexfloat(ts);
  key += '|';
  key += hexfloat(t_end);
  key += '|';
  key += std::to_string(seed);
  if (const WarmLoop* hit = loops_.find(key)) {
    ++hits_;
    if (hit_ctr_ != nullptr) hit_ctr_->add();
    return *hit;
  }
  ++misses_;
  if (miss_ctr_ != nullptr) miss_ctr_->add();
  WarmLoop entry;
  entry.loop = sweep::servo_loop(ts, t_end);
  entry.loop.seed = seed;
  entry.ir_hash = ir::hash_hex(translate::loop_ir(entry.loop));
  return loops_.insert(std::move(key), std::move(entry));
}

const WarmSpec& WarmCache::spec(const std::string& spec_text) {
  std::string key = spec_content_hash(spec_text);
  if (const WarmSpec* hit = specs_.find(key)) {
    ++hits_;
    if (hit_ctr_ != nullptr) hit_ctr_->add();
    return *hit;
  }
  ++misses_;
  if (miss_ctr_ != nullptr) miss_ctr_->add();
  WarmSpec entry;
  entry.spec = io::parse_spec(spec_text);
  if (!entry.spec.has_algorithm || !entry.spec.has_architecture) {
    throw std::runtime_error(
        "svc: spec needs [algorithm] and [architecture] sections");
  }
  entry.sched = aaa::adequate(entry.spec.algorithm, entry.spec.architecture);
  entry.sched.validate(entry.spec.algorithm, entry.spec.architecture);
  entry.code = aaa::generate_executives(entry.spec.algorithm,
                                        entry.spec.architecture, entry.sched);
  entry.content_hash = key;
  return specs_.insert(std::move(key), std::move(entry));
}

}  // namespace ecsim::svc
