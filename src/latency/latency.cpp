#include "latency/latency.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace ecsim::latency {

LatencySeries analyze_instants(std::string channel,
                               const std::vector<Time>& instants, Time ts,
                               bool assign_by_rounding) {
  if (ts <= 0.0) throw std::invalid_argument("analyze_instants: ts must be > 0");
  LatencySeries s;
  s.channel = std::move(channel);
  s.instants = instants;
  s.latencies.reserve(instants.size());
  for (std::size_t i = 0; i < instants.size(); ++i) {
    const double k = assign_by_rounding ? std::floor(instants[i] / ts + 1e-9)
                                        : static_cast<double>(i);
    s.latencies.push_back(instants[i] - k * ts);
  }
  s.summary = math::summarize(s.latencies);
  s.jitter = math::peak_to_peak(s.latencies);
  return s;
}

LatencySeries analyze_block_activations(const sim::Trace& trace,
                                        const std::string& block, Time ts,
                                        std::string channel) {
  const std::vector<Time> instants = trace.activation_times_by_name(block, 0);
  return analyze_instants(channel.empty() ? block : std::move(channel),
                          instants, ts);
}

std::string to_table(const LatencySeries& s, std::size_t max_rows) {
  std::ostringstream os;
  os << "channel: " << s.channel << "\n";
  os << std::setw(6) << "k" << std::setw(14) << "instant" << std::setw(14)
     << "latency" << "\n";
  const std::size_t n = std::min(max_rows, s.latencies.size());
  os << std::fixed << std::setprecision(6);
  for (std::size_t k = 0; k < n; ++k) {
    os << std::setw(6) << k << std::setw(14) << s.instants[k] << std::setw(14)
       << s.latencies[k] << "\n";
  }
  if (s.latencies.size() > n) {
    os << "  ... (" << s.latencies.size() - n << " more)\n";
  }
  os << "mean=" << s.summary.mean << " min=" << s.summary.min
     << " max=" << s.summary.max << " stddev=" << s.summary.stddev
     << " jitter(p2p)=" << s.jitter << "\n";
  return os.str();
}

LatencySeries io_latency(const std::vector<Time>& sampling_instants,
                         const std::vector<Time>& actuation_instants,
                         Time ts) {
  if (ts <= 0.0) throw std::invalid_argument("io_latency: ts must be > 0");
  LatencySeries s;
  s.channel = "input-output";
  const std::size_t n =
      std::min(sampling_instants.size(), actuation_instants.size());
  s.instants.reserve(n);
  s.latencies.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (actuation_instants[k] + 1e-12 < sampling_instants[k]) {
      throw std::invalid_argument(
          "io_latency: actuation precedes sampling in period " +
          std::to_string(k));
    }
    s.instants.push_back(actuation_instants[k]);
    s.latencies.push_back(actuation_instants[k] - sampling_instants[k]);
  }
  s.summary = math::summarize(s.latencies);
  s.jitter = math::peak_to_peak(s.latencies);
  return s;
}

}  // namespace ecsim::latency
