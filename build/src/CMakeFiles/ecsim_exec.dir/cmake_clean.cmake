file(REMOVE_RECURSE
  "CMakeFiles/ecsim_exec.dir/exec/channel.cpp.o"
  "CMakeFiles/ecsim_exec.dir/exec/channel.cpp.o.d"
  "CMakeFiles/ecsim_exec.dir/exec/conformance.cpp.o"
  "CMakeFiles/ecsim_exec.dir/exec/conformance.cpp.o.d"
  "CMakeFiles/ecsim_exec.dir/exec/executive_vm.cpp.o"
  "CMakeFiles/ecsim_exec.dir/exec/executive_vm.cpp.o.d"
  "libecsim_exec.a"
  "libecsim_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecsim_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
