#include "control/c2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ecsim::control {
namespace {

TEST(C2d, FirstOrderClosedForm) {
  // x' = -a x + u: Ad = e^{-a ts}, Bd = (1 - e^{-a ts})/a.
  const double a = 2.0, ts = 0.1;
  StateSpace sys;
  sys.a = Matrix{{-a}};
  sys.b = Matrix{{1.0}};
  sys.c = Matrix{{1.0}};
  sys.d = Matrix{{0.0}};
  const StateSpace d = c2d(sys, ts);
  EXPECT_TRUE(d.discrete);
  EXPECT_DOUBLE_EQ(d.ts, ts);
  EXPECT_NEAR(d.a(0, 0), std::exp(-a * ts), 1e-12);
  EXPECT_NEAR(d.b(0, 0), (1.0 - std::exp(-a * ts)) / a, 1e-12);
}

TEST(C2d, DoubleIntegratorClosedForm) {
  // Ad = [1 ts; 0 1], Bd = [ts^2/2; ts]
  StateSpace sys = make_state_system(Matrix{{0.0, 1.0}, {0.0, 0.0}},
                                     Matrix{{0.0}, {1.0}});
  const double ts = 0.05;
  const StateSpace d = c2d(sys, ts);
  EXPECT_NEAR(d.a(0, 1), ts, 1e-14);
  EXPECT_NEAR(d.b(0, 0), ts * ts / 2.0, 1e-14);
  EXPECT_NEAR(d.b(1, 0), ts, 1e-14);
}

TEST(C2d, Validation) {
  StateSpace sys = make_state_system(Matrix{{0.0}}, Matrix{{1.0}});
  EXPECT_THROW(c2d(sys, 0.0), std::invalid_argument);
  StateSpace already = c2d(sys, 0.1);
  EXPECT_THROW(c2d(already, 0.1), std::invalid_argument);
}

TEST(InputIntegral, MatchesBd) {
  StateSpace sys = make_state_system(Matrix{{-1.0, 0.2}, {0.0, -3.0}},
                                     Matrix{{1.0}, {0.5}});
  const double ts = 0.07;
  const StateSpace d = c2d(sys, ts);
  EXPECT_TRUE(math::approx_equal(input_integral(sys.a, sys.b, ts), d.b, 1e-12));
}

TEST(C2dWithInputDelay, ZeroDelayReducesToPlainC2d) {
  StateSpace sys = make_state_system(Matrix{{0.0, 1.0}, {0.0, -1.0}},
                                     Matrix{{0.0}, {1.0}});
  const double ts = 0.02;
  const StateSpace plain = c2d(sys, ts);
  const StateSpace aug = c2d_with_input_delay(sys, ts, 0.0);
  EXPECT_EQ(aug.order(), 3u);
  EXPECT_TRUE(math::approx_equal(aug.a.block(0, 0, 2, 2), plain.a, 1e-12));
  // With tau = 0, G1 = 0 and G0 = Bd: no dependence on the stored input.
  EXPECT_NEAR(aug.a(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(aug.a(1, 2), 0.0, 1e-12);
  EXPECT_TRUE(math::approx_equal(aug.b.block(0, 0, 2, 1), plain.b, 1e-12));
}

TEST(C2dWithInputDelay, FullPeriodDelayShiftsAllInputEffect) {
  StateSpace sys = make_state_system(Matrix{{-1.0}}, Matrix{{1.0}});
  const double ts = 0.1;
  const StateSpace plain = c2d(sys, ts);
  const StateSpace aug = c2d_with_input_delay(sys, ts, ts);
  // With tau = ts the current input has no effect within the period:
  // G0 = 0 and G1 = Bd.
  EXPECT_NEAR(aug.b(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(aug.a(0, 1), plain.b(0, 0), 1e-12);
}

TEST(C2dWithInputDelay, SplitsAdditively) {
  // For any tau: G0 + G1 = Bd.
  StateSpace sys = make_state_system(Matrix{{0.0, 1.0}, {-2.0, -0.5}},
                                     Matrix{{0.0}, {1.0}});
  const double ts = 0.05;
  const StateSpace plain = c2d(sys, ts);
  for (double tau : {0.01, 0.025, 0.04}) {
    const StateSpace aug = c2d_with_input_delay(sys, ts, tau);
    const Matrix g0 = aug.b.block(0, 0, 2, 1);
    Matrix g1(2, 1);
    g1(0, 0) = aug.a(0, 2);
    g1(1, 0) = aug.a(1, 2);
    EXPECT_TRUE(math::approx_equal(g0 + g1, plain.b, 1e-12));
  }
}

TEST(C2dWithInputDelay, Validation) {
  StateSpace sys = make_state_system(Matrix{{0.0}}, Matrix{{1.0}});
  EXPECT_THROW(c2d_with_input_delay(sys, 0.1, -0.01), std::invalid_argument);
  EXPECT_THROW(c2d_with_input_delay(sys, 0.1, 0.2), std::invalid_argument);
}

}  // namespace
}  // namespace ecsim::control
