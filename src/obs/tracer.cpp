#include "obs/tracer.hpp"

#include <algorithm>
#include <stdexcept>

namespace ecsim::obs {

Tracer::Tracer(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

std::uint32_t Tracer::intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  const auto it = name_ids_.find(std::string(s));
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(s);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t Tracer::track(std::string_view name, Domain domain) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].name == name && tracks_[i].domain == domain) return i;
  }
  tracks_.push_back(TrackInfo{std::string(name), domain});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::size_t Tracer::num_tracks() const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return tracks_.size();
}

const std::string& Tracer::track_name(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return tracks_.at(id).name;
}

Domain Tracer::track_domain(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return tracks_.at(id).domain;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(const TraceEvent& e) {
  if (!enabled()) return;
  const std::uint64_t slot = count_.fetch_add(1, std::memory_order_relaxed);
  ring_[slot % ring_.size()] = e;
}

void Tracer::span(std::uint32_t name, std::uint32_t track, double start_us,
                  double end_us, std::uint32_t arg_name, double arg) {
  record(TraceEvent{start_us, end_us - start_us, name, track, arg_name,
                    Phase::kSpan, arg});
}

void Tracer::instant(std::uint32_t name, std::uint32_t track, double ts_us,
                     std::uint32_t arg_name, double arg) {
  record(TraceEvent{ts_us, 0.0, name, track, arg_name, Phase::kInstant, arg});
}

void Tracer::counter(std::uint32_t name, std::uint32_t track, double ts_us,
                     double value) {
  record(TraceEvent{ts_us, 0.0, name, track, kNoArg, Phase::kCounter, value});
}

std::size_t Tracer::size() const {
  return std::min<std::uint64_t>(count_.load(std::memory_order_relaxed),
                                 ring_.size());
}

std::size_t Tracer::dropped() const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  return n > ring_.size() ? n - ring_.size() : 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  if (n <= ring_.size()) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(n));
  } else {
    // Ring wrapped: oldest retained record sits at count % capacity.
    const std::size_t head = n % ring_.size();
    out.reserve(ring_.size());
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return out;
}

void Tracer::append(const Tracer& other) {
  if (&other == this) {
    // Appending a ring to itself would re-intern and duplicate every record
    // while iterating the same storage — reject it outright.
    throw std::invalid_argument("Tracer::append: cannot append a tracer to itself");
  }
  const std::vector<TraceEvent> events = other.snapshot();
  std::vector<std::string> other_names;
  std::vector<TrackInfo> other_tracks;
  {
    std::lock_guard<std::mutex> lock(other.intern_mu_);
    other_names = other.names_;
    other_tracks = other.tracks_;
  }
  std::vector<std::uint32_t> name_map(other_names.size());
  for (std::size_t i = 0; i < other_names.size(); ++i) {
    name_map[i] = intern(other_names[i]);
  }
  std::vector<std::uint32_t> track_map(other_tracks.size());
  for (std::size_t i = 0; i < other_tracks.size(); ++i) {
    track_map[i] = track(other_tracks[i].name, other_tracks[i].domain);
  }
  for (TraceEvent e : events) {
    e.name = name_map.at(e.name);
    e.track = track_map.at(e.track);
    if (e.arg_name != kNoArg) e.arg_name = name_map.at(e.arg_name);
    const std::uint64_t slot = count_.fetch_add(1, std::memory_order_relaxed);
    ring_[slot % ring_.size()] = e;
  }
}

void Tracer::clear() { count_.store(0, std::memory_order_relaxed); }

}  // namespace ecsim::obs
