// Property: running a batch of random hybrid-diagram simulations on the
// work-stealing pool is observationally equivalent to running them one by
// one — for every thread count. Per task: a bit-identical trace (same
// events, same order, same probed values to the last ulp). Across the
// batch: a bit-identical merged metrics snapshot, because shards are merged
// in task-index order no matter which worker ran which task.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "par/batch_runner.hpp"
#include "random_graphs.hpp"
#include "sim/simulator.hpp"

namespace ecsim::sim {
namespace {

constexpr std::size_t kTasks = 12;

/// One batch: task i builds its own random diagram from a seed derived only
/// from the task index, simulates it with per-task obs shards, and returns
/// the trace. `metrics_json` receives the merged registry snapshot.
std::vector<Trace> run_batch(std::size_t threads, std::string* metrics_json) {
  obs::MetricsRegistry merged;
  par::BatchOptions opts;
  opts.threads = threads;
  opts.seed = 42;
  opts.metrics = &merged;
  par::BatchRunner runner(opts);
  std::vector<Trace> traces =
      runner.map<Trace>(kTasks, [](par::TaskContext& ctx) {
        math::Rng model_rng(1000 + 17 * ctx.index);
        Model m = ecsim::testing::random_block_model(model_rng);
        SimOptions sim;
        sim.end_time = 0.4;
        sim.seed = 7 * ctx.index + 1;
        sim.metrics = ctx.metrics;
        sim.tracer = ctx.tracer;
        Simulator s(m, sim);
        return s.run();
      });
  *metrics_json = merged.to_json();
  return traces;
}

TEST(ParallelSimBatch, TracesAndMergedMetricsBitIdenticalAcrossThreadCounts) {
  std::string serial_metrics;
  const std::vector<Trace> serial = run_batch(1, &serial_metrics);
  ASSERT_EQ(serial.size(), kTasks);
  // The workload must actually exercise the engine and the obs shards.
  for (const Trace& t : serial) ASSERT_FALSE(t.events().empty());
  EXPECT_NE(serial_metrics.find("sim.events_dispatched"), std::string::npos);

  for (const std::size_t threads : {2u, 7u}) {
    std::string metrics;
    const std::vector<Trace> par_traces = run_batch(threads, &metrics);
    ASSERT_EQ(par_traces.size(), kTasks) << "threads=" << threads;
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_TRUE(par_traces[i] == serial[i])
          << "trace of task " << i << " diverged at threads=" << threads;
    }
    EXPECT_EQ(metrics, serial_metrics)
        << "merged metrics snapshot diverged at threads=" << threads;
  }
}

TEST(ParallelSimBatch, RepeatedParallelBatchesAreBitIdentical) {
  std::string first_metrics, second_metrics;
  const std::vector<Trace> first = run_batch(3, &first_metrics);
  const std::vector<Trace> second = run_batch(3, &second_metrics);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i]) << "task " << i;
  }
  EXPECT_EQ(first_metrics, second_metrics);
}

}  // namespace
}  // namespace ecsim::sim
