// Probe: records its input signal into the simulation trace — the scope of
// the toolchain. Two modes:
//  - periodic (record_period > 0): self-clocked dense sampling, used for
//    computing integral performance criteria (IAE/ISE/quadratic cost);
//  - triggered (record_period == 0): records whenever its event input fires,
//    used to capture values at sampling/actuation instants.
#pragma once

#include "sim/block.hpp"

namespace ecsim::blocks {

using sim::Block;
using sim::Context;
using sim::Time;

class Probe : public Block {
 public:
  Probe(std::string name, std::size_t width, Time record_period);

  void initialize(Context& ctx) override;
  void on_event(Context& ctx, std::size_t event_in) override;
  void describe(ir::BlockIr& out) const override;

  std::size_t samples_taken() const { return samples_; }

 private:
  Time period_;
  std::size_t samples_ = 0;
};

}  // namespace ecsim::blocks
