// IR determinism guards (DESIGN.md §3.6): canonical serialization
// round-trips byte-identically, the FNV hash is stable across threads and
// across processes (via the committed golden file), and any semantic field
// change moves the hash.
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocks/examples.hpp"
#include "blocks/to_model.hpp"
#include "ir/ir.hpp"
#include "sim/build_ir.hpp"

namespace {

using namespace ecsim;

ir::Model servo_ir() {
  sim::Model m = blocks::examples::make_servo();
  return sim::build_ir(m, "servo");
}

TEST(IrRoundtrip, SerializeParseSerializeIsByteIdentical) {
  const ir::Model irm = servo_ir();
  const std::string text = ir::serialize(irm);
  const ir::Model back = ir::parse(text);
  EXPECT_EQ(back, irm);
  EXPECT_EQ(ir::serialize(back), text);
}

TEST(IrRoundtrip, ChainsRoundtripIsByteIdentical) {
  sim::Model m = blocks::examples::make_chains(8);
  const ir::Model irm = sim::build_ir(m, "chains_8");
  const std::string text = ir::serialize(irm);
  EXPECT_EQ(ir::serialize(ir::parse(text)), text);
}

// to_model(irm) rebuilds a behaving model from attrs alone; lowering that
// model again must reproduce the identical IR (same layout included).
TEST(IrRoundtrip, ToModelRebuildReproducesIdenticalIr) {
  const ir::Model irm = servo_ir();
  ASSERT_TRUE(ir::fully_described(irm));
  sim::Model rebuilt = blocks::to_model(irm);
  const ir::Model irm2 = sim::build_ir(rebuilt, irm.name);
  EXPECT_EQ(ir::serialize(irm2), ir::serialize(irm));
  EXPECT_EQ(ir::hash(irm2), ir::hash(irm));
}

TEST(IrHash, StableAcrossThreads) {
  const ir::Model irm = servo_ir();
  const std::uint64_t want = ir::hash(irm);
  std::vector<std::uint64_t> got(8, 0);
  {
    std::vector<std::thread> ts;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ts.emplace_back([&, i] { got[i] = ir::hash(servo_ir()); });
    }
    for (auto& t : ts) t.join();
  }
  for (std::uint64_t h : got) EXPECT_EQ(h, want);
  EXPECT_EQ(ir::hash_hex(irm).substr(0, 2), "0x");
}

TEST(IrHash, SemanticFieldChangeChangesHash) {
  ir::Model a = servo_ir();
  const std::uint64_t base = ir::hash(a);

  // A parameter value.
  ir::Model b = a;
  for (ir::BlockIr& blk : b.blocks) {
    for (ir::Attr& attr : blk.attrs) {
      if (attr.kind == ir::Attr::Kind::kReal) {
        attr.r += 1.0;
        EXPECT_NE(ir::hash(b), base);
        goto wires;
      }
    }
  }
wires:
  // A wire endpoint.
  ir::Model c = a;
  ASSERT_FALSE(c.data_wires.empty());
  c.data_wires.back().to.port += 1;
  EXPECT_NE(ir::hash(c), base);

  // A block name (names are semantic: they key traces and reports).
  ir::Model d = a;
  d.blocks.front().name += "_x";
  EXPECT_NE(ir::hash(d), base);
}

// Cross-process / cross-PR stability: the servo-loop IR this build produces
// must byte-match the committed golden file. Regenerate deliberately with
//   build/tools/ecsim_flow ir dump --example=servo > tests/ir/golden_servo.ir
// when the model or the IR format changes version.
TEST(IrGolden, ServoLoopMatchesCommittedGolden) {
  const std::string path = std::string(ECSIM_GOLDEN_IR_DIR) + "/golden_servo.ir";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ir::serialize(servo_ir()), ss.str());
}

}  // namespace
