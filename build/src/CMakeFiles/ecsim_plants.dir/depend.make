# Empty dependencies file for ecsim_plants.
# This may be replaced when dependencies are built.
